//! A miniature of MySQL's table layer: `lock_open`, per-table storage and
//! the binary log — enough to reproduce MySQL-I (paper §5.4.4).
//!
//! The bug: the optimized `DELETE FROM t` path releases the global
//! `lock_open` **before** writing the binlog entry, so a concurrent
//! `INSERT` can execute *and log itself* between the delete and its log
//! record. Replaying the binlog then yields a different table than the
//! server actually has.

mod engine;

pub use engine::{
    consistent_with_binlog, replay_binlog, run_mysql_workload, BinlogEntry, MiniDb, MysqlOutcome,
    MysqlVariant, MysqlWorkload,
};
