//! The `txfix kv` macro-benchmark: the sharded KV store under the
//! open-loop workload, measured in **virtual time**.
//!
//! Wall-clock throughput is a property of the host; this sweep's
//! artifact is committed and byte-compared in CI, so every cell instead
//! runs under the deterministic cooperative scheduler with a seeded
//! picker, and all metrics are pure functions of `(config, seed)`:
//! throughput is ops per thousand scheduler steps, latency percentiles
//! are measured in elapsed scheduler steps per op
//! ([`sched::current_steps`]), and abort/escalation counts come from the
//! per-op [`TxnReport`](txfix_stm::TxnReport)s. The numbers mean what
//! `BENCH_stm.json`'s wall-clock numbers mean — relative cost of the
//! modes under identical contention — but they survive a byte-compare
//! on any machine. (`host_cores` is recorded for honesty, it is the one
//! field CI compares modulo.)
//!
//! Every cell ends with a free durability check: each shard is
//! checkpointed, the store is reopened from the simulated disk, and the
//! recovered state must equal the pre-shutdown state (`recovered_ok`).

use crate::pool;
use crate::workload::{Workload, WorkloadCfg, WorkloadOp};
use txfix_core::json::{Json, ToJson};
use txfix_kvstore::model::run_workers;
use txfix_kvstore::{KvConfig, KvStore, Mode};
use txfix_stm::chaos::splitmix64;
use txfix_stm::clock::{self, ClockMode};
use txfix_stm::sched;
use txfix_xcall::SimFs;

/// Artifact schema marker.
pub const SCHEMA: &str = "txfix-kv-v1";

/// Default sweep seed.
pub const DEFAULT_SEED: u64 = 0x5EED;

/// Per-run step budget. Hitting it fails the cell (recorded in the
/// report) instead of hanging the sweep.
const MAX_STEPS: u64 = 50_000_000;

/// One sweep's shape.
#[derive(Clone, Debug)]
pub struct KvBenchConfig {
    /// Seed for the schedule, the workload and the backoff rngs.
    pub seed: u64,
    /// Store modes to sweep.
    pub modes: Vec<Mode>,
    /// Shard counts to sweep (each mode runs at each count).
    pub shard_counts: Vec<usize>,
    /// Version-clock mode for the STM.
    pub clock: ClockMode,
    /// Concurrent workers per cell.
    pub threads: usize,
    /// Ops each worker issues.
    pub ops_per_thread: u64,
    /// Workload shape.
    pub workload: WorkloadCfg,
}

impl KvBenchConfig {
    /// The committed-artifact configuration: every mode × two shard
    /// counts under the default workload.
    pub fn full(seed: u64) -> KvBenchConfig {
        KvBenchConfig {
            seed,
            modes: Mode::ALL.to_vec(),
            shard_counts: vec![2, 4],
            clock: ClockMode::Gv1,
            threads: 3,
            ops_per_thread: 120,
            workload: WorkloadCfg::default(),
        }
    }
}

/// One mode × shard-count cell's measurements (all in virtual time).
#[derive(Clone, Debug)]
pub struct KvCell {
    /// Concurrency mode driven.
    pub mode: Mode,
    /// Shard count.
    pub shards: usize,
    /// Ops committed (= threads × ops_per_thread on a clean run).
    pub ops: u64,
    /// Aborted attempts across all ops (attempts − 1 per op).
    pub aborts: u64,
    /// Escalation-ladder climbs across all ops.
    pub escalations: u64,
    /// Ops that committed on the serial rung.
    pub serial_commits: u64,
    /// Scheduler steps the cell took.
    pub steps: u64,
    /// Throughput: ops per 1000 scheduler steps.
    pub ops_per_kstep: u64,
    /// Median per-op latency in scheduler steps.
    pub p50_steps: u64,
    /// 99th-percentile per-op latency in scheduler steps.
    pub p99_steps: u64,
    /// Buffer-pool counters summed over shards (checkpoint at the end).
    pub pool_flushed_pages: u64,
    /// The reopened store matched the pre-shutdown state.
    pub recovered_ok: bool,
    /// The schedule ran to completion (no step-limit, no panic).
    pub clean_run: bool,
}

struct WorkerOut {
    latencies: Vec<u64>,
    aborts: u64,
    escalations: u64,
    serial_commits: u64,
    ops: u64,
}

fn run_cell(cfg: &KvBenchConfig, mode: Mode, shards: usize) -> KvCell {
    let fs = SimFs::new();
    let store = KvStore::open(&fs, KvConfig::new(mode, shards));
    let workload = Workload::new(cfg.workload);
    let seed = splitmix64(
        cfg.seed ^ splitmix64(shards as u64 ^ (mode as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let kv = &store;
    let wl = &workload;
    let ops_per_thread = cfg.ops_per_thread;
    let workers: Vec<Box<dyn FnOnce() -> WorkerOut + Send + '_>> = (0..cfg.threads as u64)
        .map(|w| {
            Box::new(move || {
                pool::pin_worker_rng(seed, w as usize);
                let mut out = WorkerOut {
                    latencies: Vec::with_capacity(ops_per_thread as usize),
                    aborts: 0,
                    escalations: 0,
                    serial_commits: 0,
                    ops: 0,
                };
                for i in 0..ops_per_thread {
                    let before = sched::current_steps();
                    let stats = match wl.op(seed, w, i) {
                        WorkloadOp::Get(k) => kv.get(&k).expect("workload keys are tokens").stats,
                        WorkloadOp::Put(k, v) => {
                            kv.put(&k, &v).expect("workload values are tokens").stats
                        }
                        WorkloadOp::Delete(k) => {
                            kv.delete(&k).expect("workload keys are tokens").stats
                        }
                        WorkloadOp::Scan(draw) => {
                            kv.scan((draw % kv.config().shards as u64) as usize)
                                .expect("scan cannot fail")
                                .stats
                        }
                    };
                    out.latencies.push(sched::current_steps() - before);
                    out.aborts += stats.attempts.saturating_sub(1);
                    out.escalations += stats.escalations;
                    out.serial_commits += stats.serialized as u64;
                    out.ops += 1;
                }
                out
            }) as Box<dyn FnOnce() -> WorkerOut + Send + '_>
        })
        .collect();
    let (outs, log) = run_workers(seed, MAX_STEPS, workers);
    let clean_run = log.stop.is_none();
    let mut latencies: Vec<u64> = Vec::new();
    let (mut ops, mut aborts, mut escalations, mut serial_commits) = (0u64, 0u64, 0u64, 0u64);
    for out in outs.into_iter().flatten() {
        latencies.extend(out.latencies);
        ops += out.ops;
        aborts += out.aborts;
        escalations += out.escalations;
        serial_commits += out.serial_commits;
    }
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[((latencies.len() - 1) as f64 * q) as usize]
        }
    };
    // End-of-run durability: checkpoint every shard, reopen, compare.
    let want: Vec<_> = (0..shards).map(|s| store.shard_snapshot(s)).collect();
    let mut store = store;
    for s in 0..shards {
        store.checkpoint_and_truncate(s);
    }
    let pool_flushed_pages: u64 = (0..shards).map(|s| store.pool_stats(s).flushed_pages).sum();
    drop(store);
    let reopened = KvStore::open(&fs, KvConfig::new(mode, shards));
    let recovered_ok = (0..shards).all(|s| reopened.shard_snapshot(s) == want[s]);
    let steps = log.steps;
    KvCell {
        mode,
        shards,
        ops,
        aborts,
        escalations,
        serial_commits,
        steps,
        ops_per_kstep: (ops * 1000).checked_div(steps).unwrap_or(0),
        p50_steps: pct(0.50),
        p99_steps: pct(0.99),
        pool_flushed_pages,
        recovered_ok,
        clean_run,
    }
}

/// Run every mode × shard-count cell. Takes the scheduler exclusively;
/// restores the GV1 clock afterwards.
pub fn run_kv_bench(cfg: &KvBenchConfig) -> Vec<KvCell> {
    sched::run_exclusively(|| {
        clock::set_mode(cfg.clock);
        let mut cells = Vec::new();
        for &mode in &cfg.modes {
            for &shards in &cfg.shard_counts {
                cells.push(run_cell(cfg, mode, shards));
            }
        }
        clock::set_mode(ClockMode::Gv1);
        cells
    })
}

/// The `txfix-kv-v1` report.
pub struct KvReport {
    /// The swept configuration.
    pub cfg: KvBenchConfig,
    /// Host CPU count — honesty metadata, **not** part of the
    /// deterministic surface (CI compares modulo this field).
    pub host_cores: u64,
    /// One cell per mode × shard count.
    pub cells: Vec<KvCell>,
    /// Every cell ran clean and recovered.
    pub ok: bool,
}

/// Build the report for a finished sweep.
pub fn kv_report(cfg: &KvBenchConfig, cells: Vec<KvCell>) -> KvReport {
    let ok = cells
        .iter()
        .all(|c| c.clean_run && c.recovered_ok && c.ops == cfg.threads as u64 * cfg.ops_per_thread);
    KvReport { cfg: cfg.clone(), host_cores: crate::stress::host_cores() as u64, cells, ok }
}

impl ToJson for KvReport {
    fn to_json_value(&self) -> Json {
        let w = &self.cfg.workload;
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("seed", Json::int(self.cfg.seed)),
            ("clock", Json::str(self.cfg.clock.name())),
            ("host_cores", Json::int(self.host_cores)),
            ("threads", Json::int(self.cfg.threads as u64)),
            ("ops_per_thread", Json::int(self.cfg.ops_per_thread)),
            (
                "workload",
                Json::obj([
                    ("keys", Json::int(w.keys)),
                    ("users", Json::int(w.users)),
                    ("theta_milli", Json::int((w.theta * 1000.0).round() as u64)),
                    ("mix", Json::str(w.mix.name())),
                    ("session_len", Json::int(w.session_len)),
                    ("burst_period", Json::int(w.burst_period)),
                    ("burst_len", Json::int(w.burst_len)),
                ]),
            ),
            (
                "cells",
                Json::list(self.cells.iter().map(|c| {
                    Json::obj([
                        ("mode", Json::str(c.mode.name())),
                        ("shards", Json::int(c.shards as u64)),
                        ("ops", Json::int(c.ops)),
                        ("aborts", Json::int(c.aborts)),
                        ("escalations", Json::int(c.escalations)),
                        ("serial_commits", Json::int(c.serial_commits)),
                        ("steps", Json::int(c.steps)),
                        ("ops_per_kstep", Json::int(c.ops_per_kstep)),
                        ("p50_steps", Json::int(c.p50_steps)),
                        ("p99_steps", Json::int(c.p99_steps)),
                        ("pool_flushed_pages", Json::int(c.pool_flushed_pages)),
                        ("recovered_ok", Json::Bool(c.recovered_ok)),
                        ("clean_run", Json::Bool(c.clean_run)),
                    ])
                })),
            ),
            ("ok", Json::Bool(self.ok)),
        ])
    }
}

impl KvReport {
    /// Human-readable table, one row per cell.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "kv sweep: seed={} clock={} threads={} ops/thread={} theta={} mix={} (virtual time: \
             1 step = 1 scheduler decision)\n",
            self.cfg.seed,
            self.cfg.clock.name(),
            self.cfg.threads,
            self.cfg.ops_per_thread,
            self.cfg.workload.theta,
            self.cfg.workload.mix.name(),
        ));
        out.push_str(&format!(
            "{:<8} {:>6} {:>6} {:>7} {:>10} {:>7} {:>11} {:>9} {:>9}  {}\n",
            "mode",
            "shards",
            "ops",
            "aborts",
            "escalated",
            "serial",
            "ops/kstep",
            "p50steps",
            "p99steps",
            "verdict"
        ));
        for c in &self.cells {
            let verdict = match (c.clean_run, c.recovered_ok) {
                (true, true) => "ok",
                (false, _) => "FAIL (schedule did not finish)",
                (_, false) => "FAIL (recovery diverged)",
            };
            out.push_str(&format!(
                "{:<8} {:>6} {:>6} {:>7} {:>10} {:>7} {:>11} {:>9} {:>9}  {}\n",
                c.mode.name(),
                c.shards,
                c.ops,
                c.aborts,
                c.escalations,
                c.serial_commits,
                c.ops_per_kstep,
                c.p50_steps,
                c.p99_steps,
                verdict
            ));
        }
        out.push_str(&format!("\nkv bench: {}", if self.ok { "ok" } else { "FAILED" }));
        out
    }
}
