//! Minimal hand-rolled JSON support shared by the machine-readable
//! reports (`txfix analyze --json`, `txfix lint --json`, `txfix stress
//! --json`, the bench binaries' `--json` mode).
//!
//! The workspace has no serde (the build environment vendors only a
//! handful of stand-in crates), so the encoding is by hand: writers
//! implement [`ToJson`] and build [`Json`] values with the constructors
//! ([`Json::obj`], [`Json::str`], …); readers parse with [`Json::parse`],
//! a minimal recursive-descent reader. This module was extracted from
//! `txfix-analyze` so every report format in the workspace shares one
//! implementation — no report hand-formats JSON text.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (the minimal subset the report layouts use).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (reports only emit non-negative integers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is normalized by the map.
    Object(BTreeMap<String, Json>),
}

/// Fetch `key` from an object map, with a useful error when absent.
///
/// # Errors
///
/// `missing field "key"` when the object has no such key.
pub fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

impl Json {
    /// Parse `input` as a single JSON value (trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { chars: input.chars().collect(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at {}", p.pos));
        }
        Ok(v)
    }

    /// The value as an object, or an error naming `what` was expected.
    ///
    /// # Errors
    ///
    /// When the value is not an object.
    pub fn object(&self, what: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Object(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    /// The value as an array, or an error naming `what` was expected.
    ///
    /// # Errors
    ///
    /// When the value is not an array.
    pub fn array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    /// The value as a string, or an error naming `what` was expected.
    ///
    /// # Errors
    ///
    /// When the value is not a string.
    pub fn string(&self, what: &str) -> Result<String, String> {
        match self {
            Json::String(s) => Ok(s.clone()),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    /// The value as a number, or an error naming `what` was expected.
    ///
    /// # Errors
    ///
    /// When the value is not a number.
    pub fn number(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Number(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    /// The value as a bool, or an error naming `what` was expected.
    ///
    /// # Errors
    ///
    /// When the value is not a bool.
    pub fn bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }
}

impl fmt::Display for Json {
    /// Serialize back to compact JSON text (object keys in map order), so
    /// a value extracted from a parsed document can be re-parsed by the
    /// typed `from_json` readers.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => write!(f, "{n}"),
            Json::String(s) => write!(f, "{}", escape(s)),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Object(map) => {
                write!(f, "{{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{value}", escape(key))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Types that serialize themselves as a [`Json`] value.
///
/// This is the single serialization surface for every machine-readable
/// format in the workspace: implement `to_json_value` (building the value
/// with the [`Json`] constructors) and the textual form comes for free
/// from the [`Json`] serializer.
pub trait ToJson {
    /// Build the JSON value.
    fn to_json_value(&self) -> Json;

    /// Serialize to compact JSON text.
    fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

impl ToJson for Json {
    fn to_json_value(&self) -> Json {
        self.clone()
    }
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// A non-negative integer value (reports only emit integers that fit
    /// an `f64` exactly).
    pub fn int(n: u64) -> Json {
        Json::Number(n as f64)
    }

    /// An array of string values.
    pub fn strings<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> Json {
        Json::Array(items.into_iter().map(|s| Json::String(s.as_ref().to_string())).collect())
    }

    /// An array value.
    pub fn list(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// An object value from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

/// Quote and escape `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected {c:?} at {}, got {got:?}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for expected in word.chars() {
            if self.bump() != Some(expected) {
                return Err(format!("malformed literal near {}", self.pos));
            }
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object_value(),
            Some('[') => self.array_value(),
            Some('"') => Ok(Json::String(self.string_value()?)),
            Some('t') => self.keyword("true", Json::Bool(true)),
            Some('f') => self.keyword("false", Json::Bool(false)),
            Some('n') => self.keyword("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number_value(),
            other => Err(format!("unexpected {other:?} at {}", self.pos)),
        }
    }

    fn object_value(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string_value()?;
            self.expect(':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Object(map)),
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
    }

    fn array_value(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Array(items)),
                got => return Err(format!("expected ',' or ']', got {got:?}")),
            }
        }
    }

    fn string_value(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("malformed \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    got => return Err(format!("unknown escape {got:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number_value(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Json::Number).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_are_emitted_and_parsed() {
        let s = escape("a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let v = Json::parse(&s).unwrap();
        assert_eq!(v, Json::String("a\"b\\c\nd\u{1}".into()));
    }

    #[test]
    fn builders_compose_objects() {
        let v = Json::obj([
            ("a", Json::int(1)),
            ("b", Json::str("x")),
            ("c", Json::list([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_json(), r#"{"a":1,"b":"x","c":[true,null]}"#);
        let obj = v.object("obj").unwrap();
        assert_eq!(get(obj, "a").unwrap().number("a").unwrap(), 1.0);
        assert_eq!(get(obj, "b").unwrap().string("b").unwrap(), "x");
    }

    #[test]
    fn strings_round_trip() {
        let v = Json::strings(["x", "y\"z"]);
        let reparsed = Json::parse(&v.to_json()).unwrap();
        let arr = reparsed.array("arr").unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].string("arr[1]").unwrap(), "y\"z");
        assert_eq!(Json::strings(Vec::<String>::new()).to_json(), "[]");
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert!(Json::parse("true").unwrap().bool("b").unwrap());
        assert!(!Json::parse("false").unwrap().bool("b").unwrap());
        assert_eq!(Json::parse("-2.5e1").unwrap().number("n").unwrap(), -25.0);
    }

    #[test]
    fn display_round_trips_through_the_parser() {
        let text = r#"{"b":[1,true,null,"x\ny"],"a":{"nested":-2.5}}"#;
        let v = Json::parse(text).unwrap();
        let reparsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn malformed_input_is_rejected() {
        for bad in ["{", "", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_report_the_context_name() {
        let err = Json::Null.string("field.name").unwrap_err();
        assert!(err.contains("field.name"), "{err}");
        let obj = Json::parse("{}").unwrap();
        let err = get(obj.object("o").unwrap(), "missing").unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }
}
