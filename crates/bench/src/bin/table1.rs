//! Regenerate Table 1: concurrency bugs that TM can fix.
//!
//! Pass `--json` for a machine-readable version (table rows plus the
//! corpus summary aggregates).

use txfix_core::json::{Json, ToJson};

fn main() {
    let bugs = txfix_corpus::all_bugs();
    let table = txfix_core::table1(&bugs);
    let s = txfix_core::CorpusSummary::compute(&bugs);
    if std::env::args().any(|a| a == "--json") {
        let doc = Json::obj([("table", table.to_json_value()), ("summary", s.to_json_value())]);
        println!("{}", doc.to_json());
        return;
    }
    print!("{table}");
    println!(
        "\nTM can fix {} of {} bugs ({:.0}%); {} judged simpler than the developers' fix ({:.0}%).",
        s.fixable(),
        s.total,
        100.0 * s.fixable() as f64 / s.total as f64,
        s.tm_preferred,
        100.0 * s.tm_preferred as f64 / s.total as f64,
    );
}
