//! End-to-end tests of the `txfix` CLI binary.

use std::process::Command;

fn txfix(args: &[&str]) -> (String, bool) {
    let exe = env!("CARGO_BIN_EXE_txfix");
    let out = Command::new(exe).args(args).output().expect("run txfix");
    (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.success())
}

#[test]
fn summary_reports_headline_numbers() {
    let (out, ok) = txfix(&["summary"]);
    assert!(ok);
    assert!(out.contains("bugs examined:                 60"));
    assert!(out.contains("TM can fix:                    43"));
}

#[test]
fn tables_render() {
    let (out, ok) = txfix(&["tables"]);
    assert!(ok);
    assert!(out.contains("Table 1."));
    assert!(out.contains("Table 2."));
    assert!(out.contains("Table 3."));
}

#[test]
fn bugs_filters_work() {
    let (all, ok) = txfix(&["bugs"]);
    assert!(ok);
    assert_eq!(all.lines().count(), 60);
    let (unfix, ok) = txfix(&["bugs", "--unfixable"]);
    assert!(ok);
    assert_eq!(unfix.lines().count(), 17);
    assert!(unfix.contains("NOT FIXABLE"));
    let (imp, ok) = txfix(&["bugs", "--implemented"]);
    assert!(ok);
    assert_eq!(imp.lines().count(), 18);
}

#[test]
fn show_explains_a_paper_named_bug() {
    let (out, ok) = txfix(&["show", "Mozilla#65146"]);
    assert!(ok);
    assert!(out.contains("TM cannot fix this bug"));
    assert!(out.contains("two-way communication"));
}

#[test]
fn scenario_runs_a_fast_reproduction() {
    let (out, ok) = txfix(&["scenario", "av_refcount_race"]);
    assert!(ok);
    assert!(out.contains("BUG:"));
    assert!(out.contains("clean"));
}

#[test]
fn analyze_header_names_the_scenario_bug_and_variant() {
    let (out, ok) = txfix(&["analyze", "av_stats_race", "--variant", "tm"]);
    assert!(ok, "tm variant must analyze clean");
    assert!(out.contains("scenario av_stats_race [MySQL#12228] — tm variant"), "{out}");
}

#[test]
fn lint_flags_a_buggy_scenario_and_clears_its_fixes() {
    let (out, ok) = txfix(&["lint", "av_stats_race"]);
    assert!(!ok, "findings must fail the exit code");
    assert!(out.contains("FINDING: possible data race on my12228.queries"), "{out}");
    assert!(out.contains("statically verified"), "{out}");
    let (out, ok) = txfix(&["lint", "av_stats_race", "--variant", "tm"]);
    assert!(ok, "the TM fix must lint clean");
    assert!(out.contains("no findings"), "{out}");
}

#[test]
fn lint_all_covers_the_corpus_and_fails() {
    let (out, ok) = txfix(&["lint", "--all"]);
    assert!(!ok, "buggy variants are included, so --all must fail");
    assert_eq!(out.matches("paths modeled").count(), 18 * 3);
}

#[test]
fn lint_json_parses_back_into_reports() {
    use txfix::lint::LintReport;
    let (out, ok) = txfix(&["lint", "dl_cache_atomtable", "--json"]);
    assert!(!ok);
    // The output is a JSON array of per-variant reports; split it with
    // the same parser the reports use.
    let v = txfix::recipes::json::Json::parse(out.trim()).expect("valid JSON");
    let reports: Vec<LintReport> = v
        .array("lint output")
        .expect("array")
        .iter()
        .map(|r| LintReport::from_json(&r.to_string()))
        .collect::<Result<_, _>>()
        .expect("every report parses");
    assert_eq!(reports.len(), 3);
    assert!(reports[0].has_findings(), "buggy report comes first");
    assert!(!reports[2].has_findings(), "tm report is clean");
}

#[test]
fn chaos_sweep_is_deterministic_and_writes_the_report() {
    // Run in a scratch directory so the report artifacts land there, not
    // in the repo root.
    let dir = std::env::temp_dir().join(format!("txfix-chaos-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_txfix"))
            .args([
                "chaos",
                "av_stats_race",
                "--seed",
                "11",
                "--threads",
                "2",
                "--ops",
                "60",
                "--json",
            ])
            .current_dir(&dir)
            .output()
            .expect("run txfix chaos");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "fixed seed must reproduce bit-for-bit");
    let doc = txfix::recipes::json::Json::parse(first.trim()).expect("valid JSON");
    let obj = doc.object("chaos report").expect("object");
    assert_eq!(obj["schema"].string("schema").unwrap(), "txfix-chaos-v1");
    assert!(obj["passed"].bool("passed").unwrap());
    let runs = obj["runs"].array("runs").expect("runs array");
    assert_eq!(runs.len(), 2 * 5, "one scenario x 5 schedules x dev/tm");
    let on_disk = std::fs::read_to_string(dir.join("CHAOS_stm.json")).expect("report written");
    assert_eq!(on_disk.trim(), first.trim(), "stdout and CHAOS_stm.json agree");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_sweep_is_deterministic_and_writes_the_report() {
    let dir = std::env::temp_dir().join(format!("txfix-crash-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_txfix"))
            .args(["crash", "--all", "--seed", "11", "--json"])
            .current_dir(&dir)
            .output()
            .expect("run txfix crash");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "fixed seed must reproduce bit-for-bit");
    let doc = txfix::recipes::json::Json::parse(first.trim()).expect("valid JSON");
    let obj = doc.object("crash report").expect("object");
    assert_eq!(obj["schema"].string("schema").unwrap(), "txfix-crash-v1");
    assert!(obj["ok"].bool("ok").unwrap());
    let variants = obj["variants"].array("variants").expect("variants array");
    assert_eq!(variants.len(), 2, "both WAL protocol variants swept");
    let on_disk = std::fs::read_to_string(dir.join("CRASH_stm.json")).expect("report written");
    assert_eq!(on_disk.trim(), first.trim(), "stdout and CRASH_stm.json agree");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_input_fails_with_usage() {
    let (_, ok) = txfix(&["show"]);
    assert!(!ok);
    let (_, ok) = txfix(&["frobnicate"]);
    assert!(!ok);
}
