//! Seeded fault-injection sweeps over the corpus scenarios (`txfix chaos`).
//!
//! Where [`stress`](crate::stress) measures what the runtime *sustains*,
//! this harness proves what it *survives*: every cell installs a
//! [`FaultPlan`] from a named schedule, drives a corpus-shaped workload
//! under concurrent load with faults firing at the runtime's ugliest
//! points (mid-writeback, lock revocation, failed x-call I/O), and then
//! asserts the scenario's invariants — no lost updates, no torn invariant
//! groups, no deadlock, every transaction commits within its budget.
//!
//! ## Determinism
//!
//! `txfix chaos --seed <s>` must be bit-for-bit reproducible for a fixed
//! seed and thread count, so the report contains only facts that are
//! functions of the configuration and the (fixed) per-worker op counts —
//! scenario/schedule/variant names, thread and op counts, and the
//! invariant verdicts — never timings, fault tallies or anything else the
//! thread interleaving can move. Work is *count-based* (each worker runs
//! exactly `ops_per_thread` operations), unlike the wall-clock stress
//! driver, for the same reason. Per-worker implicit state (the
//! backoff-jitter RNG) is pinned from the run seed via
//! [`seed_backoff_rng`](txfix_stm::seed_backoff_rng).

use crate::pool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txfix_core::json::{Json, ToJson};
use txfix_stm::chaos::{splitmix64, FaultPlan, InjectionPoint, Trigger};
use txfix_stm::{obs, EscalationPolicy, TVar, Txn, TxnBuilder};
use txfix_txlock::TxMutex;
use txfix_xcall::{AsyncIo, SimFs, SimPipe, XFile, XPipe};

/// Scenario keys the chaos harness can sweep, in report order.
pub const SCENARIOS: &[&str] = &[
    "av_stats_race",
    "dl_local_lock_order",
    "dl_cache_atomtable",
    "apache_ii",
    "pipe_handoff",
    "async_once",
];

/// The two fix variants every scenario provides.
pub const VARIANTS: &[&str] = &["dev", "tm"];

/// Named fault schedules, in report order. Each maps to a [`FaultPlan`]
/// via [`plan_for`].
pub const SCHEDULES: &[&str] =
    &["baseline", "txn_faults", "commit_faults", "lock_faults", "io_faults"];

/// The [`FaultPlan`] a named schedule arms under `seed`.
///
/// # Panics
///
/// Panics on a schedule name not in [`SCHEDULES`].
pub fn plan_for(schedule: &str, seed: u64) -> FaultPlan {
    let plan = FaultPlan::new(seed);
    match schedule {
        // Control: chaos layer armed but no point fires, so any invariant
        // break here is the workload's own bug.
        "baseline" => plan,
        "txn_faults" => plan
            .with(InjectionPoint::TxnBegin, Trigger::PerMille(50))
            .with(InjectionPoint::TxnRead, Trigger::PerMille(15)),
        "commit_faults" => plan
            .with(InjectionPoint::TxnPreCommit, Trigger::EveryNth(7))
            .with(InjectionPoint::TxnWriteback, Trigger::PerMille(30)),
        "lock_faults" => plan
            .with(InjectionPoint::LockAcquire, Trigger::PerMille(30))
            .with(InjectionPoint::LockDelay, Trigger::PerMille(80))
            .with(InjectionPoint::LockRevoke, Trigger::PerMille(30)),
        "io_faults" => plan
            .with(InjectionPoint::XcallFile, Trigger::PerMille(40))
            .with(InjectionPoint::XcallPipe, Trigger::PerMille(60))
            .with(InjectionPoint::XcallAsync, Trigger::PerMille(40)),
        other => panic!("unknown chaos schedule {other:?} (see chaos::SCHEDULES)"),
    }
}

/// Configuration for one chaos invocation.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Master seed; every cell derives its plan seed from this plus the
    /// cell's names, so cells are decorrelated but reproducible.
    pub seed: u64,
    /// Worker threads per cell.
    pub threads: usize,
    /// Operations each worker executes (count-based work, for
    /// determinism).
    pub ops_per_thread: u64,
    /// Scenario keys to sweep (from [`SCENARIOS`]).
    pub scenarios: Vec<&'static str>,
    /// Schedule names to sweep (from [`SCHEDULES`]).
    pub schedules: Vec<&'static str>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC4A05,
            threads: 4,
            ops_per_thread: 300,
            scenarios: SCENARIOS.to_vec(),
            schedules: SCHEDULES.to_vec(),
        }
    }
}

/// The verdict of one (scenario, variant, schedule) cell.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// Scenario key.
    pub scenario: &'static str,
    /// `dev` or `tm`.
    pub variant: &'static str,
    /// Fault schedule name.
    pub schedule: &'static str,
    /// Configured worker threads.
    pub threads: usize,
    /// Total operations the cell's workers executed (deterministic).
    pub ops: u64,
    /// Invariant violations observed (empty = the cell passed).
    pub violations: Vec<String>,
}

impl ChaosRun {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl ToJson for ChaosRun {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("scenario", Json::str(self.scenario)),
            ("variant", Json::str(self.variant)),
            ("schedule", Json::str(self.schedule)),
            ("threads", Json::int(self.threads as u64)),
            ("ops", Json::int(self.ops)),
            ("passed", Json::Bool(self.passed())),
            ("violations", Json::strings(&self.violations)),
        ])
    }
}

/// Assemble the whole-invocation report document (`CHAOS_stm.json`).
pub fn chaos_report(cfg: &ChaosConfig, runs: &[ChaosRun]) -> Json {
    Json::obj([
        ("schema", Json::str("txfix-chaos-v1")),
        ("seed", Json::int(cfg.seed)),
        ("threads", Json::int(cfg.threads as u64)),
        ("ops_per_thread", Json::int(cfg.ops_per_thread)),
        ("scenarios", Json::strings(&cfg.scenarios)),
        ("schedules", Json::strings(&cfg.schedules)),
        ("runs", Json::list(runs.iter().map(ToJson::to_json_value))),
        ("passed", Json::Bool(runs.iter().all(ChaosRun::passed))),
    ])
}

/// Run the full sweep: every configured scenario × schedule × variant.
/// Cells run sequentially (the fault plan is process-global).
pub fn run_chaos(cfg: &ChaosConfig) -> Vec<ChaosRun> {
    obs::enable();
    let mut runs = Vec::new();
    for &scenario in &cfg.scenarios {
        for &schedule in &cfg.schedules {
            for &variant in VARIANTS {
                runs.push(run_cell(cfg, scenario, schedule, variant));
            }
        }
    }
    runs
}

/// Run one cell.
///
/// # Panics
///
/// Panics on unknown scenario/schedule/variant names.
pub fn run_cell(
    cfg: &ChaosConfig,
    scenario: &'static str,
    schedule: &'static str,
    variant: &'static str,
) -> ChaosRun {
    let tm = match variant {
        "dev" => false,
        "tm" => true,
        other => panic!("unknown variant {other:?} (want dev|tm)"),
    };
    let cell_seed = mix(cfg.seed, &[scenario, schedule, variant]);
    let plan = plan_for(schedule, cell_seed);
    let _armed = txfix_stm::chaos::scoped(&plan);
    let cell = Cell {
        threads: cfg.threads.max(1),
        ops: cfg.ops_per_thread.max(1),
        seed: cell_seed,
        sink: pool::ViolationSink::new(),
    };
    let total_ops = match scenario {
        "av_stats_race" => av_stats_race(&cell, tm),
        "dl_local_lock_order" => dl_local_lock_order(&cell, tm),
        "dl_cache_atomtable" => dl_cache_atomtable(&cell, tm),
        "apache_ii" => apache_ii(&cell, tm),
        "pipe_handoff" => pipe_handoff(&cell, tm),
        "async_once" => async_once(&cell, tm),
        other => panic!("unknown chaos scenario {other:?} (see chaos::SCENARIOS)"),
    };
    ChaosRun {
        scenario,
        variant,
        schedule,
        threads: cfg.threads,
        ops: total_ops,
        violations: cell.sink.into_violations(),
    }
}

/// Derive a cell seed from the master seed and the cell's names.
fn mix(seed: u64, parts: &[&str]) -> u64 {
    let mut h = splitmix64(seed);
    for part in parts {
        for &b in part.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
    }
    h
}

/// Shared per-cell state: worker/op counts and the violation sink.
struct Cell {
    threads: usize,
    ops: u64,
    seed: u64,
    sink: pool::ViolationSink,
}

impl Cell {
    fn violate(&self, msg: String) {
        self.sink.violate(msg);
    }

    /// Every transactional body in the harness runs under this builder:
    /// site-labelled and with a degradation ladder, so "every txn commits
    /// within its budget" is the ladder's guarantee, not luck.
    ///
    /// `serial_ok` is true only for pure-TVar bodies. Bodies that acquire
    /// TxLocks or x-call isolation locks must not take the serial rung: an
    /// irrevocable attempt holding the global serialization lock while
    /// blocking on a TxMutex held by a transaction whose commit needs that
    /// same serialization lock would deadlock (DESIGN.md §8). They degrade
    /// to stronger backoff only — their eventual commit comes from
    /// unbounded retries plus deadlock preemption.
    fn builder(&self, site: &'static str, serial_ok: bool) -> TxnBuilder {
        let policy = if serial_ok {
            EscalationPolicy {
                backoff_after: 6,
                serial_after: 24,
                deadline: Some(Duration::from_secs(2)),
            }
        } else {
            EscalationPolicy { backoff_after: 6, serial_after: u64::MAX, deadline: None }
        };
        Txn::build().site(site).escalation(policy)
    }

    /// Spawn `workers` threads each executing `op(worker, i)` exactly
    /// `self.ops` times, with the backoff RNG pinned per worker. Returns
    /// total ops executed.
    fn drive(&self, workers: usize, op: impl Fn(usize, u64) + Sync) -> u64 {
        pool::run_fixed(workers, self.ops, self.seed, op)
    }
}

/// MySQL#791 shape (Recipe 2): two counters that must move together.
/// Every 16th op is a torn-group probe reading both in one transaction.
fn av_stats_race(cell: &Cell, tm: bool) -> u64 {
    let probe = |i: u64| i % 16 == 15;
    let mut expected = 0u64;
    for _ in 0..cell.threads {
        expected += (0..cell.ops).filter(|&i| !probe(i)).count() as u64;
    }
    let total;
    if tm {
        let key_cache = TVar::new(0u64);
        let hits = TVar::new(0u64);
        let txn = cell.builder("chaos_av_stats", true);
        total = cell.drive(cell.threads, |_, i| {
            let result = txn.try_run(|t| {
                if probe(i) {
                    let a = key_cache.read(t)?;
                    let b = hits.read(t)?;
                    Ok(Some((a, b)))
                } else {
                    key_cache.modify(t, |v| v + 1)?;
                    hits.modify(t, |v| v + 1)?;
                    Ok(None)
                }
            });
            match result {
                Ok((Some((a, b)), _)) if a != b => {
                    cell.violate(format!("torn stats group: key_cache={a} hits={b}"));
                }
                Ok(_) => {}
                Err(e) => cell.violate(format!("stats txn failed terminally: {e:?}")),
            }
        });
        check_eq(cell, "av_stats final key_cache", key_cache.load(), expected);
        check_eq(cell, "av_stats final hits", hits.load(), expected);
    } else {
        let stats = parking_lot::Mutex::new((0u64, 0u64));
        total = cell.drive(cell.threads, |_, i| {
            let mut s = stats.lock();
            if probe(i) {
                if s.0 != s.1 {
                    cell.violate(format!("torn stats group: {} != {}", s.0, s.1));
                }
            } else {
                s.0 += 1;
                s.1 += 1;
            }
        });
        let s = stats.lock();
        check_eq(cell, "av_stats final key_cache", s.0, expected);
        check_eq(cell, "av_stats final hits", s.1, expected);
    }
    total
}

/// Local lock-order inversion (Recipe 1): transfers between accounts must
/// conserve the total. Every 16th op audits the sum transactionally.
fn dl_local_lock_order(cell: &Cell, tm: bool) -> u64 {
    const ACCOUNTS: usize = 8;
    const TOTAL: i64 = 8 * 1_000;
    let pick = |t: usize, i: u64| -> (usize, usize) {
        let src = (i as usize).wrapping_mul(7).wrapping_add(t) % ACCOUNTS;
        let dst = (i as usize).wrapping_mul(13).wrapping_add(3) % ACCOUNTS;
        if src == dst {
            (src, (dst + 1) % ACCOUNTS)
        } else {
            (src, dst)
        }
    };
    let audit = |i: u64| i % 16 == 15;
    let total;
    if tm {
        let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| TVar::new(1_000)).collect();
        let txn = cell.builder("chaos_dl_local", true);
        total = cell.drive(cell.threads, |t, i| {
            let result = txn.try_run(|txn| {
                if audit(i) {
                    let mut sum = 0;
                    for account in &accounts {
                        sum += account.read(txn)?;
                    }
                    Ok(sum)
                } else {
                    let (src, dst) = pick(t, i);
                    accounts[src].modify(txn, |v| v - 1)?;
                    accounts[dst].modify(txn, |v| v + 1)?;
                    Ok(TOTAL)
                }
            });
            match result {
                Ok((sum, _)) if sum != TOTAL => {
                    cell.violate(format!("transfer sum {sum} != {TOTAL} mid-run"));
                }
                Ok(_) => {}
                Err(e) => cell.violate(format!("transfer txn failed terminally: {e:?}")),
            }
        });
        let sum: i64 = accounts.iter().map(TVar::load).sum();
        check_eq(cell, "dl_local final sum", sum, TOTAL);
    } else {
        let accounts: Vec<parking_lot::Mutex<i64>> =
            (0..ACCOUNTS).map(|_| parking_lot::Mutex::new(1_000)).collect();
        total = cell.drive(cell.threads, |t, i| {
            if audit(i) {
                // Lock in index order to audit a consistent cut.
                let guards: Vec<_> = accounts.iter().map(|a| a.lock()).collect();
                let sum: i64 = guards.iter().map(|g| **g).sum();
                if sum != TOTAL {
                    cell.violate(format!("transfer sum {sum} != {TOTAL} mid-run"));
                }
            } else {
                let (src, dst) = pick(t, i);
                let (lo, hi) = (src.min(dst), src.max(dst));
                let mut a = accounts[lo].lock();
                let mut b = accounts[hi].lock();
                let (from, to) = if lo == src { (&mut *a, &mut *b) } else { (&mut *b, &mut *a) };
                *from -= 1;
                *to += 1;
            }
        });
        let sum: i64 = accounts.iter().map(|a| *a.lock()).sum();
        check_eq(cell, "dl_local final sum", sum, TOTAL);
    }
    total
}

/// Mozilla#54743 shape (Recipe 3): cache and atom-table locks acquired in
/// opposite orders; data lives in TVars so revocation rolls it back.
fn dl_cache_atomtable(cell: &Cell, tm: bool) -> u64 {
    let probe = |i: u64| i % 16 == 15;
    let mut expected = 0u64;
    for _ in 0..cell.threads {
        expected += (0..cell.ops).filter(|&i| !probe(i)).count() as u64;
    }
    let total;
    if tm {
        let cache = TxMutex::new("chaos.cache", ());
        let atoms = TxMutex::new("chaos.atoms", ());
        let cache_v = TVar::new(0u64);
        let atoms_v = TVar::new(0u64);
        let txn = cell.builder("chaos_dl_cache", false);
        total = cell.drive(cell.threads, |t, i| {
            let (first, second) = if t % 2 == 0 { (&cache, &atoms) } else { (&atoms, &cache) };
            let result = txn.try_run(|txn| {
                first.with_tx(txn, |()| ())?;
                second.with_tx(txn, |()| ())?;
                if probe(i) {
                    let a = cache_v.read(txn)?;
                    let b = atoms_v.read(txn)?;
                    Ok(Some((a, b)))
                } else {
                    cache_v.modify(txn, |v| v + 1)?;
                    atoms_v.modify(txn, |v| v + 1)?;
                    Ok(None)
                }
            });
            match result {
                Ok((Some((a, b)), _)) if a != b => {
                    cell.violate(format!("torn cache/atoms pair: {a} != {b}"));
                }
                Ok(_) => {}
                Err(e) => cell.violate(format!("cache/atoms txn failed terminally: {e:?}")),
            }
        });
        check_eq(cell, "dl_cache final cache_v", cache_v.load(), expected);
        check_eq(cell, "dl_cache final atoms_v", atoms_v.load(), expected);
    } else {
        let cache = parking_lot::Mutex::new(0u64);
        let atoms = parking_lot::Mutex::new(0u64);
        total = cell.drive(cell.threads, |_, i| {
            // The developers' fix: one global order, whatever the caller
            // wanted.
            let mut c = cache.lock();
            let mut a = atoms.lock();
            if probe(i) {
                if *c != *a {
                    cell.violate(format!("torn cache/atoms pair: {} != {}", *c, *a));
                }
            } else {
                *c += 1;
                *a += 1;
            }
        });
        check_eq(cell, "dl_cache final cache_v", *cache.lock(), expected);
        check_eq(cell, "dl_cache final atoms_v", *atoms.lock(), expected);
    }
    total
}

/// One 16-byte log record: `<` + 2-digit worker + 12-digit op + `>`.
fn file_record(t: usize, i: u64) -> [u8; 16] {
    let mut rec = [0u8; 16];
    let text = format!("<{:02}{:012}>", t % 100, i);
    rec.copy_from_slice(text.as_bytes());
    rec
}

/// Apache#25520 shape (Recipe 2): concurrent appends of fixed-size records
/// through the transactional file layer; injected I/O faults drive the
/// undo hooks. Invariants: exactly-once appends, no torn records, and no
/// pending state leaked after quiescence.
fn apache_ii(cell: &Cell, tm: bool) -> u64 {
    let fs = SimFs::new();
    let xf = XFile::open_or_create(&fs, "chaos.log");
    let total = if tm {
        let txn = cell.builder("chaos_apache_ii", false);
        cell.drive(cell.threads, |t, i| {
            let rec = file_record(t, i);
            if let Err(e) = txn.try_run(|txn| xf.x_append(txn, &rec)) {
                cell.violate(format!("append txn failed terminally: {e:?}"));
            }
        })
    } else {
        let lock = parking_lot::Mutex::new(());
        cell.drive(cell.threads, |t, i| {
            let _g = lock.lock();
            xf.file().append(&file_record(t, i));
        })
    };
    let data = xf.file().read_all();
    check_eq(cell, "apache_ii log length", data.len() as u64, total * 16);
    let mut per_worker = vec![0u64; cell.threads];
    for chunk in data.chunks(16) {
        if chunk.len() != 16 || chunk[0] != b'<' || chunk[15] != b'>' {
            cell.violate(format!("torn log record: {chunk:?}"));
            continue;
        }
        let worker: usize = std::str::from_utf8(&chunk[1..3])
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(usize::MAX);
        match per_worker.get_mut(worker) {
            Some(count) => *count += 1,
            None => cell.violate(format!("log record from unknown worker {worker}")),
        }
    }
    for (worker, &count) in per_worker.iter().enumerate() {
        if count != cell.ops {
            cell.violate(format!(
                "worker {worker} has {count} records, expected {} (lost or duplicated appends)",
                cell.ops
            ));
        }
    }
    match xf.pending_snapshot() {
        Some((0, 0)) => {}
        Some((owner, ops)) => {
            cell.violate(format!("pending state leaked: owner={owner} ops={ops}"));
        }
        None => cell.violate("isolation lock still held after quiescence".into()),
    }
    total
}

/// The deterministic payload byte worker `t` produces at op `i`.
fn pipe_byte(t: usize, i: u64) -> u8 {
    ((t.wrapping_mul(131) as u64).wrapping_add(i.wrapping_mul(7)) % 251) as u8
}

/// Producer/consumer handoff over a bounded pipe: deferred transactional
/// writes against compensated reads. Conservation: every byte produced is
/// consumed exactly once, even when aborts force read compensation.
fn pipe_handoff(cell: &Cell, tm: bool) -> u64 {
    let producers = (cell.threads / 2).max(1);
    let consumers = (cell.threads - producers).max(1);
    let expected_count = producers as u64 * cell.ops;
    let mut expected_sum = 0u64;
    for t in 0..producers {
        for i in 0..cell.ops {
            expected_sum += u64::from(pipe_byte(t, i));
        }
    }
    let pipe = SimPipe::new(64);
    if tm {
        let xp = XPipe::new(pipe.clone());
        let consumed_count = TVar::new(0u64);
        let consumed_sum = TVar::new(0u64);
        let produce = cell.builder("chaos_pipe_produce", false);
        let consume = cell.builder("chaos_pipe_consume", false);
        std::thread::scope(|s| {
            for t in 0..producers {
                let (xp, produce, cell) = (&xp, &produce, &cell);
                s.spawn(move || {
                    txfix_stm::seed_backoff_rng(splitmix64(
                        cell.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ));
                    for i in 0..cell.ops {
                        let byte = [pipe_byte(t, i)];
                        if let Err(e) = produce.try_run(|txn| xp.x_write(txn, &byte)) {
                            cell.violate(format!("produce txn failed terminally: {e:?}"));
                        }
                    }
                });
            }
            for c in 0..consumers {
                let (xp, consume, cell) = (&xp, &consume, &cell);
                let (consumed_count, consumed_sum) = (&consumed_count, &consumed_sum);
                s.spawn(move || {
                    txfix_stm::seed_backoff_rng(splitmix64(
                        cell.seed ^ ((producers + c) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ));
                    while consumed_count.load() < expected_count {
                        let result = consume.try_run(|txn| {
                            match xp.x_try_read(txn, 16)? {
                                Some(bytes) if !bytes.is_empty() => {
                                    // Count and sum move with the read in
                                    // one transaction: an abort compensates
                                    // the read AND rolls the counters back.
                                    let n = bytes.len() as u64;
                                    let sum: u64 = bytes.iter().map(|&b| u64::from(b)).sum();
                                    consumed_count.modify(txn, |v| v + n)?;
                                    consumed_sum.modify(txn, |v| v + sum)?;
                                    Ok(true)
                                }
                                _ => Ok(false),
                            }
                        });
                        match result {
                            Ok((true, _)) => {}
                            Ok((false, _)) => std::thread::yield_now(),
                            Err(e) => {
                                cell.violate(format!("consume txn failed terminally: {e:?}"));
                                return;
                            }
                        }
                    }
                });
            }
        });
        check_eq(cell, "pipe_handoff consumed bytes", consumed_count.load(), expected_count);
        check_eq(cell, "pipe_handoff consumed checksum", consumed_sum.load(), expected_sum);
    } else {
        let consumed_count = AtomicU64::new(0);
        let consumed_sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..producers {
                let pipe = &pipe;
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..cell.ops {
                        if pipe.write(&[pipe_byte(t, i)]).is_err() {
                            cell.violate("pipe closed under producer".into());
                        }
                    }
                });
            }
            for _ in 0..consumers {
                let (pipe, consumed_count, consumed_sum) = (&pipe, &consumed_count, &consumed_sum);
                s.spawn(move || {
                    while consumed_count.load(Ordering::SeqCst) < expected_count {
                        match pipe.try_read(16) {
                            Some(bytes) if !bytes.is_empty() => {
                                let sum: u64 = bytes.iter().map(|&b| u64::from(b)).sum();
                                consumed_count.fetch_add(bytes.len() as u64, Ordering::SeqCst);
                                consumed_sum.fetch_add(sum, Ordering::SeqCst);
                            }
                            _ => std::thread::yield_now(),
                        }
                    }
                });
            }
        });
        check_eq(cell, "pipe_handoff consumed bytes", consumed_count.into_inner(), expected_count);
        check_eq(cell, "pipe_handoff consumed checksum", consumed_sum.into_inner(), expected_sum);
    }
    check_eq(cell, "pipe_handoff residual bytes", pipe.buffered() as u64, 0);
    producers as u64 * cell.ops
}

/// Mozilla#19421 shape (§5.3.2): commit-time async submissions must run
/// exactly once — aborted attempts (including injected submission
/// failures) never enqueue, committed ones always do.
fn async_once(cell: &Cell, tm: bool) -> u64 {
    let aio = AsyncIo::new();
    let completed = Arc::new(AtomicU64::new(0));
    let total;
    if tm {
        let submitted = TVar::new(0u64);
        let txn = cell.builder("chaos_async_once", false);
        total = cell.drive(cell.threads, |_, _| {
            let done = completed.clone();
            let result = txn.try_run(|t| {
                submitted.modify(t, |v| v + 1)?;
                let done = done.clone();
                aio.x_submit(
                    t,
                    || (),
                    move |()| {
                        done.fetch_add(1, Ordering::SeqCst);
                    },
                )
            });
            if let Err(e) = result {
                cell.violate(format!("submit txn failed terminally: {e:?}"));
            }
        });
        check_eq(cell, "async_once submitted", submitted.load(), total);
    } else {
        let submitted = AtomicU64::new(0);
        total = cell.drive(cell.threads, |_, _| {
            submitted.fetch_add(1, Ordering::SeqCst);
            let done = completed.clone();
            aio.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        });
        check_eq(cell, "async_once submitted", submitted.into_inner(), total);
    }
    if !aio.drain(Duration::from_secs(10)) {
        cell.violate("async queue failed to drain".into());
    }
    check_eq(cell, "async_once completed", completed.load(Ordering::SeqCst), total);
    aio.shutdown();
    total
}

fn check_eq<T: PartialEq + std::fmt::Debug>(cell: &Cell, what: &str, got: T, want: T) {
    cell.sink.check_eq(what, got, want);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fault plan is process-global; serialize the tests that install
    // one so their triggers do not interleave.
    static GATE: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    fn small(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            threads: 2,
            ops_per_thread: 48,
            scenarios: SCENARIOS.to_vec(),
            schedules: SCHEDULES.to_vec(),
        }
    }

    #[test]
    fn every_schedule_maps_to_a_plan() {
        for &schedule in SCHEDULES {
            let plan = plan_for(schedule, 7);
            assert_eq!(plan.is_empty(), schedule == "baseline", "{schedule}");
        }
    }

    #[test]
    fn full_sweep_passes_all_invariants() {
        let _g = GATE.lock();
        let cfg = small(0xFEED);
        let runs = run_chaos(&cfg);
        assert_eq!(runs.len(), SCENARIOS.len() * SCHEDULES.len() * VARIANTS.len());
        for run in &runs {
            assert!(
                run.passed(),
                "{}/{}/{}: {:?}",
                run.scenario,
                run.schedule,
                run.variant,
                run.violations
            );
            assert!(run.ops > 0);
        }
    }

    #[test]
    fn report_is_deterministic_for_a_fixed_seed() {
        let _g = GATE.lock();
        let cfg = ChaosConfig { scenarios: vec!["av_stats_race", "pipe_handoff"], ..small(0xD00D) };
        let a = chaos_report(&cfg, &run_chaos(&cfg)).to_json();
        let b = chaos_report(&cfg, &run_chaos(&cfg)).to_json();
        assert_eq!(a, b, "chaos report must be bit-for-bit reproducible");
        let parsed = Json::parse(&a).expect("valid JSON");
        let obj = parsed.object("report").unwrap();
        assert_eq!(obj.get("schema").unwrap().string("schema").unwrap(), "txfix-chaos-v1");
        assert!(obj.get("passed").unwrap().bool("passed").unwrap());
    }

    #[test]
    fn injected_faults_actually_fire() {
        let _g = GATE.lock();
        let cfg = ChaosConfig {
            scenarios: vec!["av_stats_race"],
            schedules: vec!["commit_faults"],
            ..small(0xBEEF)
        };
        let before = txfix_stm::stats();
        let runs = run_chaos(&cfg);
        let injected = txfix_stm::stats().delta(&before).chaos_injected;
        assert!(runs.iter().all(ChaosRun::passed));
        assert!(injected > 0, "commit_faults schedule should inject faults");
    }
}
