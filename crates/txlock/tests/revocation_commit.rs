//! Revocation racing the victim's commit window (satellite of the chaos
//! PR): a kill that lands after the victim has decided to commit must be
//! ignored (Recipe 3 — commits are not abort points), the lock must be
//! released exactly once (a double release panics "released by
//! non-owner"), and a blocked acquirer must still be woken.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use txfix_stm::chaos::{self, FaultPlan, InjectionPoint, Trigger};
use txfix_stm::{KillHandle, Txn};
use txfix_txlock::TxMutex;

/// Chaos plans are process-global; serialize tests so one test's triggers
/// are never drawn by another's transactions.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn spin_until(flag: &AtomicBool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !flag.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

#[test]
fn kill_in_the_commit_window_commits_cleanly_and_wakes_the_waiter() {
    let _g = gate();
    chaos::clear();
    let m = TxMutex::new("revocation_commit.window", 0u64);
    let handle_slot: Mutex<Option<KillHandle>> = Mutex::new(None);
    let holder_ready = AtomicBool::new(false);
    let kill_delivered = AtomicBool::new(false);
    let waiter_value = AtomicU64::new(u64::MAX);

    std::thread::scope(|s| {
        let victim = s.spawn(|| {
            Txn::build()
                .try_run(|txn| {
                    m.with_tx(txn, |v| *v += 1)?;
                    *handle_slot.lock().unwrap() = Some(txn.kill_handle());
                    holder_ready.store(true, Ordering::SeqCst);
                    // Hold the commit decision open until the kill has
                    // landed: the body is done, the lock is held, and the
                    // kill flag is set when commit runs.
                    spin_until(&kill_delivered, "kill delivery");
                    Ok(())
                })
                .expect("commit must ignore a kill that arrives after the decision")
        });

        let waiter = s.spawn(|| {
            spin_until(&holder_ready, "holder to take the lock");
            // Blocks until the victim's commit releases the lock; a lost
            // wakeup leaves this thread parked and trips spin_until's
            // timeout via the join below.
            let guard = m.lock().expect("waiter must not be diagnosed as deadlocked");
            waiter_value.store(*guard, Ordering::SeqCst);
        });

        spin_until(&holder_ready, "holder to take the lock");
        let handle = handle_slot.lock().unwrap().take().expect("handle published");
        handle.kill();
        assert!(handle.is_killed());
        kill_delivered.store(true, Ordering::SeqCst);

        let (_, report) = victim.join().expect("victim thread");
        assert_eq!(report.attempts, 1, "the kill must not force a retry of a committing txn");
        waiter.join().expect("waiter thread");
    });

    assert_eq!(waiter_value.load(Ordering::SeqCst), 1, "waiter sees the committed increment");
    assert_eq!(*m.lock().expect("lock free after both threads"), 1);
}

#[test]
fn injected_revocation_releases_once_and_wakes_the_next_acquirer() {
    let _g = gate();
    // The victim's first acquisition is revoked right after it succeeds —
    // the abort unwinds through the same release path a real preemption
    // takes. The retry must re-acquire, commit, and leave the lock free.
    let plan = FaultPlan::new(9).with(InjectionPoint::LockRevoke, Trigger::Nth(1));
    let _armed = chaos::scoped(&plan);
    let m = TxMutex::new("revocation_commit.revoke", 0u64);
    let (_, report) =
        Txn::build().try_run(|txn| m.with_tx(txn, |v| *v += 1)).expect("retry must commit");
    assert_eq!(report.attempts, 2, "one revoked acquisition, one clean one");
    // A leaked or double-released lock would deadlock or panic here.
    assert_eq!(*m.lock().expect("lock free after revocation"), 1);
    assert_eq!(chaos::injected_total(), 1);
}

#[test]
fn revocation_storm_under_contention_conserves_the_protected_count() {
    let _g = gate();
    let plan = FaultPlan::new(10)
        .with(InjectionPoint::LockRevoke, Trigger::PerMille(200))
        .with(InjectionPoint::LockAcquire, Trigger::PerMille(100))
        .with(InjectionPoint::LockDelay, Trigger::PerMille(100));
    let _armed = chaos::scoped(&plan);
    let m = TxMutex::new("revocation_commit.storm", 0u64);
    const THREADS: usize = 4;
    const OPS: u64 = 100;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let m = &m;
            s.spawn(move || {
                txfix_stm::seed_backoff_rng(chaos::splitmix64(0xF00D ^ t as u64));
                for _ in 0..OPS {
                    Txn::build()
                        .try_run(|txn| m.with_tx(txn, |v| *v += 1))
                        .expect("every op commits despite revocations");
                }
            });
        }
    });
    assert_eq!(
        *m.lock().expect("lock free after the storm"),
        THREADS as u64 * OPS,
        "each op's increment lands exactly once"
    );
}
