//! FIRST-style crash points and the freeze-the-world crash model.
//!
//! Crash-recovery testing needs two things the chaos layer does not give
//! us: *named* instrumentation sites ("the instant after the COMMIT
//! marker reached the log") and a way to stop the durable world at one of
//! them. This module provides both, reusing the chaos crate's
//! [`Trigger`] machinery and `splitmix64` coins so crash schedules are
//! exactly as deterministic as fault schedules.
//!
//! ## The freeze model
//!
//! A real crash kills the process between two stores. Simulating that
//! with a panic would unwind through live transactions — running abort
//! compensations and releasing revocable locks, i.e. *post-crash code* —
//! and pollute the very image we want to inspect. Instead, a firing
//! crash point sets a global **frozen** flag: every simulated durable
//! mutation ([`SimFile`](crate::SimFile) appends/writes/syncs,
//! [`SimPipe`](crate::SimPipe) traffic) becomes a silent no-op from that
//! instant on. The workload keeps executing (and its late
//! acknowledgements are discounted by the checker), but the simulated
//! disk and page cache are bit-for-bit what they were at the crash
//! instant — the same durable image a kill-at-point harness would see,
//! without leaking lock or lockdep state. Notably, abort compensations
//! queued before the crash (pipe `unread`s, pending-op undo writes)
//! cannot replay into the post-crash image, because by the time they run
//! the world is frozen.
//!
//! After the harness takes the crash image
//! ([`SimFs::crash`](crate::SimFs::crash) bypasses the freeze — it *is*
//! the crash), dropping the [`Session`] guard thaws the world for the
//! recovery run.
//!
//! ## Modes
//!
//! * **Record** ([`record`]): every [`crash_point`] label is counted in
//!   first-seen order. A sweep runs the workload once in record mode to
//!   learn the crash-point universe, then once per `(label, hit)` armed.
//! * **Armed** ([`arm`]): one label carries a [`Trigger`]; on the firing
//!   hit ordinal the world freezes.
//!
//! Like the chaos and canary layers, the disarmed fast path is a single
//! relaxed atomic load, so instrumented production paths pay nothing
//! when no crash session is active. The registry is process-global;
//! tests that arm it must serialize on a gate mutex.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use txfix_stm::chaos::{splitmix64, Trigger};

/// Fast-path gate: is any crash session (record or armed) installed?
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// The world stopped here: durable mutations are no-ops while set.
static FROZEN: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Mode>> = Mutex::new(None);

enum Mode {
    Record {
        /// `(label, hits)` in first-seen order — the crash-point universe.
        seen: Vec<(String, u64)>,
    },
    Armed {
        label: String,
        seed: u64,
        trigger: Trigger,
        hits: u64,
        fired: Option<u64>,
    },
}

/// Stable 64-bit label hash (FNV-1a finished with `splitmix64`), used to
/// salt per-label trigger coins and per-file crash-image coins.
pub fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

fn trigger_fires(trigger: Trigger, seed: u64, salt: u64, hit: u64) -> bool {
    match trigger {
        Trigger::PerMille(p) => (splitmix64(seed ^ salt ^ hit) % 1000) < u64::from(p.min(1000)),
        Trigger::Nth(n) => hit == n.max(1),
        Trigger::EveryNth(n) => hit.is_multiple_of(n.max(1)),
    }
}

/// An installed crash session. Dropping it disarms the registry and thaws
/// the world.
pub struct Session {
    _priv: (),
}

impl Drop for Session {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        *STATE.lock().unwrap() = None;
        FROZEN.store(false, Ordering::SeqCst);
    }
}

fn install(mode: Mode) -> Session {
    let mut g = STATE.lock().unwrap();
    *g = Some(mode);
    FROZEN.store(false, Ordering::SeqCst);
    ACTIVE.store(true, Ordering::SeqCst);
    Session { _priv: () }
}

/// Start recording crash-point labels and hit counts.
pub fn record() -> Session {
    install(Mode::Record { seen: Vec::new() })
}

/// Arm `label` with `trigger` under `seed`: the firing hit freezes the
/// world.
pub fn arm(label: &str, seed: u64, trigger: Trigger) -> Session {
    install(Mode::Armed { label: label.to_owned(), seed, trigger, hits: 0, fired: None })
}

/// The labels seen so far in record mode, with hit counts, in first-seen
/// order. Empty outside record mode.
pub fn recording() -> Vec<(String, u64)> {
    match &*STATE.lock().unwrap() {
        Some(Mode::Record { seen }) => seen.clone(),
        _ => Vec::new(),
    }
}

/// `(label, hit ordinal)` of the crash, if the armed trigger has fired.
pub fn fired() -> Option<(String, u64)> {
    match &*STATE.lock().unwrap() {
        Some(Mode::Armed { label, fired: Some(hit), .. }) => Some((label.clone(), *hit)),
        _ => None,
    }
}

/// Whether the world is frozen (a crash point has fired). Durable
/// mutations check this and become no-ops.
#[inline]
pub fn is_frozen() -> bool {
    FROZEN.load(Ordering::Relaxed)
}

/// A FIRST-style crash point: a named place where a crash may be
/// scheduled. Free on the disarmed path; in record mode it counts the
/// label, in armed mode it may freeze the world.
pub fn crash_point(label: &str) {
    if !ACTIVE.load(Ordering::Relaxed) || FROZEN.load(Ordering::Relaxed) {
        return;
    }
    let mut g = STATE.lock().unwrap();
    match g.as_mut() {
        Some(Mode::Record { seen }) => match seen.iter_mut().find(|(l, _)| l == label) {
            Some((_, n)) => *n += 1,
            None => seen.push((label.to_owned(), 1)),
        },
        Some(Mode::Armed { label: armed, seed, trigger, hits, fired }) if armed == label => {
            *hits += 1;
            if fired.is_none() && trigger_fires(*trigger, *seed, label_hash(label), *hits) {
                *fired = Some(*hits);
                FROZEN.store(true, Ordering::SeqCst);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The registry is process-global; tests arming it take this gate.
    /// Exposed to sibling modules' tests via `crate::crashpoint::tests`.
    pub(crate) static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn record_mode_counts_labels_in_first_seen_order() {
        let _g = GATE.lock().unwrap();
        let s = record();
        crash_point("b");
        crash_point("a");
        crash_point("b");
        assert_eq!(recording(), vec![("b".to_owned(), 2), ("a".to_owned(), 1)]);
        drop(s);
        assert!(recording().is_empty(), "dropping the session disarms");
    }

    #[test]
    fn armed_nth_freezes_on_exact_hit_and_thaw_on_drop() {
        let _g = GATE.lock().unwrap();
        let s = arm("x", 7, Trigger::Nth(2));
        crash_point("y"); // other labels never fire
        crash_point("x");
        assert!(!is_frozen());
        crash_point("x");
        assert!(is_frozen());
        assert_eq!(fired(), Some(("x".to_owned(), 2)));
        // Further hits after the crash are not counted: the world is dead.
        crash_point("x");
        assert_eq!(fired(), Some(("x".to_owned(), 2)));
        drop(s);
        assert!(!is_frozen(), "dropping the session thaws");
        assert_eq!(fired(), None);
    }

    #[test]
    fn per_mille_coin_is_deterministic_per_seed() {
        let _g = GATE.lock().unwrap();
        let run = |seed: u64| {
            let _s = arm("p", seed, Trigger::PerMille(400));
            for _ in 0..64 {
                crash_point("p");
            }
            fired().map(|(_, hit)| hit)
        };
        assert_eq!(run(3), run(3), "same seed, same firing ordinal");
        // Label salting: a different label under the same seed draws
        // different coins (with overwhelming probability for this pair).
        let other = {
            let _s = arm("q", 3, Trigger::PerMille(400));
            for _ in 0..64 {
                crash_point("q");
            }
            fired().map(|(_, hit)| hit)
        };
        assert!(run(3).is_some() || other.is_some());
    }

    #[test]
    fn disarmed_crash_points_are_free_noops() {
        // No gate needed: nothing is armed and nothing is mutated.
        crash_point("anything");
        assert!(!is_frozen());
        assert_eq!(fired(), None);
    }
}
