//! Regenerate Table 4: the four demonstration fixes — recipe applied,
//! performance relative to the developers' fix, and fix size.
//!
//! Pass `--full` for benchmark-scale runs (the default is a quick pass)
//! and `--json` for a machine-readable version (table rows plus the full
//! per-variant case comparisons).

use txfix_bench::{
    apache_i_comparison, apache_ii_comparison, mozilla_i_comparison, mysql_i_comparison, Scale,
};
use txfix_core::json::{Json, ToJson};
use txfix_core::TextTable;

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") { Scale::Full } else { Scale::Quick };
    let json = std::env::args().any(|a| a == "--json");
    let cases = [
        (mozilla_i_comparison(scale), "DL", "involves locks only", 23u32),
        (apache_i_comparison(scale), "DL", "involves lock and wait", 32),
        (apache_ii_comparison(scale), "AV", "complete missing synchronization", 20),
        (mysql_i_comparison(scale), "AV", "partial missing synchronization", 103),
    ];

    let mut t = TextTable::new(
        "Table 4. Bugs and corresponding fix recipes applied for demonstration purposes",
        &["Bug ID", "Cause", "Characteristics", "Fix", "Paper perf.", "Measured perf.", "LOC"],
    );
    for (c, cause, characteristics, loc) in &cases {
        t.row(&[
            c.case.to_string(),
            cause.to_string(),
            characteristics.to_string(),
            c.recipe.to_string(),
            format!("{:.1}%", c.paper_relative * 100.0),
            format!("{:.1}%", c.measured_relative() * 100.0),
            loc.to_string(),
        ]);
    }
    if json {
        let doc = Json::obj([
            ("table", t.to_json_value()),
            ("cases", Json::list(cases.iter().map(|(c, ..)| c.to_json_value()))),
        ]);
        println!("{}", doc.to_json());
        return;
    }
    print!("{t}");
    println!("\nPer-variant detail:\n");
    for (c, ..) in &cases {
        println!("{}", c.render());
    }
}
