//! The checkpoint page layer: a bounded buffer pool of fixed-size pages
//! over a simos file, plus the double-buffered checkpoint file format.
//!
//! Checkpoints are the store's second durability channel (the first is
//! the redo log): a shard snapshot is serialized, paginated through the
//! pool, flushed page-by-page (each write-back crossing the
//! [`KV_POOL_FLUSH`] crash point), and committed by an fsync. Validity is
//! decided by a checksum trailer, so a crash torn anywhere inside the
//! flush leaves a checkpoint that recovery *rejects* — it falls back to
//! the other buffer of the pair and the full WAL replay.

use std::collections::BTreeMap;
use std::sync::Arc;
use txfix_xcall::{crashpoint, SimFile};

/// Bytes per buffer-pool page — a small multiple of the simos block size
/// (32), so one page write dirties a deterministic set of blocks.
pub const PAGE_BYTES: usize = 64;

/// Crash point crossed before every dirty-page write-back (flush and
/// eviction alike): the window where a torn checkpoint is manufactured.
pub const KV_POOL_FLUSH: &str = "kv_pool_flush";

/// Cumulative buffer-pool counters — pure functions of the access
/// sequence, so they are safe to put in deterministic artifacts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page accesses served from a resident frame.
    pub hits: u64,
    /// Page accesses that had to load from the file.
    pub misses: u64,
    /// Frames recycled by the clock hand.
    pub evictions: u64,
    /// Dirty pages written back (flush and eviction write-backs).
    pub flushed_pages: u64,
}

struct Frame {
    page_no: usize,
    data: [u8; PAGE_BYTES],
    dirty: bool,
    referenced: bool,
}

/// A bounded page cache over one simos file: clock eviction, dirty
/// tracking, and an explicit [`flush`](BufferPool::flush) that makes the
/// file durable.
pub struct BufferPool {
    file: Arc<SimFile>,
    capacity: usize,
    frames: Vec<Frame>,
    hand: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool of at most `capacity` resident pages over `file`.
    pub fn new(file: Arc<SimFile>, capacity: usize) -> BufferPool {
        assert!(capacity >= 1, "a buffer pool needs at least one frame");
        BufferPool { file, capacity, frames: Vec::new(), hand: 0, stats: PoolStats::default() }
    }

    /// The underlying file.
    pub fn file(&self) -> &Arc<SimFile> {
        &self.file
    }

    /// Counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    fn load_page(file: &SimFile, page_no: usize) -> [u8; PAGE_BYTES] {
        let bytes = file.read_all();
        let mut data = [0u8; PAGE_BYTES];
        let from = (page_no * PAGE_BYTES).min(bytes.len());
        let to = ((page_no + 1) * PAGE_BYTES).min(bytes.len());
        data[..to - from].copy_from_slice(&bytes[from..to]);
        data
    }

    fn write_back(file: &SimFile, frame: &mut Frame, stats: &mut PoolStats) {
        crashpoint::crash_point(KV_POOL_FLUSH);
        file.write_at(frame.page_no * PAGE_BYTES, &frame.data);
        frame.dirty = false;
        stats.flushed_pages += 1;
    }

    /// Index of the frame holding `page_no`, faulting it in (and possibly
    /// evicting) if absent.
    fn frame_of(&mut self, page_no: usize) -> usize {
        if let Some(i) = self.frames.iter().position(|f| f.page_no == page_no) {
            self.stats.hits += 1;
            self.frames[i].referenced = true;
            return i;
        }
        self.stats.misses += 1;
        let data = Self::load_page(&self.file, page_no);
        if self.frames.len() < self.capacity {
            self.frames.push(Frame { page_no, data, dirty: false, referenced: true });
            return self.frames.len() - 1;
        }
        // Clock: sweep, clearing reference bits, until an unreferenced
        // frame comes around; write it back if dirty (no fsync — an
        // eviction write-back is not yet durable).
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[i].referenced {
                self.frames[i].referenced = false;
                continue;
            }
            if self.frames[i].dirty {
                Self::write_back(&self.file, &mut self.frames[i], &mut self.stats);
            }
            self.stats.evictions += 1;
            self.frames[i] = Frame { page_no, data, dirty: false, referenced: true };
            return i;
        }
    }

    /// Read `len` bytes starting at `offset` through the pool.
    pub fn read_at(&mut self, offset: usize, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while pos < offset + len {
            let page_no = pos / PAGE_BYTES;
            let in_page = pos % PAGE_BYTES;
            let take = (PAGE_BYTES - in_page).min(offset + len - pos);
            let i = self.frame_of(page_no);
            out.extend_from_slice(&self.frames[i].data[in_page..in_page + take]);
            pos += take;
        }
        out
    }

    /// Write `bytes` at `offset` through the pool (buffered: reaches the
    /// file only on eviction or [`flush`](BufferPool::flush)).
    pub fn write_at(&mut self, offset: usize, bytes: &[u8]) {
        let mut pos = 0;
        while pos < bytes.len() {
            let abs = offset + pos;
            let page_no = abs / PAGE_BYTES;
            let in_page = abs % PAGE_BYTES;
            let take = (PAGE_BYTES - in_page).min(bytes.len() - pos);
            let i = self.frame_of(page_no);
            self.frames[i].data[in_page..in_page + take].copy_from_slice(&bytes[pos..pos + take]);
            self.frames[i].dirty = true;
            pos += take;
        }
    }

    /// Write back every dirty frame in page order, then fsync the file.
    /// Each write-back crosses [`KV_POOL_FLUSH`]; a crash armed there
    /// leaves a torn, checksum-invalid checkpoint.
    pub fn flush(&mut self) {
        let mut order: Vec<usize> = (0..self.frames.len()).collect();
        order.sort_by_key(|&i| self.frames[i].page_no);
        for i in order {
            if self.frames[i].dirty {
                Self::write_back(&self.file, &mut self.frames[i], &mut self.stats);
            }
        }
        self.file.sync_all();
    }

    /// Drop every cached frame (dirty ones included — the caller is
    /// abandoning buffered writes, e.g. after recovery chose the other
    /// checkpoint buffer).
    pub fn discard(&mut self) {
        self.frames.clear();
        self.hand = 0;
    }
}

/// FNV-1a over `bytes` — the checkpoint checksum. Plain integer
/// arithmetic: deterministic on every platform.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded, checksum-valid checkpoint image.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotonic checkpoint generation; the valid buffer with the
    /// highest epoch wins at recovery.
    pub epoch: u64,
    /// One past the highest txid the snapshot covers.
    pub next_txid: u64,
    /// The snapshot itself.
    pub map: BTreeMap<String, String>,
}

/// Serialize `cp` to the on-disk checkpoint format:
///
/// ```text
/// KVCP <epoch> <next_txid> <payload_len> ;\n
/// S <key> <value> ;\n        (payload, one line per entry)
/// KVEND <epoch> <fnv64-hex> ;\n
/// ```
pub fn encode_checkpoint(cp: &Checkpoint) -> Vec<u8> {
    let mut payload = String::new();
    for (k, v) in &cp.map {
        payload.push_str(&format!("S {k} {v} ;\n"));
    }
    let mut out = format!("KVCP {} {} {} ;\n", cp.epoch, cp.next_txid, payload.len());
    out.push_str(&payload);
    out.push_str(&format!("KVEND {} {:016x} ;\n", cp.epoch, fnv64(payload.as_bytes())));
    out.into_bytes()
}

/// Decode and validate a checkpoint image. `None` for anything torn:
/// unparseable header or trailer, epoch mismatch between them, short
/// payload, or checksum mismatch.
pub fn decode_checkpoint(bytes: &[u8]) -> Option<Checkpoint> {
    let text = std::str::from_utf8(bytes).ok()?;
    let (header, rest) = text.split_once('\n')?;
    let head: Vec<&str> = header.split(' ').collect();
    let (epoch, next_txid, payload_len) = match head.as_slice() {
        ["KVCP", e, t, l, ";"] => (e.parse().ok()?, t.parse().ok()?, l.parse::<usize>().ok()?),
        _ => return None,
    };
    if rest.len() < payload_len {
        return None;
    }
    let payload = &rest[..payload_len];
    let trailer = rest[payload_len..].lines().next()?;
    match trailer.split(' ').collect::<Vec<&str>>().as_slice() {
        ["KVEND", e, sum, ";"] => {
            if e.parse::<u64>().ok()? != epoch
                || u64::from_str_radix(sum, 16).ok()? != fnv64(payload.as_bytes())
            {
                return None;
            }
        }
        _ => return None,
    }
    let mut map = BTreeMap::new();
    for line in payload.lines() {
        match line.split(' ').collect::<Vec<&str>>().as_slice() {
            ["S", k, v, ";"] => {
                map.insert((*k).to_string(), (*v).to_string());
            }
            _ => return None,
        }
    }
    Some(Checkpoint { epoch, next_txid, map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use txfix_xcall::SimFs;

    #[test]
    fn pool_round_trips_and_counts_hits() {
        let fs = SimFs::new();
        let f = fs.open_or_create("p");
        let mut pool = BufferPool::new(f, 2);
        pool.write_at(10, b"hello");
        assert_eq!(pool.read_at(10, 5), b"hello");
        assert_eq!(pool.stats().misses, 1);
        assert!(pool.stats().hits >= 1);
        // Not yet on the file.
        assert!(pool.file().read_all().is_empty());
        pool.flush();
        assert_eq!(&pool.file().read_all()[10..15], b"hello");
        assert_eq!(pool.file().durable_snapshot(), pool.file().read_all());
    }

    #[test]
    fn clock_eviction_writes_back_dirty_frames() {
        let fs = SimFs::new();
        let f = fs.open_or_create("p");
        let mut pool = BufferPool::new(f, 2);
        pool.write_at(0, b"aa"); // page 0, dirty
        pool.write_at(PAGE_BYTES, b"bb"); // page 1, dirty
                                          // Faulting page 2 must evict one of them, writing it back.
        pool.read_at(2 * PAGE_BYTES, 1);
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().flushed_pages, 1);
        // The evicted page's contents are readable through the pool again.
        assert_eq!(pool.read_at(0, 2), b"aa");
        assert_eq!(pool.read_at(PAGE_BYTES, 2), b"bb");
    }

    #[test]
    fn checkpoint_encoding_round_trips_and_rejects_tears() {
        let cp = Checkpoint {
            epoch: 7,
            next_txid: 42,
            map: BTreeMap::from([
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "2".to_string()),
            ]),
        };
        let bytes = encode_checkpoint(&cp);
        assert_eq!(decode_checkpoint(&bytes), Some(cp.clone()));
        // Any single corrupted byte in the payload fails the checksum.
        for i in 0..bytes.len() {
            let mut torn = bytes.clone();
            torn[i] ^= 0x40;
            assert_ne!(decode_checkpoint(&torn), Some(cp.clone()), "byte {i}");
        }
        // A truncated image never validates — except for dropping only
        // the final newline, which leaves the trailer line complete.
        for cut in 0..bytes.len() - 1 {
            assert_eq!(decode_checkpoint(&bytes[..cut]), None, "cut {cut}");
        }
        assert_eq!(decode_checkpoint(&bytes[..bytes.len() - 1]), Some(cp.clone()));
        // The empty checkpoint round-trips too.
        let empty = Checkpoint { epoch: 1, next_txid: 1, map: BTreeMap::new() };
        assert_eq!(decode_checkpoint(&encode_checkpoint(&empty)), Some(empty));
    }
}
