//! Undo/compensation audit for the x-call layer under injected I/O faults
//! (satellite of the chaos PR): aborted file transactions must leave no
//! pending state behind, compensated pipe reads must restore bytes in
//! order, and commit-time async submissions must stay exactly-once.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use txfix_stm::chaos::{self, splitmix64, FaultPlan, InjectionPoint, Trigger};
use txfix_stm::Txn;
use txfix_xcall::{AsyncIo, SimFs, SimPipe, XFile, XPipe};

/// Chaos plans are process-global; serialize tests so one test's triggers
/// are never drawn by another's transactions.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn injected_file_faults_leak_no_pending_state() {
    let _g = gate();
    // Roughly a third of file x-calls fail *after* the op is buffered, so
    // every abort exercises the real undo hook (clear ops, release the
    // isolation lock) against real state.
    let plan = FaultPlan::new(20).with(InjectionPoint::XcallFile, Trigger::PerMille(300));
    let _armed = chaos::scoped(&plan);
    let fs = SimFs::new();
    let xf = XFile::open_or_create(&fs, "undo.log");
    const THREADS: usize = 4;
    const OPS: u64 = 80;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let xf = xf.clone();
            s.spawn(move || {
                txfix_stm::seed_backoff_rng(splitmix64(0xAB ^ t as u64));
                for i in 0..OPS {
                    let rec = format!("<{t:01}{i:06}>");
                    Txn::build()
                        .try_run(|txn| xf.x_append(txn, rec.as_bytes()))
                        .expect("retries absorb injected I/O faults");
                }
            });
        }
    });
    assert_eq!(
        xf.pending_snapshot(),
        Some((0, 0)),
        "pending buffer and owner must be fully undone after quiescence"
    );
    let data = xf.file().read_all();
    assert_eq!(data.len() as u64, THREADS as u64 * OPS * 9, "exactly-once appends");
    for chunk in data.chunks(9) {
        assert_eq!(chunk[0], b'<');
        assert_eq!(chunk[8], b'>', "torn record: {chunk:?}");
    }
    assert!(chaos::injected_total() > 0, "the schedule must actually have fired");
}

#[test]
fn aborted_multi_read_compensates_in_order() {
    let _g = gate();
    chaos::clear();
    let pipe = SimPipe::new(64);
    pipe.write(b"abcdef").unwrap();
    let xp = XPipe::new(pipe.clone());
    let first = AtomicBool::new(true);
    let (got, _) = Txn::build()
        .try_run(|txn| {
            let a = xp.x_try_read(txn, 2)?.expect("bytes available");
            let b = xp.x_try_read(txn, 2)?.expect("bytes available");
            if first.swap(false, Ordering::SeqCst) {
                // Abort with TWO compensations pending: they must unwind
                // newest-first so the bytes return in original order.
                return txn.restart();
            }
            Ok([a, b].concat())
        })
        .expect("second attempt commits");
    assert_eq!(got, b"abcd", "replayed reads see the same bytes in the same order");
    assert_eq!(pipe.try_read(16).unwrap(), b"ef", "unconsumed tail intact");
}

#[test]
fn injected_pipe_faults_keep_byte_conservation() {
    let _g = gate();
    let plan = FaultPlan::new(21).with(InjectionPoint::XcallPipe, Trigger::PerMille(400));
    let _armed = chaos::scoped(&plan);
    let pipe = SimPipe::new(1024);
    let xp = XPipe::new(pipe.clone());
    const THREADS: usize = 4;
    const OPS: u64 = 50;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let xp = xp.clone();
            s.spawn(move || {
                txfix_stm::seed_backoff_rng(splitmix64(0xCD ^ t as u64));
                for i in 0..OPS {
                    let byte = [(t as u64 * 50 + i) as u8];
                    Txn::build()
                        .try_run(|txn| xp.x_write(txn, &byte))
                        .expect("retries absorb injected pipe faults");
                }
            });
        }
    });
    let drained = pipe.try_read(4096).expect("bytes present");
    assert_eq!(drained.len() as u64, THREADS as u64 * OPS, "each write lands exactly once");
    let sum: u64 = drained.iter().map(|&b| u64::from(b)).sum();
    let expected: u64 = (0..THREADS as u64 * OPS).map(|v| v % 256).sum();
    // Order across threads is arbitrary; the multiset is not.
    assert_eq!(sum, expected, "byte conservation");
}

#[test]
fn injected_async_faults_keep_submissions_exactly_once() {
    let _g = gate();
    let plan = FaultPlan::new(22).with(InjectionPoint::XcallAsync, Trigger::PerMille(400));
    let _armed = chaos::scoped(&plan);
    let aio = AsyncIo::new();
    let completed = std::sync::Arc::new(AtomicU64::new(0));
    const THREADS: usize = 4;
    const OPS: u64 = 60;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let aio = aio.clone();
            let completed = completed.clone();
            s.spawn(move || {
                txfix_stm::seed_backoff_rng(splitmix64(0xEF ^ t as u64));
                for _ in 0..OPS {
                    let done = completed.clone();
                    Txn::build()
                        .try_run(|txn| {
                            let done = done.clone();
                            aio.x_submit(
                                txn,
                                || (),
                                move |()| {
                                    done.fetch_add(1, Ordering::SeqCst);
                                },
                            )
                        })
                        .expect("retries absorb injected submission faults");
                }
            });
        }
    });
    assert!(aio.drain(Duration::from_secs(10)), "queue drains");
    assert_eq!(
        completed.load(Ordering::SeqCst),
        THREADS as u64 * OPS,
        "aborted attempts never enqueue; committed ones enqueue exactly once"
    );
    aio.shutdown();
}
