//! The conflict-serializability checker.
//!
//! Atomicity violations are interleavings that no serial order of the
//! program's intended atomic units can explain. The checker groups the
//! trace's accesses into **regions** — the units the code visibly intended
//! to be atomic:
//!
//! - a committed transaction (all its accesses take effect at the commit
//!   event, so the region is instantaneous);
//! - a lock critical-section cluster: a maximal span during which a thread
//!   continuously holds at least one lock;
//! - a maximal run of *plain* (non-atomic) unsynchronized accesses by one
//!   thread — plain accesses imply the programmer assumed exclusivity, so
//!   consecutive ones form one intended unit, broken by any synchronization
//!   the thread performs;
//! - a hardware-atomic access outside any lock is its own single-access
//!   region: the programmer explicitly chose word-level atomicity, so no
//!   larger unit is implied.
//!
//! It then builds the classic conflict graph — an edge `R1 → R2` whenever
//! an access of `R1` precedes a conflicting access of `R2` in the trace
//! (different threads, same object, at least one write) — and reports every
//! cycle as an atomicity violation: the regions interleaved in a way
//! serial execution cannot produce. Same-thread edges are omitted; program
//! order always points forward in trace time, so they can never complete a
//! cycle.

use std::collections::{HashMap, HashSet};
use txfix_stm::trace::{AccessKind, EventKind, TraceEvent};

/// One non-serializable interleaving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Diagnostic names of the objects whose conflicts form the cycle.
    pub objects: Vec<String>,
    /// Recorder ids of the threads whose regions participate.
    pub threads: Vec<u64>,
}

struct Access {
    object: u64,
    name: String,
    writes: bool,
    /// Trace position: the access event's index (commit index for
    /// transactional accesses).
    seq: usize,
    region: usize,
}

struct Region {
    thread: u64,
}

#[derive(Default)]
struct Builder {
    regions: Vec<Region>,
    accesses: Vec<Access>,
    /// Open lock-cluster region per thread, with the held-lock depth.
    cluster: HashMap<u64, (usize, usize)>,
    /// Open plain-run region per thread.
    plain_run: HashMap<u64, usize>,
}

impl Builder {
    fn new_region(&mut self, thread: u64) -> usize {
        self.regions.push(Region { thread });
        self.regions.len() - 1
    }

    /// Any synchronization by `thread` ends its open plain run.
    fn break_plain_run(&mut self, thread: u64) {
        self.plain_run.remove(&thread);
    }

    fn push_access(&mut self, region: usize, object: u64, name: &str, writes: bool, seq: usize) {
        self.accesses.push(Access { object, name: name.to_owned(), writes, seq, region });
    }
}

/// Find non-serializable region interleavings in `events`.
pub fn violations(events: &[TraceEvent]) -> Vec<Violation> {
    let mut b = Builder::default();
    let mut pending: HashMap<u64, Vec<(u64, AccessKind)>> = HashMap::new();

    for (seq, ev) in events.iter().enumerate() {
        let t = ev.thread;
        match &ev.kind {
            EventKind::LockAcquired { .. } => {
                b.break_plain_run(t);
                match b.cluster.get_mut(&t) {
                    Some((_, depth)) => *depth += 1,
                    None => {
                        let r = b.new_region(t);
                        b.cluster.insert(t, (r, 1));
                    }
                }
            }
            EventKind::LockReleased { .. } => {
                if let Some((_, depth)) = b.cluster.get_mut(&t) {
                    *depth -= 1;
                    if *depth == 0 {
                        b.cluster.remove(&t);
                    }
                }
            }
            EventKind::TxnAccess { serial, var, kind } => {
                pending.entry(*serial).or_default().push((*var, *kind));
            }
            EventKind::TxnAbort { serial } => {
                pending.remove(serial);
            }
            EventKind::TxnCommit { serial } => {
                b.break_plain_run(t);
                if let Some(accesses) = pending.remove(serial) {
                    let r = b.new_region(t);
                    for (var, kind) in accesses {
                        b.push_access(r, var, &format!("tvar#{var}"), kind.writes(), seq);
                    }
                }
            }
            EventKind::SharedAccess { object, name, kind, atomic } => {
                let region = if let Some(&(r, _)) = b.cluster.get(&t) {
                    r
                } else if *atomic {
                    b.break_plain_run(t);
                    b.new_region(t)
                } else {
                    match b.plain_run.get(&t) {
                        Some(&r) => r,
                        None => {
                            let r = b.new_region(t);
                            b.plain_run.insert(t, r);
                            r
                        }
                    }
                };
                b.push_access(region, *object, name, kind.writes(), seq);
            }
            EventKind::LockAttempt { .. }
            | EventKind::TxnBegin { .. }
            | EventKind::CvWait { .. }
            | EventKind::CvNotify { .. }
            | EventKind::RetryNotify => {}
        }
    }

    cycles(&b)
}

fn cycles(b: &Builder) -> Vec<Violation> {
    // Conflict edges, derived per object from trace order.
    let mut by_object: HashMap<u64, Vec<&Access>> = HashMap::new();
    for a in &b.accesses {
        by_object.entry(a.object).or_default().push(a);
    }
    let mut edges: HashMap<usize, HashSet<usize>> = HashMap::new();
    let mut edge_objects: HashMap<(usize, usize), u64> = HashMap::new();
    for accesses in by_object.values() {
        for (i, a) in accesses.iter().enumerate() {
            for c in accesses.iter().skip(i + 1) {
                let conflict = (a.writes || c.writes)
                    && a.region != c.region
                    && b.regions[a.region].thread != b.regions[c.region].thread;
                if conflict && a.seq <= c.seq {
                    edges.entry(a.region).or_default().insert(c.region);
                    edge_objects.entry((a.region, c.region)).or_insert(a.object);
                }
            }
        }
    }

    // Tarjan-free SCC via Kosaraju would do; with the small region graphs
    // here, iterative DFS-based strongly-connected detection suffices.
    let sccs = strongly_connected(b.regions.len(), &edges);
    let mut out = Vec::new();
    let mut seen: HashSet<Vec<String>> = HashSet::new();
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let in_scc: HashSet<usize> = scc.iter().copied().collect();
        let mut objects: Vec<String> = Vec::new();
        for a in &b.accesses {
            if in_scc.contains(&a.region) && !objects.contains(&a.name) {
                // Only objects actually carrying a conflict edge inside the
                // cycle matter for the report.
                let on_cycle = edge_objects.iter().any(|(&(x, y), &o)| {
                    o == a.object && in_scc.contains(&x) && in_scc.contains(&y)
                });
                if on_cycle {
                    objects.push(a.name.clone());
                }
            }
        }
        objects.sort();
        objects.dedup();
        let mut threads: Vec<u64> = scc.iter().map(|&r| b.regions[r].thread).collect();
        threads.sort_unstable();
        threads.dedup();
        if seen.insert(objects.clone()) {
            out.push(Violation { objects, threads });
        }
    }
    out
}

/// Strongly connected components (iterative Kosaraju).
fn strongly_connected(n: usize, edges: &HashMap<usize, HashSet<usize>>) -> Vec<Vec<usize>> {
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack = vec![(start, false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                order.push(node);
                continue;
            }
            if visited[node] {
                continue;
            }
            visited[node] = true;
            stack.push((node, true));
            if let Some(next) = edges.get(&node) {
                stack.extend(next.iter().filter(|&&m| !visited[m]).map(|&m| (m, false)));
            }
        }
    }

    let mut reverse: HashMap<usize, Vec<usize>> = HashMap::new();
    for (&from, tos) in edges {
        for &to in tos {
            reverse.entry(to).or_default().push(from);
        }
    }
    let mut assigned = vec![false; n];
    let mut sccs = Vec::new();
    for &root in order.iter().rev() {
        if assigned[root] {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            if assigned[node] {
                continue;
            }
            assigned[node] = true;
            component.push(node);
            if let Some(prev) = reverse.get(&node) {
                stack.extend(prev.iter().filter(|&&m| !assigned[m]));
            }
        }
        sccs.push(component);
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { thread, kind }
    }

    fn plain(thread: u64, object: u64, kind: AccessKind) -> TraceEvent {
        ev(
            thread,
            EventKind::SharedAccess { object, name: format!("obj#{object}"), kind, atomic: false },
        )
    }

    #[test]
    fn lost_update_between_plain_runs_is_a_cycle() {
        // T1: R(x) .. W(x) interleaved with T2: R(x) .. W(x).
        let v = violations(&[
            plain(1, 7, AccessKind::Read),
            plain(2, 7, AccessKind::Read),
            plain(1, 7, AccessKind::Write),
            plain(2, 7, AccessKind::Write),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].objects, vec!["obj#7".to_string()]);
        assert_eq!(v[0].threads, vec![1, 2]);
    }

    #[test]
    fn serial_plain_runs_are_clean() {
        let v = violations(&[
            plain(1, 7, AccessKind::Read),
            plain(1, 7, AccessKind::Write),
            plain(2, 7, AccessKind::Read),
            plain(2, 7, AccessKind::Write),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unprotected_run_interleaving_a_critical_section_is_a_cycle() {
        // T1 reads and writes x with no lock; T2's critical section does the
        // same in between.
        let v = violations(&[
            plain(1, 7, AccessKind::Read),
            ev(2, EventKind::LockAcquired { lock: 1, name: "m".into() }),
            plain(2, 7, AccessKind::Read),
            plain(2, 7, AccessKind::Write),
            ev(2, EventKind::LockReleased { lock: 1 }),
            plain(1, 7, AccessKind::Write),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn mutually_excluded_critical_sections_are_clean() {
        let v = violations(&[
            ev(1, EventKind::LockAcquired { lock: 1, name: "m".into() }),
            plain(1, 7, AccessKind::Read),
            plain(1, 7, AccessKind::Write),
            ev(1, EventKind::LockReleased { lock: 1 }),
            ev(2, EventKind::LockAcquired { lock: 1, name: "m".into() }),
            plain(2, 7, AccessKind::Read),
            plain(2, 7, AccessKind::Write),
            ev(2, EventKind::LockReleased { lock: 1 }),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn committed_transactions_are_instantaneous_and_clean() {
        let v = violations(&[
            ev(1, EventKind::TxnBegin { serial: 1 }),
            ev(1, EventKind::TxnAccess { serial: 1, var: 7, kind: AccessKind::Read }),
            ev(2, EventKind::TxnBegin { serial: 2 }),
            ev(2, EventKind::TxnAccess { serial: 2, var: 7, kind: AccessKind::Read }),
            ev(1, EventKind::TxnAccess { serial: 1, var: 7, kind: AccessKind::Write }),
            ev(2, EventKind::TxnAccess { serial: 2, var: 7, kind: AccessKind::Write }),
            ev(1, EventKind::TxnCommit { serial: 1 }),
            ev(2, EventKind::TxnCommit { serial: 2 }),
        ]);
        assert!(v.is_empty(), "transactions serialize at commit: {v:?}");
    }

    #[test]
    fn atomic_singletons_form_no_cycle() {
        let atomic = |thread: u64, kind: AccessKind| {
            ev(thread, EventKind::SharedAccess { object: 9, name: "a".into(), kind, atomic: true })
        };
        let v = violations(&[
            atomic(1, AccessKind::Rmw),
            atomic(2, AccessKind::Rmw),
            atomic(1, AccessKind::Rmw),
            atomic(2, AccessKind::Rmw),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }
}
