//! The static analyzer (`txfix lint`) against the dynamic one (`txfix
//! analyze`), over the whole corpus:
//!
//! - On **buggy** variants, every dynamic finding is covered by a static
//!   finding (the summaries model at least everything the recorder can
//!   see), every buggy variant is statically flagged, and every static
//!   finding carries a statically verified synthesized fix.
//! - On **developer-fix** and **TM-fix** variants, both analyzers are
//!   silent.
//! - Static findings with no dynamic counterpart are individually
//!   allowlisted with the reason for the divergence — the static side is
//!   *supposed* to see more (it models state the recorder does not
//!   instrument), but each such case must be intentional. Since the
//!   dynamic wait/notify pass landed, the allowlist is empty: every
//!   hazard class the summaries model now has a dynamic counterpart, and
//!   both sides speak `txfix_core::Hazard`, so coverage is plain
//!   [`Hazard::overlaps`] — no ad-hoc shape mapping.

use txfix::analyze::analyze_scenario;
use txfix::corpus::{bug_by_scenario, keys, summary_for, Variant};
use txfix::lint::{lint_summary, LintReport};
use txfix::recipes::analyze;

/// Static findings expected to have no dynamic counterpart, as
/// `"key: hazard"` display strings. Every entry must actually occur
/// (a stale entry fails the test), and every uncovered static finding
/// must be listed here. Currently empty: the recorder's cv pass covers
/// the wait-cycle and lost-wakeup hazards that used to be static-only.
const STATIC_ONLY: &[&str] = &[];

/// Run the full lint loop for one scenario variant.
fn lint(key: &str, variant: Variant) -> LintReport {
    let summary = summary_for(key, variant).expect("registered summary");
    let analysis = bug_by_scenario(key).map(|bug| analyze(&bug));
    lint_summary(&summary, analysis.as_ref()).expect("summary validates")
}

#[test]
fn static_findings_cover_every_dynamic_finding_on_buggy_variants() {
    for key in keys::ALL {
        let dynamic = analyze_scenario(key, Variant::Buggy).expect("known key");
        let report = lint(key, Variant::Buggy);
        for d in &dynamic.findings {
            assert!(
                report.findings.iter().any(|f| f.hazard.overlaps(&d.kind)),
                "{key}: dynamic finding {:?} has no static counterpart in {:?}",
                d.kind,
                report.findings.iter().map(|f| f.hazard.to_string()).collect::<Vec<_>>(),
            );
        }
    }
}

#[test]
fn every_buggy_variant_is_flagged_with_a_verified_fix() {
    for key in keys::ALL {
        let report = lint(key, Variant::Buggy);
        assert!(report.has_findings(), "{key} buggy: statically clean");
        for f in &report.findings {
            assert!(!f.fixes.is_empty(), "{key}: no recipe candidate for {}", f.hazard);
            assert!(
                f.fixes[0].verified,
                "{key}: primary recipe {} failed verification for {}: residual {:?}, introduced {:?}",
                f.fixes[0].recipe, f.hazard, f.fixes[0].residual, f.fixes[0].introduced
            );
            for v in &f.fixes {
                assert!(
                    v.verified,
                    "{key}: recipe {} failed verification for {}: residual {:?}, introduced {:?}",
                    v.recipe, f.hazard, v.residual, v.introduced
                );
            }
        }
    }
}

#[test]
fn both_analyzers_are_silent_on_fixed_variants() {
    for key in keys::ALL {
        for variant in [Variant::DevFix, Variant::TmFix] {
            let report = lint(key, variant);
            assert!(
                !report.has_findings(),
                "{key} ({variant:?}): static findings on a fixed variant: {:?}",
                report.findings.iter().map(|f| f.hazard.to_string()).collect::<Vec<_>>(),
            );
            let dynamic = analyze_scenario(key, variant).expect("known key");
            assert!(
                !dynamic.has_findings(),
                "{key} ({variant:?}): dynamic findings on a fixed variant: {:?}",
                dynamic.findings,
            );
        }
    }
}

#[test]
fn static_only_findings_are_exactly_the_allowlisted_divergences() {
    let mut unused: Vec<&str> = STATIC_ONLY.to_vec();
    for key in keys::ALL {
        let dynamic = analyze_scenario(key, Variant::Buggy).expect("known key");
        for f in lint(key, Variant::Buggy).findings {
            if dynamic.findings.iter().any(|d| f.hazard.overlaps(&d.kind)) {
                continue;
            }
            let entry = format!("{key}: {}", f.hazard);
            assert!(
                STATIC_ONLY.contains(&entry.as_str()),
                "unallowlisted static-only finding {entry:?}",
            );
            unused.retain(|e| *e != entry);
        }
    }
    assert!(unused.is_empty(), "stale allowlist entries: {unused:?}");
}
