//! Reproduce the paper's study over the 60-bug corpus.
//!
//! ```sh
//! cargo run --example bug_survey
//! ```
//!
//! Prints Tables 1–3, the recipe breakdown, and — for every bug TM cannot
//! fix — the reason, straight from the analysis rules of §5.3.

use txfix::corpus::all_bugs;
use txfix::recipes::{analyze, table1, table2, table3, Analysis, CorpusSummary};

fn main() {
    let bugs = all_bugs();

    print!("{}", table1(&bugs));
    println!();
    print!("{}", table2(&bugs));
    println!();
    print!("{}", table3(&bugs));

    let s = CorpusSummary::compute(&bugs);
    println!();
    println!(
        "Recipes 1 and 2 alone fix {} bugs; recipe 3 adds {} more.",
        s.fixed_by_simple_recipes, s.fixed_only_by_recipe3
    );
    println!(
        "Recipe 3 localizes {} of the recipe-1 fixes; recipe 4 spares re-locking work in {} fixes.",
        s.simplified_by_recipe3, s.simplified_by_recipe4
    );
    println!(
        "{} of the {} TM fixes are judged simpler than what the developers shipped.",
        s.tm_preferred,
        s.fixable()
    );

    println!("\nWhere transactional memory does NOT help ({} bugs):", s.total - s.fixable());
    for b in &bugs {
        if let Analysis::Unfixable(reason) = analyze(b) {
            println!("  {:18} {}", b.id, reason);
        }
    }

    println!("\nThe 18 fixes implemented as executable scenarios:");
    for b in &bugs {
        if let Some(key) = b.scenario {
            let plan = analyze(b);
            let recipe =
                plan.plan().map(|p| p.primary.to_string()).unwrap_or_else(|| "-".to_string());
            println!("  {:18} {:22} {}", b.id, key, recipe);
        }
    }
}
