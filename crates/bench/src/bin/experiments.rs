//! Run every experiment and print paper-reported vs. measured values —
//! the source of EXPERIMENTS.md's results section.
//!
//! Pass `--full` for benchmark-scale case-study runs and `--json` for a
//! machine-readable version of the whole run.

use txfix_bench::{
    apache_i_comparison, apache_ii_comparison, mozilla_i_comparison, mysql_i_comparison,
    CaseComparison, Scale,
};
use txfix_core::json::{Json, ToJson};
use txfix_core::{table1, table2, table3, CorpusSummary};

fn check(label: &str, paper: u64, measured: u64) {
    let ok = if paper == measured { "ok " } else { "MISMATCH" };
    println!("  [{ok}] {label:58} paper {paper:>4}   measured {measured:>4}");
}

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") { Scale::Full } else { Scale::Quick };
    let bugs = txfix_corpus::all_bugs();
    let s = CorpusSummary::compute(&bugs);

    if std::env::args().any(|a| a == "--json") {
        let scenarios = Json::list(txfix_corpus::all_scenarios().iter().map(|sc| {
            Json::obj([
                ("key", Json::str(sc.key())),
                ("buggy", Json::Bool(sc.run(txfix_corpus::Variant::Buggy).is_bug())),
                ("dev", Json::Bool(sc.run(txfix_corpus::Variant::DevFix).is_bug())),
                ("tm", Json::Bool(sc.run(txfix_corpus::Variant::TmFix).is_bug())),
            ])
        }));
        let cases = [
            mozilla_i_comparison(scale),
            apache_i_comparison(scale),
            apache_ii_comparison(scale),
            mysql_i_comparison(scale),
        ];
        let doc = Json::obj([
            (
                "tables",
                Json::list([
                    table1(&bugs).to_json_value(),
                    table2(&bugs).to_json_value(),
                    table3(&bugs).to_json_value(),
                ]),
            ),
            ("summary", s.to_json_value()),
            ("scenarios_bug_observed", scenarios),
            ("cases", Json::list(cases.iter().map(ToJson::to_json_value))),
        ]);
        println!("{}", doc.to_json());
        return;
    }

    println!("== T1–T3: study tables =============================================\n");
    print!("{}", table1(&bugs));
    println!();
    print!("{}", table2(&bugs));
    println!();
    print!("{}", table3(&bugs));

    println!("\n== Stated aggregates (paper prose vs. dataset) =====================\n");
    check("bugs examined", 60, s.total as u64);
    check("deadlocks examined", 22, s.deadlocks.total as u64);
    check("atomicity violations examined", 38, s.atomicity.total as u64);
    check("bugs TM can fix", 43, s.fixable() as u64);
    check("deadlocks TM can fix", 12, s.deadlocks.fixable as u64);
    check("atomicity violations TM can fix", 31, s.atomicity.fixable as u64);
    check("fixed by straightforward recipes 1 and 2", 40, s.fixed_by_simple_recipes as u64);
    check("fixed only by recipe 3", 3, s.fixed_only_by_recipe3 as u64);
    check("recipe-1 fixes simplified by recipe 3", 6, s.simplified_by_recipe3 as u64);
    check("recipe-2 fixes simplified by recipe 4", 14, s.simplified_by_recipe4 as u64);
    check("TM fixes judged simpler/preferable", 34, s.tm_preferred as u64);
    check("implemented and tested fixes", 18, s.implemented as u64);
    check("implemented deadlock fixes", 7, s.implemented_deadlock as u64);
    check("implemented atomicity fixes", 11, s.implemented_atomicity as u64);
    check("AVs with completely missing synchronization", 22, s.av_complete_missing as u64);
    check("... fixable by recipe 2", 17, s.av_complete_missing_fixable as u64);
    check("... fixable with a single atomic block", 12, s.av_single_block as u64);
    check("... single-block fixes judged easy", 9, s.av_single_block_easy as u64);
    check("... single-block fixes judged medium", 3, s.av_single_block_medium as u64);
    check("fixes needing condition variables", 5, s.downcall_condvar as u64);
    check("fixes needing retry", 2, s.downcall_retry as u64);
    check("fixes needing I/O in transactions", 8, s.downcall_io as u64);
    check("fixes with very long transactions", 7, s.downcall_long_action as u64);
    check(
        "unfixable multi-module non-preemptible deadlocks",
        5,
        s.multi_module_non_preemptible as u64,
    );

    println!("\n== Scenario sweep: 18 implemented fixes ============================\n");
    for sc in txfix_corpus::all_scenarios() {
        let buggy = sc.run(txfix_corpus::Variant::Buggy);
        let dev = sc.run(txfix_corpus::Variant::DevFix);
        let tm = sc.run(txfix_corpus::Variant::TmFix);
        println!(
            "  {:22} buggy: {:9} dev fix: {:8} tm fix: {:8}",
            sc.key(),
            if buggy.is_bug() { "BUG SEEN" } else { "no bug?!" },
            if dev.is_bug() { "BROKEN?!" } else { "clean" },
            if tm.is_bug() { "BROKEN?!" } else { "clean" },
        );
    }

    println!("\n== CS1–CS4: case-study performance (relative to developer fix) ====\n");
    let cases: Vec<CaseComparison> = vec![
        mozilla_i_comparison(scale),
        apache_i_comparison(scale),
        apache_ii_comparison(scale),
        mysql_i_comparison(scale),
    ];
    for c in &cases {
        println!("{}", c.render());
    }
    println!("Summary (TM fix relative to developer fix):");
    for c in &cases {
        println!(
            "  {:10} {:28} paper {:>6.1}%   measured {:>6.1}%",
            c.case,
            c.recipe,
            c.paper_relative * 100.0,
            c.measured_relative() * 100.0
        );
    }
    if let Some(m) = mozilla_hw(&cases) {
        println!(
            "  {:10} {:28} paper {:>6.1}%   measured {:>6.1}%",
            "Mozilla-I",
            "recipe 1 on hardware TM",
            99.3,
            m * 100.0
        );
    }
    if let Some(m) = mozilla_r3(&cases) {
        println!(
            "  {:10} {:28} paper {:>6.1}%   measured {:>6.1}%",
            "Mozilla-I",
            "recipe 3 preemption",
            85.0,
            m * 100.0
        );
    }
}

fn mozilla_hw(cases: &[CaseComparison]) -> Option<f64> {
    cases.first()?.measurements.get(2).map(|m| m.relative_to_dev)
}

fn mozilla_r3(cases: &[CaseComparison]) -> Option<f64> {
    cases.first()?.measurements.get(3).map(|m| m.relative_to_dev)
}
