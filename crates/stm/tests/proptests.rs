//! Property-based tests of the STM's core guarantees.

use proptest::prelude::*;
use std::collections::HashMap;
use txfix_stm::{atomic, TVar};

/// A little interpreted language of transactional programs, so proptest can
/// explore arbitrary shapes of read/write mixes.
#[derive(Clone, Debug)]
enum Op {
    /// Add `delta` to variable `idx`.
    Add { idx: usize, delta: i64 },
    /// Copy variable `src` into `dst`.
    Copy { src: usize, dst: usize },
    /// Swap two variables.
    Swap { a: usize, b: usize },
}

fn op_strategy(nvars: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nvars, -100i64..100).prop_map(|(idx, delta)| Op::Add { idx, delta }),
        (0..nvars, 0..nvars).prop_map(|(src, dst)| Op::Copy { src, dst }),
        (0..nvars, 0..nvars).prop_map(|(a, b)| Op::Swap { a, b }),
    ]
}

fn apply_seq(state: &mut [i64], ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Add { idx, delta } => state[idx] += delta,
            Op::Copy { src, dst } => state[dst] = state[src],
            Op::Swap { a, b } => state.swap(a, b),
        }
    }
}

fn apply_txn(vars: &[TVar<i64>], ops: &[Op]) {
    atomic(|txn| {
        for op in ops {
            match *op {
                Op::Add { idx, delta } => {
                    let v = vars[idx].read(txn)?;
                    vars[idx].write(txn, v + delta)?;
                }
                Op::Copy { src, dst } => {
                    let v = vars[src].read(txn)?;
                    vars[dst].write(txn, v)?;
                }
                Op::Swap { a, b } => {
                    let x = vars[a].read(txn)?;
                    let y = vars[b].read(txn)?;
                    vars[a].write(txn, y)?;
                    vars[b].write(txn, x)?;
                }
            }
        }
        Ok(())
    });
}

proptest! {
    /// A single-threaded transaction behaves exactly like direct execution.
    #[test]
    fn sequential_txn_equals_direct_execution(
        ops in proptest::collection::vec(op_strategy(4), 0..40),
        init in proptest::collection::vec(-100i64..100, 4),
    ) {
        let vars: Vec<TVar<i64>> = init.iter().copied().map(TVar::new).collect();
        let mut expect = init.clone();
        apply_seq(&mut expect, &ops);
        apply_txn(&vars, &ops);
        let got: Vec<i64> = vars.iter().map(|v| v.load()).collect();
        prop_assert_eq!(got, expect);
    }

    /// Concurrent transactions are serializable: the final state must equal
    /// *some* sequential order of the per-thread programs. For commutative
    /// increments the total is order-independent, which gives a strong,
    /// checkable invariant.
    #[test]
    fn concurrent_adds_serialize(
        per_thread in proptest::collection::vec(
            proptest::collection::vec((0usize..3, -20i64..20), 1..15),
            2..5,
        ),
    ) {
        let vars: Vec<TVar<i64>> = (0..3).map(|_| TVar::new(0)).collect();
        let mut expected = [0i64; 3];
        for prog in &per_thread {
            for &(idx, delta) in prog {
                expected[idx] += delta;
            }
        }
        std::thread::scope(|s| {
            for prog in &per_thread {
                let vars = vars.clone();
                s.spawn(move || {
                    for &(idx, delta) in prog {
                        atomic(|txn| {
                            let v = vars[idx].read(txn)?;
                            vars[idx].write(txn, v + delta)
                        });
                    }
                });
            }
        });
        let got: Vec<i64> = vars.iter().map(|v| v.load()).collect();
        prop_assert_eq!(got, expected.to_vec());
    }

    /// Snapshot reads inside one transaction are mutually consistent even
    /// under concurrent writers that preserve a global invariant.
    #[test]
    fn snapshot_reads_are_consistent(writers in 1usize..4, rounds in 1usize..50) {
        let a = TVar::new(500i64);
        let b = TVar::new(500i64);
        std::thread::scope(|s| {
            for w in 0..writers {
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for i in 0..rounds {
                        let amt = ((i + w) % 17) as i64;
                        atomic(|txn| {
                            let x = a.read(txn)?;
                            let y = b.read(txn)?;
                            a.write(txn, x - amt)?;
                            b.write(txn, y + amt)
                        });
                    }
                });
            }
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..rounds {
                    let (x, y) = atomic(|txn| Ok((a.read(txn)?, b.read(txn)?)));
                    assert_eq!(x + y, 1000, "torn snapshot");
                }
            });
        });
        prop_assert_eq!(a.load() + b.load(), 1000);
    }

    /// Write-after-write within a transaction: last write wins, and
    /// intermediate values never escape.
    #[test]
    fn last_write_wins(values in proptest::collection::vec(-1000i64..1000, 1..20)) {
        let v = TVar::new(0i64);
        let v2 = v.clone();
        let vals = values.clone();
        atomic(move |txn| {
            for &x in &vals {
                v2.write(txn, x)?;
            }
            Ok(())
        });
        // (TVar clone shares the cell, so re-reading through a fresh handle
        // is unnecessary; load is enough.)
        prop_assert_eq!(v.load(), *values.last().unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random maps survive the type-erased storage round trip.
    #[test]
    fn complex_values_roundtrip(entries in proptest::collection::hash_map("[a-z]{1,6}", 0u32..1000, 0..12)) {
        let v: TVar<HashMap<String, u32>> = TVar::new(entries.clone());
        let out = atomic(|txn| v.read(txn));
        prop_assert_eq!(out, entries);
    }
}
