//! Cross-crate integration tests: the substrate layers working together
//! through the facade crate, the way the recipes combine them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txfix::htm::{hybrid_atomic, CommitPath, HtmConfig};
use txfix::recipes::{preemptible, wrap_unprotected_atomic, PreemptOptions};
use txfix::stm::{atomic, TVar};
use txfix::tmsync::{guard, SerialDomain, SerialMutex, TxCondvar};
use txfix::txlock::TxMutex;
use txfix::xcall::{SimFs, SimPipe, XFile, XPipe};

#[test]
fn stm_txlock_and_xcall_compose_in_one_transaction() {
    // A transaction that mixes TVar state, a revocable lock and deferred
    // file I/O: everything commits together or not at all.
    let fs = SimFs::new();
    let journal = XFile::open_or_create(&fs, "journal");
    let account = TVar::new(100i64);
    let audit = Arc::new(TxMutex::new("it.audit", Vec::<String>::new()));

    let first = AtomicBool::new(true);
    let (j, a, au) = (journal.clone(), account.clone(), audit.clone());
    atomic(move |txn| {
        let balance = a.read(txn)?;
        a.write(txn, balance - 25)?;
        j.x_append(txn, format!("withdraw 25 (was {balance})\n").as_bytes())?;
        au.with_tx(txn, |log| log.push("withdraw".to_string()))?;
        if first.swap(false, Ordering::SeqCst) {
            return txn.restart(); // everything above must be discarded
        }
        Ok(())
    });

    assert_eq!(account.load(), 75);
    assert_eq!(journal.file().read_all(), b"withdraw 25 (was 100)\n");
    // Lock-protected data is mutual-exclusion only (not isolated), so both
    // attempts' pushes are present — exactly the Recipe 3 caveat.
    assert_eq!(audit.lock().unwrap().len(), 2);
    assert!(!audit.is_locked());
}

#[test]
fn recipe3_preemption_with_deferred_io() {
    // Two preemptible transactions in opposite lock orders, each also
    // journaling through an x-call: deadlock resolves by preemption, and
    // the journal sees exactly one line per *committed* transfer.
    let fs = SimFs::new();
    let journal = XFile::open_or_create(&fs, "transfers");
    let a = Arc::new(TxMutex::new("it.r3.a", 100i64));
    let b = Arc::new(TxMutex::new("it.r3.b", 100i64));
    const PER_THREAD: usize = 50;

    std::thread::scope(|s| {
        for t in 0..2usize {
            let (a, b, j) = (a.clone(), b.clone(), journal.clone());
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    preemptible(&PreemptOptions::default(), |txn| {
                        let (first, second) = if t == 0 { (&a, &b) } else { (&b, &a) };
                        first.lock_tx(txn)?;
                        second.lock_tx(txn)?;
                        j.x_append(txn, b"T\n")?;
                        first.with_held(|v| *v -= 1);
                        second.with_held(|v| *v += 1);
                        Ok(())
                    })
                    .expect("preemptible transfer");
                }
            });
        }
    });

    assert_eq!(*a.lock().unwrap() + *b.lock().unwrap(), 200);
    assert_eq!(journal.file().read_all().len(), 2 * PER_THREAD * 2);
}

#[test]
fn recipe4_serializes_against_foreign_locks_with_tvar_state() {
    let domain = SerialDomain::new();
    let ledger = Arc::new(SerialMutex::new(domain.clone(), Vec::<u32>::new()));
    let counter = TVar::new(0u32);

    std::thread::scope(|s| {
        let (l, d, c) = (ledger.clone(), domain.clone(), counter.clone());
        s.spawn(move || {
            for i in 0..200 {
                wrap_unprotected_atomic(&d, |txn| {
                    c.modify(txn, |v| v + 1)?;
                    Ok(())
                });
                l.lock().push(i);
            }
        });
        let l = ledger.clone();
        s.spawn(move || {
            for i in 0..200 {
                l.lock().push(1000 + i);
            }
        });
    });
    assert_eq!(counter.load(), 200);
    assert_eq!(ledger.lock().len(), 400);
}

#[test]
fn tx_condvar_with_pipe_io() {
    // Producer pushes bytes into a pipe and signals transactionally;
    // consumer waits on the condvar, then drains with a compensated read.
    let pipe = SimPipe::new(64);
    let xpipe = XPipe::new(pipe.clone());
    let ready = TVar::new(false);
    let cv = Arc::new(TxCondvar::new());
    let got = Arc::new(std::sync::Mutex::new(Vec::new()));

    std::thread::scope(|s| {
        let (xp, r, c, g) = (xpipe.clone(), ready.clone(), cv.clone(), got.clone());
        s.spawn(move || {
            let bytes = atomic(|txn| {
                if !r.read(txn)? {
                    return c.wait(txn);
                }
                let data = xp.x_try_read(txn, 16)?.unwrap_or_default();
                guard(txn, !data.is_empty())?;
                Ok(data)
            });
            g.lock().unwrap().extend(bytes);
        });
        let (xp, r, c) = (xpipe.clone(), ready.clone(), cv.clone());
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            atomic(|txn| {
                xp.x_write(txn, b"payload")?;
                r.write(txn, true)?;
                c.notify_all_at_commit(txn);
                Ok(())
            });
        });
    });
    assert_eq!(&*got.lock().unwrap(), b"payload");
}

#[test]
fn hybrid_htm_runs_the_recipes_workload() {
    // The HTM model executes a Recipe 2-shaped fix: small transactions in
    // hardware, a large scan falling back to software.
    let cells: Vec<TVar<u64>> = (0..128).map(|_| TVar::new(1)).collect();
    let cfg = HtmConfig::new().capacity(32, 32);

    let (_, small) = hybrid_atomic(&cfg, |txn| cells[0].modify(txn, |v| v + 1)).unwrap();
    assert_eq!(small.path, CommitPath::Hardware);

    let (sum, large) = hybrid_atomic(&cfg, |txn| {
        let mut s = 0;
        for c in &cells {
            s += c.read(txn)?;
        }
        Ok(s)
    })
    .unwrap();
    assert_eq!(sum, 127 + 2);
    assert_eq!(large.path, CommitPath::SoftwareFallback);
}

#[test]
fn corpus_tables_render_through_the_facade() {
    let bugs = txfix::corpus::all_bugs();
    let t1 = txfix::recipes::table1(&bugs).to_string();
    assert!(t1.contains("60"));
    assert!(t1.contains("43"));
    let s = txfix::recipes::CorpusSummary::compute(&bugs);
    assert_eq!(s.fixable(), 43);
}

#[test]
fn a_case_study_scenario_runs_through_the_facade() {
    use txfix::corpus::{scenario_by_key, Outcome, Variant};
    let s = scenario_by_key(txfix::corpus::keys::APACHE_II).expect("apache_ii registered");
    assert!(s.run(Variant::Buggy).is_bug());
    assert_eq!(s.run(Variant::TmFix), Outcome::Correct);
}
