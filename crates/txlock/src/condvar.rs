//! A condition variable usable with [`TxMutex`] guards.
//!
//! This is the *conventional* condvar the buggy code and the developers'
//! fixes use (e.g. Apache's listener/worker handoff in case study
//! Apache-I). Transactional code uses `txfix-tmsync`'s commit-before-wait
//! condvar or `retry` instead.

use crate::mutex::{TxMutex, TxMutexGuard};
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::time::Duration;
use txfix_stm::{sched, trace};

/// Outcome of a timed wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// A notification arrived.
    Signaled,
    /// The timeout elapsed first. Production code treats this as spurious;
    /// the bug-reproduction harness treats a *systematic* timeout as the
    /// deadlock signature for lock/wait cycles that the lock-only wait-for
    /// graph cannot see.
    TimedOut,
}

/// A condition variable for [`TxMutex`]-protected state.
pub struct LockCondvar {
    generation: Mutex<u64>,
    cv: Condvar,
    trace_id: u64,
    name: &'static str,
}

impl Default for LockCondvar {
    fn default() -> Self {
        LockCondvar::new()
    }
}

impl fmt::Debug for LockCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockCondvar")
            .field("name", &self.name)
            .field("generation", &*self.generation.lock())
            .finish()
    }
}

impl LockCondvar {
    /// Create an unnamed condition variable. Its wait/notify events are
    /// still traced but carry an empty name, so the name-based analysis
    /// passes skip them.
    pub fn new() -> LockCondvar {
        LockCondvar::named("")
    }

    /// Create a named condition variable; the name rides on every traced
    /// wait/notify event, letting the dynamic wait/notify passes report
    /// hazards in the same vocabulary as the static summaries.
    pub fn named(name: &'static str) -> LockCondvar {
        LockCondvar {
            generation: Mutex::new(0),
            cv: Condvar::new(),
            trace_id: trace::next_object_id(),
            name,
        }
    }

    /// Atomically release the guard's lock, wait for a notification or
    /// `timeout`, and re-acquire the lock before returning.
    ///
    /// # Errors
    ///
    /// [`DeadlockError`](crate::DeadlockError) if re-acquiring the mutex
    /// after the wait completes a deadlock cycle.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: TxMutexGuard<'a, T>,
        timeout: Duration,
    ) -> Result<(TxMutexGuard<'a, T>, WaitOutcome), crate::DeadlockError> {
        let mutex: &'a TxMutex<T> = guard.mutex();
        let owner = guard.owner();
        debug_assert_eq!(crate::thread_id::current(), owner);
        trace::emit(trace::EventKind::CvWait { cv: self.trace_id, name: self.name.to_string() });

        // Standard condvar protocol: sample the generation while still
        // holding the mutex, so a signal between unlock and sleep is not
        // lost.
        let mut gen = self.generation.lock();
        let seen = *gen;

        if sched::is_controlled() {
            // Park on the scheduler instead of the OS condvar, and never
            // time out: a waiter that no schedule ever signals is exactly
            // the deadlock/lost-wakeup evidence the explorer reports. The
            // generation lock must be released before the guard drops —
            // dropping the guard is a yield point, and parking while
            // holding `generation` would stall the notifier. The re-check
            // after the drop keeps the protocol lossless: a notify that
            // lands in between bumps the generation we compare against.
            drop(gen);
            drop(guard); // releases the mutex (a scheduler yield point)
            loop {
                if *self.generation.lock() != seen {
                    break;
                }
                sched::block_on(self.trace_id, sched::SyncOp::CvWait(self.trace_id));
            }
            let reacquired = mutex.lock()?;
            return Ok((reacquired, WaitOutcome::Signaled));
        }
        drop(guard); // releases the mutex

        let outcome = if self.cv.wait_for(&mut gen, timeout).timed_out() && *gen == seen {
            WaitOutcome::TimedOut
        } else {
            WaitOutcome::Signaled
        };
        drop(gen);

        let reacquired = mutex.lock()?;
        Ok((reacquired, outcome))
    }

    /// Wake all current waiters.
    pub fn notify_all(&self) {
        sched::yield_point(sched::SyncOp::CvNotify(self.trace_id));
        trace::emit(trace::EventKind::CvNotify { cv: self.trace_id, name: self.name.to_string() });
        let mut gen = self.generation.lock();
        *gen += 1;
        drop(gen);
        self.cv.notify_all();
        sched::signal(self.trace_id);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        sched::yield_point(sched::SyncOp::CvNotify(self.trace_id));
        trace::emit(trace::EventKind::CvNotify { cv: self.trace_id, name: self.name.to_string() });
        let mut gen = self.generation.lock();
        *gen += 1;
        drop(gen);
        self.cv.notify_one();
        sched::signal(self.trace_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn wait_times_out_without_signal() {
        let m = TxMutex::new("m", ());
        let cv = LockCondvar::new();
        let g = m.lock().unwrap();
        let (_g, outcome) = cv.wait_timeout(g, Duration::from_millis(20)).unwrap();
        assert_eq!(outcome, WaitOutcome::TimedOut);
    }

    #[test]
    fn signal_wakes_waiter_and_reacquires() {
        let m = Arc::new(TxMutex::new("m", 0u32));
        let cv = Arc::new(LockCondvar::new());
        let woke = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            let (m1, cv1, woke1) = (m.clone(), cv.clone(), woke.clone());
            s.spawn(move || {
                let mut g = m1.lock().unwrap();
                while *g == 0 {
                    let (g2, _) = cv1.wait_timeout(g, Duration::from_secs(5)).unwrap();
                    g = g2;
                }
                woke1.store(true, Ordering::SeqCst);
            });

            std::thread::sleep(Duration::from_millis(20));
            assert!(!woke.load(Ordering::SeqCst));
            {
                let mut g = m.lock().unwrap();
                *g = 1;
            }
            cv.notify_all();
        });
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_releases_the_mutex_while_blocked() {
        let m = Arc::new(TxMutex::new("m", ()));
        let cv = Arc::new(LockCondvar::new());
        std::thread::scope(|s| {
            let (m1, cv1) = (m.clone(), cv.clone());
            s.spawn(move || {
                let g = m1.lock().unwrap();
                let _ = cv1.wait_timeout(g, Duration::from_millis(100)).unwrap();
            });
            std::thread::sleep(Duration::from_millis(20));
            // While the waiter is blocked, the mutex must be free.
            let g = m.try_lock();
            assert!(g.is_some(), "wait did not release the mutex");
        });
    }
}
