//! Integration tests for the lock runtime: multi-party cycles, mixed
//! transactional/plain participants, and stress.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use txfix::recipes::{preemptible, PreemptOptions};
use txfix::stm::atomic;
use txfix::txlock::TxMutex;

fn named(i: usize, tag: &str) -> Arc<TxMutex<u64>> {
    let name: &'static str = Box::leak(format!("t.{tag}.{i}").into_boxed_str());
    Arc::new(TxMutex::new(name, 0))
}

#[test]
fn three_party_cycle_is_detected() {
    let locks: Vec<_> = (0..3).map(|i| named(i, "threeparty")).collect();
    let barrier = Barrier::new(3);
    let detections = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..3usize {
            let locks = &locks;
            let barrier = &barrier;
            let detections = &detections;
            s.spawn(move || {
                let g = locks[t].lock().expect("first lock");
                barrier.wait();
                if locks[(t + 1) % 3].lock().is_err() {
                    detections.fetch_add(1, Ordering::SeqCst);
                }
                drop(g);
            });
        }
    });
    assert!(detections.load(Ordering::SeqCst) >= 1, "three-party cycle missed");
    for l in &locks {
        assert!(!l.is_locked());
    }
}

#[test]
fn four_party_cycle_with_one_transactional_member_resolves() {
    let locks: Vec<_> = (0..4).map(|i| named(i, "fourparty")).collect();
    let barrier = Barrier::new(4);
    std::thread::scope(|s| {
        // Threads 0..3 use plain locks; thread 3 is transactional and gets
        // preempted, letting everyone finish.
        for t in 0..3usize {
            let locks = &locks;
            let barrier = &barrier;
            s.spawn(move || {
                let mut g = locks[t].lock().expect("plain first");
                barrier.wait();
                // The plain members may detect the cycle before the victim
                // aborts; on detection they drop and re-acquire in a safe
                // order rather than hanging.
                match locks[(t + 1) % 4].lock() {
                    Ok(mut g2) => {
                        *g += 1;
                        *g2 += 1;
                    }
                    Err(_) => {
                        drop(g);
                        let (a, b) = (t.min((t + 1) % 4), t.max((t + 1) % 4));
                        let mut ga = locks[a].lock().expect("ordered");
                        let mut gb = locks[b].lock().expect("ordered");
                        *ga += 1;
                        *gb += 1;
                    }
                }
            });
        }
        let locks2 = &locks;
        let barrier = &barrier;
        s.spawn(move || {
            let mut synced = false;
            preemptible(&PreemptOptions::default(), |txn| {
                locks2[3].lock_tx(txn)?;
                if !synced {
                    synced = true;
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                locks2[0].lock_tx(txn)?;
                locks2[3].with_held(|v| *v += 1);
                locks2[0].with_held(|v| *v += 1);
                Ok(())
            })
            .expect("preemptible member");
        });
    });
    for l in &locks {
        assert!(!l.is_locked(), "lock {} leaked", l.name());
    }
}

#[test]
fn two_transactions_colliding_repeatedly_both_finish() {
    let a = named(0, "duel");
    let b = named(1, "duel");
    const ROUNDS: u64 = 150;
    std::thread::scope(|s| {
        for t in 0..2usize {
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    preemptible(&PreemptOptions::default(), |txn| {
                        let (x, y) = if t == 0 { (&a, &b) } else { (&b, &a) };
                        x.lock_tx(txn)?;
                        y.lock_tx(txn)?;
                        x.with_held(|v| *v += 1);
                        y.with_held(|v| *v += 1);
                        Ok(())
                    })
                    .expect("duel transaction");
                }
            });
        }
    });
    assert_eq!(*a.lock().unwrap(), 2 * ROUNDS);
    assert_eq!(*b.lock().unwrap(), 2 * ROUNDS);
}

#[test]
fn transactional_locks_interleave_with_plain_guards() {
    let m = named(0, "mixed");
    const PER: u64 = 200;
    std::thread::scope(|s| {
        let m1 = m.clone();
        s.spawn(move || {
            for _ in 0..PER {
                *m1.lock().expect("plain") += 1;
            }
        });
        let m2 = m.clone();
        s.spawn(move || {
            for _ in 0..PER {
                atomic(|txn| m2.with_tx(txn, |v| *v += 1));
            }
        });
    });
    assert_eq!(*m.lock().unwrap(), 2 * PER);
}

#[test]
fn aborted_transaction_never_leaks_locks_under_stress() {
    let locks: Vec<_> = (0..4).map(|i| named(i, "leakstress")).collect();
    std::thread::scope(|s| {
        for t in 0..4usize {
            let locks = locks.clone();
            s.spawn(move || {
                for round in 0..100u64 {
                    let _ = preemptible(
                        &PreemptOptions { max_attempts: Some(20), ..Default::default() },
                        |txn| {
                            // Deliberately mixed orders to provoke cycles,
                            // plus voluntary restarts.
                            locks[t % 4].lock_tx(txn)?;
                            locks[(t + round as usize) % 4].lock_tx(txn)?;
                            if round % 7 == 0 {
                                return txn.restart();
                            }
                            Ok(())
                        },
                    );
                }
            });
        }
    });
    for l in &locks {
        assert!(!l.is_locked(), "lock {} leaked after stress", l.name());
    }
}
