//! Minimal stand-in for the `rand` API surface txfix uses (a thread-local
//! generator with `gen_range`). Vendored because the build environment has
//! no network access to crates.io. The generator is SplitMix64 seeded from
//! the system clock and a per-thread counter — statistically fine for
//! benchmarks and tests, not for cryptography.

use std::cell::Cell;
use std::ops::Range;

/// Trait for random number generation, mirroring the subset of `rand::Rng`
/// that txfix calls.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open).
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// Random `bool` with probability 1/2.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange: Copy {
    /// Map 64 random bits into `range`.
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(bits: u64, range: Range<Self>) -> Self {
                let span = (range.end - range.start) as u64;
                assert!(span > 0, "empty range");
                range.start + (bits % span) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(bits: u64, range: Range<Self>) -> Self {
                let span = range.end.wrapping_sub(range.start) as u64;
                assert!(span > 0, "empty range");
                range.start.wrapping_add((bits % span) as $t)
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize);

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Thread-local generator, mirroring `rand::rngs::ThreadRng`.
#[derive(Debug, Clone)]
pub struct ThreadRng;

thread_local! {
    static STATE: Cell<u64> = Cell::new({
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        let tid = std::thread::current().id();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        tid.hash(&mut h);
        t ^ h.finish()
    });
}

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        STATE.with(|s| {
            let mut state = s.get();
            let v = splitmix(&mut state);
            s.set(state);
            v
        })
    }
}

/// Obtain the thread-local generator, mirroring `rand::thread_rng`.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{thread_rng, Rng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = thread_rng();
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }
}
