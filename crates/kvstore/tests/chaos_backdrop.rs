//! A KV cell under a chaos fault backdrop: forced begin/read/pre-commit
//! aborts must cost retries, never correctness. The oracle checker
//! proves no update is lost and no read goes stale; paired group writes
//! prove groups never tear; and the escalation ladder stays inside the
//! DESIGN §8 bound — writers (who hold the WAL isolation lock) never
//! commit on the serial rung, however hard chaos pushes them.
//!
//! The cell is partitioned by shard so each invariant has a clean
//! oracle: shard 1 takes only single-key ops (checked against the
//! sequential oracle, which requires every version bump to be a recorded
//! event), shard 0 takes only the paired group writes (checked by final
//! pair equality).

use txfix_kvstore::model::{self, Event, ModelOp, ModelResult};
use txfix_kvstore::{shard_placement, KvConfig, KvStore, Mode, OpStats};
use txfix_stm::chaos::{self, splitmix64, FaultPlan, InjectionPoint, Trigger};
use txfix_stm::sched;
use txfix_wal::WalOp;
use txfix_xcall::SimFs;

const SHARDS: usize = 2;

/// `n` keys that all live on `shard`.
fn keys_on(shard: usize, n: usize) -> Vec<String> {
    (0..).map(|i| format!("g{i}")).filter(|k| shard_placement(k, SHARDS) == shard).take(n).collect()
}

struct WorkerOut {
    events: Vec<Event>,
    write_serial_commits: u64,
    read_serial_commits: u64,
    read_ops: u64,
    aborts: u64,
}

#[test]
fn chaos_aborts_cost_retries_never_correctness() {
    let plan = FaultPlan::new(splitmix64(0xBAC_D004))
        .with(InjectionPoint::TxnBegin, Trigger::EveryNth(11))
        .with(InjectionPoint::TxnRead, Trigger::EveryNth(7))
        .with(InjectionPoint::TxnPreCommit, Trigger::EveryNth(5));
    for mode in [Mode::Tm, Mode::Hybrid] {
        sched::run_exclusively(|| {
            let fs = SimFs::new();
            let store = KvStore::open(&fs, KvConfig::new(mode, SHARDS));
            let pair = keys_on(0, 2);
            let singles = keys_on(1, 6);
            let kv = &store;
            let (pair, singles) = (&pair, &singles);
            let _chaos = chaos::scoped(&plan);
            let workers: Vec<Box<dyn FnOnce() -> WorkerOut + Send + '_>> = (0..3u64)
                .map(|w| {
                    Box::new(move || run_worker(kv, pair, singles, w))
                        as Box<dyn FnOnce() -> WorkerOut + Send + '_>
                })
                .collect();
            let (outs, log) = model::run_workers(0xC0DE ^ mode as u64, 10_000_000, workers);
            assert!(log.stop.is_none(), "{}: {:?}", mode.name(), log.stop);
            let outs: Vec<WorkerOut> = outs.into_iter().map(Option::unwrap).collect();

            // Chaos actually bit: forced aborts happened and were retried.
            let aborts: u64 = outs.iter().map(|o| o.aborts).sum();
            assert!(aborts > 0, "{}: the fault plan never fired", mode.name());

            // No lost updates, no stale reads, no diverged displacements.
            let events: Vec<Event> = outs.iter().flat_map(|o| o.events.iter().cloned()).collect();
            if let Err(divergence) = model::check_history(&events) {
                panic!("{}: {divergence}", mode.name());
            }

            // Groups never tear: both halves of every pair write landed
            // together, so the final values agree.
            let final_scan = store.scan(0).unwrap().value;
            let val_of =
                |k: &str| final_scan.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
            assert!(val_of(&pair[0]).is_some(), "{}: no group write landed", mode.name());
            assert_eq!(
                val_of(&pair[0]),
                val_of(&pair[1]),
                "{}: a paired group write tore",
                mode.name()
            );

            // Bounded escalation-to-serial (DESIGN §8): writers never.
            let write_serial: u64 = outs.iter().map(|o| o.write_serial_commits).sum();
            assert_eq!(write_serial, 0, "{}: a writer took the serial rung", mode.name());
            let read_serial: u64 = outs.iter().map(|o| o.read_serial_commits).sum();
            let read_ops: u64 = outs.iter().map(|o| o.read_ops).sum();
            assert!(read_serial <= read_ops);
            if mode == Mode::Tm {
                assert_eq!(read_serial, 0, "tm mode has no serial rung at all");
            }
        });
    }
}

fn run_worker(kv: &KvStore, pair: &[String], singles: &[String], w: u64) -> WorkerOut {
    let mut out = WorkerOut {
        events: Vec::new(),
        write_serial_commits: 0,
        read_serial_commits: 0,
        read_ops: 0,
        aborts: 0,
    };
    fn event(op: ModelOp, result: ModelResult, stats: &OpStats) -> Event {
        Event { shard: stats.shard, version: stats.version, op, result }
    }
    let mut h = splitmix64(0xFEED ^ w);
    for i in 0..12u64 {
        h = splitmix64(h);
        let key = &singles[(h % singles.len() as u64) as usize];
        match h % 5 {
            0 => {
                let r = kv.get(key).unwrap();
                out.read_ops += 1;
                out.read_serial_commits += r.stats.serialized as u64;
                out.aborts += r.stats.attempts - 1;
                out.events.push(event(
                    ModelOp::Get(key.clone()),
                    ModelResult::Value(r.value),
                    &r.stats,
                ));
            }
            1 => {
                // Scan only the singles shard: shard 0's versions are
                // bumped by unrecorded group writes.
                let r = kv.scan(1).unwrap();
                out.read_ops += 1;
                out.read_serial_commits += r.stats.serialized as u64;
                out.aborts += r.stats.attempts - 1;
                out.events.push(event(ModelOp::Scan, ModelResult::Snapshot(r.value), &r.stats));
            }
            2 => {
                let val = format!("v{w}_{i}");
                let r = kv.put(key, &val).unwrap();
                out.write_serial_commits += r.stats.serialized as u64;
                out.aborts += r.stats.attempts - 1;
                out.events.push(event(
                    ModelOp::Put(key.clone(), val),
                    ModelResult::Value(r.value),
                    &r.stats,
                ));
            }
            3 => {
                let r = kv.delete(key).unwrap();
                out.write_serial_commits += r.stats.serialized as u64;
                out.aborts += r.stats.attempts - 1;
                out.events.push(event(
                    ModelOp::Delete(key.clone()),
                    ModelResult::Value(r.value),
                    &r.stats,
                ));
            }
            _ => {
                // A paired group write: both keys get the same value, in
                // one atomic (single-shard) group on shard 0.
                let val = format!("p{w}_{i}");
                let ops = vec![
                    WalOp::Put(pair[0].clone(), val.clone()),
                    WalOp::Put(pair[1].clone(), val),
                ];
                let r = kv.apply_group(&ops).unwrap();
                out.write_serial_commits += r.stats.serialized as u64;
                out.aborts += r.stats.attempts - 1;
            }
        }
    }
    out
}
