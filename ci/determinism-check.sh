#!/usr/bin/env sh
# determinism-check.sh <prefix> -- <command...>
#
# Run <command...> twice, capturing stdout to <prefix>_a.json and
# <prefix>_b.json, and fail unless both runs succeed and agree
# byte-for-byte. Every seeded sweep in this repo (chaos, explore,
# autofix, crash, canary) promises bit-for-bit reproducibility; this is the one
# place that promise is enforced, so CI smokes all share it instead of
# each hand-rolling the double run.
set -eu

if [ "$#" -lt 3 ] || [ "$2" != "--" ]; then
    echo "usage: $0 <prefix> -- <command...>" >&2
    exit 2
fi

prefix=$1
shift 2

"$@" > "${prefix}_a.json"
"$@" > "${prefix}_b.json"

if ! cmp "${prefix}_a.json" "${prefix}_b.json"; then
    echo "determinism-check: two runs of '$*' diverged" >&2
    echo "  (diff ${prefix}_a.json ${prefix}_b.json to inspect)" >&2
    exit 1
fi
