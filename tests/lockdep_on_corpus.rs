//! The lock-order validator applied to corpus-style lock disciplines:
//! buggy orders are flagged from clean runs; fixed orders validate clean.
//! (Lockdep state is process-global, so this lives in its own test binary
//! to avoid cross-talk with other integration tests.)

use std::sync::Mutex;
use txfix::corpus::{all_scenarios, bug_by_scenario, Variant};
use txfix::recipes::BugKind;
use txfix::txlock::{lockdep, TxMutex};

/// Lockdep state is process-global; the tests in this binary take turns.
static GATE: Mutex<()> = Mutex::new(());

#[test]
fn buggy_discipline_is_flagged_and_fixed_discipline_is_clean() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Phase 1: the Mozilla#54743 shape, sequentially — both orders occur,
    // no deadlock happens, lockdep still reports the hazard.
    lockdep::reset();
    lockdep::enable();
    let cache = TxMutex::new("ldc.cache", 0u32);
    let atoms = TxMutex::new("ldc.atoms", 0u32);
    {
        let _a = cache.lock().unwrap();
        let _b = atoms.lock().unwrap();
    }
    {
        let _b = atoms.lock().unwrap();
        let _a = cache.lock().unwrap();
    }
    lockdep::disable();
    let hazards = lockdep::inversions();
    assert_eq!(hazards.len(), 1, "expected exactly the cache/atoms inversion: {hazards:?}");

    // Phase 2: the developers' reordered fix validates clean.
    lockdep::reset();
    lockdep::enable();
    let cache = TxMutex::new("ldf.cache", 0u32);
    let atoms = TxMutex::new("ldf.atoms", 0u32);
    for _ in 0..3 {
        let _a = cache.lock().unwrap();
        let _b = atoms.lock().unwrap();
    }
    lockdep::disable();
    assert!(lockdep::inversions().is_empty(), "fixed order must not be flagged");

    // Phase 3: three-lock rotating order (Mozilla#60303 shape) — every
    // pair ends up inverted.
    lockdep::reset();
    lockdep::enable();
    let locks: Vec<TxMutex<u32>> =
        (0..3).map(|i| TxMutex::new(Box::leak(format!("ldr.l{i}").into_boxed_str()), 0)).collect();
    for t in 0..3usize {
        let _g1 = locks[t].lock().unwrap();
        let _g2 = locks[(t + 1) % 3].lock().unwrap();
    }
    lockdep::disable();
    assert!(
        !lockdep::inversions().is_empty(),
        "rotating three-lock order must produce at least one inversion"
    );
    lockdep::reset();
}

/// Every deadlock reproduction in the corpus, run buggy under the live
/// validator. The pure lock-cycle scenarios must be flagged; the two
/// app-miniature scenarios deadlock through resources lockdep does not
/// model (Mozilla-I's ownership hand-off, Apache-I's condition-variable
/// wait), so no lock-order inversion exists to report — their hazards are
/// the trace analyzer's job, not lockdep's.
#[test]
fn every_deadlock_scenario_runs_under_lockdep() {
    let flagged: &[&str] = &[
        "dl_cache_atomtable",
        "dl_three_lock_cycle",
        "dl_intentional_race",
        "dl_local_lock_order",
        "dl_mysql_table_pair",
    ];
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut seen = 0;
    for s in all_scenarios() {
        let Some(bug) = bug_by_scenario(s.key()) else { continue };
        if bug.kind != BugKind::Deadlock {
            continue;
        }
        seen += 1;
        lockdep::reset();
        lockdep::enable();
        s.run(Variant::Buggy);
        lockdep::disable();
        let hazards = lockdep::inversions();
        if flagged.contains(&s.key()) {
            assert!(!hazards.is_empty(), "{}: buggy variant must be flagged", s.key());
        } else {
            assert!(
                hazards.is_empty(),
                "{}: unexpected lock-order inversion {hazards:?} — if lockdep learned to \
                 see this hazard, promote the key to `flagged`",
                s.key()
            );
        }
    }
    lockdep::reset();
    assert_eq!(seen, 7, "expected all seven deadlock scenarios to be exercised");
}
