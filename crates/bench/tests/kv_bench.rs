//! The kv macro-bench is a pure function of its config: a double run
//! must serialize to the identical artifact, and every cell must run
//! clean and recover.

use txfix_bench::kv::{kv_report, run_kv_bench, KvBenchConfig};
use txfix_bench::workload::WorkloadCfg;
use txfix_core::json::ToJson;
use txfix_kvstore::Mode;
use txfix_stm::clock::ClockMode;

fn small(seed: u64) -> KvBenchConfig {
    KvBenchConfig {
        seed,
        modes: Mode::ALL.to_vec(),
        shard_counts: vec![2],
        clock: ClockMode::Gv1,
        threads: 2,
        ops_per_thread: 40,
        workload: WorkloadCfg { keys: 32, ..WorkloadCfg::default() },
    }
}

#[test]
fn kv_bench_is_deterministic_and_clean() {
    let cfg = small(0xD0D0);
    let a = kv_report(&cfg, run_kv_bench(&cfg));
    let b = kv_report(&cfg, run_kv_bench(&cfg));
    assert_eq!(a.to_json(), b.to_json(), "double run must byte-match");
    assert!(a.ok, "every cell must run clean and recover:\n{}", a.table());
    assert_eq!(a.cells.len(), 3);
    for c in &a.cells {
        assert_eq!(c.ops, 80, "{} lost ops", c.mode.name());
        assert!(c.clean_run && c.recovered_ok);
        assert!(c.steps > 0 && c.p50_steps <= c.p99_steps);
    }
    // A different seed takes a different schedule.
    let cfg2 = small(0xD0D1);
    let c = kv_report(&cfg2, run_kv_bench(&cfg2));
    assert_ne!(a.to_json(), c.to_json());
}
