//! Atomic-region inference: from static findings to a fix plan.
//!
//! The inference loop is the Joshi–Lal "grow until quiet" discipline
//! over the summary IR:
//!
//! 1. **Seed** one region per static finding ([`txfix_static::check`]):
//!    a data hazard seeds a [`Region::Wrap`] over the group-closed
//!    subjects, a lock-order cycle seeds [`Region::Dissolve`], a wait
//!    cycle seeds [`Region::PreemptWait`], a lost wakeup seeds
//!    [`Region::Retire`].
//! 2. **Merge** overlapping regions (RaceFixer-style): wraps whose
//!    location sets intersect become one wrap over the union; dissolves
//!    sharing a lock union their cycles; duplicate cv regions collapse,
//!    a serializing retire absorbing a plain one.
//! 3. **Apply** the merged plan to the summary (deterministic order:
//!    dissolves, preemptions, retires, then wraps — lock-structure
//!    rewrites first so span placement sees the final lock layout) and
//!    re-run the checkers.
//! 4. **Grow** on residual findings: widen the overlapping wrap to the
//!    re-closed subject union, escalating to serialization against
//!    every lock and then to every path if the seed geometry is already
//!    maximal; escalate a plain retire to a serializing one; add any
//!    missing region kind. Repeat from 3 until the checkers are silent
//!    or a round makes no progress.
//!
//! On the whole corpus the loop converges in one round — the seeds are
//! already sufficient — but the growth ladder is what makes the loop a
//! fixpoint search rather than a lookup table, and synthetic summaries
//! in the tests exercise it.

use std::collections::BTreeSet;

use txfix_core::Hazard;
use txfix_static::{check, wrap_region_seed, Region, ScenarioSummary};

/// Give up after this many grow rounds.
const MAX_ROUNDS: u32 = 8;

/// The result of a successful inference.
#[derive(Clone, Debug)]
pub struct Inference {
    /// The inferred fix plan, in application order.
    pub regions: Vec<Region>,
    /// The summary with the plan applied (statically clean).
    pub patched: ScenarioSummary,
    /// Grow rounds used (1 = the seeds were already sufficient; 0 = the
    /// input had no findings and no fix was needed).
    pub rounds: u32,
}

/// Infer a fix plan for `summary` and apply it.
///
/// # Errors
///
/// If the summary is structurally invalid, a region fails to lower, or
/// the grow loop stalls or exceeds [`MAX_ROUNDS`] with findings left.
pub fn infer(summary: &ScenarioSummary) -> Result<Inference, String> {
    summary.validate()?;
    let findings = check(summary);
    if findings.is_empty() {
        return Ok(Inference { regions: Vec::new(), patched: summary.clone(), rounds: 0 });
    }
    let mut regions = merge(seed_regions(summary, findings.iter().map(|f| &f.hazard)));
    for round in 1..=MAX_ROUNDS {
        let patched = apply_all(summary, &regions)?;
        let residual = check(&patched);
        if residual.is_empty() {
            return Ok(Inference { regions, patched, rounds: round });
        }
        if !grow(summary, &mut regions, residual.iter().map(|f| &f.hazard)) {
            return Err(format!(
                "{}: inference stuck after round {round}: {} residual finding(s) and no region can grow",
                summary.key,
                residual.len()
            ));
        }
        regions = merge(regions);
    }
    Err(format!("{}: inference did not converge within {MAX_ROUNDS} rounds", summary.key))
}

/// One region per finding.
fn seed_regions<'a>(
    summary: &ScenarioSummary,
    hazards: impl Iterator<Item = &'a Hazard>,
) -> Vec<Region> {
    hazards
        .map(|h| match h {
            Hazard::Race { loc } => wrap_region_seed(summary, std::slice::from_ref(loc)),
            Hazard::Atomicity { locs } => wrap_region_seed(summary, locs),
            Hazard::LockCycle { locks } => Region::Dissolve { locks: locks.clone() },
            Hazard::WaitCycle { cv, .. } => Region::PreemptWait { cv: cv.clone() },
            Hazard::LostWakeup { cv, .. } => Region::Retire { cv: cv.clone(), serialize: false },
        })
        .collect()
}

/// Merge overlapping regions to a fixpoint and sort into application
/// order (lock-structure rewrites before wraps, then by rendering, so
/// the plan is a pure function of its content).
fn merge(mut regions: Vec<Region>) -> Vec<Region> {
    loop {
        let mut merged = None;
        'search: for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                if let Some(m) = merge_pair(&regions[i], &regions[j]) {
                    merged = Some((i, j, m));
                    break 'search;
                }
            }
        }
        match merged {
            Some((i, j, m)) => {
                regions[i] = m;
                regions.remove(j);
            }
            None => break,
        }
    }
    regions.sort_by_key(|r| (application_rank(r), r.to_string()));
    regions.dedup();
    regions
}

fn application_rank(r: &Region) -> u8 {
    match r {
        Region::Dissolve { .. } => 0,
        Region::Preempt { .. } => 1,
        Region::PreemptWait { .. } => 2,
        Region::Retire { .. } => 3,
        Region::Wrap { .. } => 4,
    }
}

fn union_sorted(a: &[String], b: &[String]) -> Vec<String> {
    let set: BTreeSet<&String> = a.iter().chain(b).collect();
    set.into_iter().cloned().collect()
}

fn intersects(a: &[String], b: &[String]) -> bool {
    a.iter().any(|x| b.contains(x))
}

fn merge_pair(a: &Region, b: &Region) -> Option<Region> {
    match (a, b) {
        (
            Region::Wrap { locs: la, paths: pa, serialized: sa },
            Region::Wrap { locs: lb, paths: pb, serialized: sb },
        ) if intersects(la, lb) => Some(Region::Wrap {
            locs: union_sorted(la, lb),
            paths: pa.union(pb).copied().collect(),
            serialized: union_sorted(sa, sb),
        }),
        (Region::Dissolve { locks: la }, Region::Dissolve { locks: lb }) if intersects(la, lb) => {
            Some(Region::Dissolve { locks: union_sorted(la, lb) })
        }
        (Region::Preempt { locks: la }, Region::Preempt { locks: lb }) if intersects(la, lb) => {
            Some(Region::Preempt { locks: union_sorted(la, lb) })
        }
        (Region::PreemptWait { cv: ca }, Region::PreemptWait { cv: cb }) if ca == cb => {
            Some(Region::PreemptWait { cv: ca.clone() })
        }
        (Region::Retire { cv: ca, serialize: za }, Region::Retire { cv: cb, serialize: zb })
            if ca == cb =>
        {
            Some(Region::Retire { cv: ca.clone(), serialize: *za || *zb })
        }
        _ => None,
    }
}

/// Lower the plan onto the summary.
///
/// # Errors
///
/// If a region does not apply or the result fails validation.
pub fn apply_all(summary: &ScenarioSummary, regions: &[Region]) -> Result<ScenarioSummary, String> {
    let mut out = summary.clone();
    for r in regions {
        out = r
            .apply(&out)
            .ok_or_else(|| format!("{}: region '{r}' is not applicable", summary.key))?;
    }
    out.validate().map_err(|e| format!("patched summary invalid: {e}"))?;
    Ok(out)
}

/// Grow the plan to cover residual findings. Returns whether anything
/// changed — `false` means the loop is stuck.
fn grow<'a>(
    summary: &ScenarioSummary,
    regions: &mut Vec<Region>,
    residual: impl Iterator<Item = &'a Hazard>,
) -> bool {
    let mut changed = false;
    for h in residual {
        changed |= match h {
            Hazard::Race { loc } => grow_wrap(summary, regions, std::slice::from_ref(loc)),
            Hazard::Atomicity { locs } => grow_wrap(summary, regions, locs),
            Hazard::LockCycle { locks } => grow_dissolve(regions, locks),
            Hazard::WaitCycle { cv, .. } => {
                push_if_absent(regions, Region::PreemptWait { cv: cv.clone() })
            }
            Hazard::LostWakeup { cv, .. } => grow_retire(regions, cv),
        };
    }
    changed
}

/// Widen the wrap overlapping `subjects`, or seed a new one. The
/// escalation ladder keeps growth monotone: re-seed over the union of
/// locations, then serialize against every lock, then cover every path.
fn grow_wrap(summary: &ScenarioSummary, regions: &mut Vec<Region>, subjects: &[String]) -> bool {
    for r in regions.iter_mut() {
        let Region::Wrap { locs, paths, serialized } = &*r else { continue };
        if !intersects(locs, subjects) {
            continue;
        }
        let reseeded = wrap_region_seed(summary, &union_sorted(locs, subjects));
        let Region::Wrap { locs: nl, paths: np, serialized: ns } = reseeded else {
            unreachable!("wrap_region_seed returns Region::Wrap")
        };
        let widened = Region::Wrap {
            locs: union_sorted(&nl, locs),
            paths: paths.union(&np).copied().collect(),
            serialized: union_sorted(&ns, serialized),
        };
        if widened != *r {
            *r = widened;
            return true;
        }
        let all_locks: Vec<String> = summary.lock_names().into_iter().collect();
        if *serialized != all_locks {
            *r = Region::Wrap { locs: nl, paths: np, serialized: all_locks };
            return true;
        }
        if paths.len() != summary.paths.len() {
            *r = Region::Wrap {
                locs: nl,
                paths: (0..summary.paths.len()).collect(),
                serialized: all_locks,
            };
            return true;
        }
        return false;
    }
    regions.push(wrap_region_seed(summary, subjects));
    true
}

fn grow_dissolve(regions: &mut Vec<Region>, locks: &[String]) -> bool {
    for r in regions.iter_mut() {
        let Region::Dissolve { locks: existing } = &*r else { continue };
        if intersects(existing, locks) {
            let union = union_sorted(existing, locks);
            if union == *existing {
                return false;
            }
            *r = Region::Dissolve { locks: union };
            return true;
        }
    }
    regions.push(Region::Dissolve { locks: locks.to_vec() });
    true
}

fn grow_retire(regions: &mut Vec<Region>, cv: &str) -> bool {
    for r in regions.iter_mut() {
        let Region::Retire { cv: existing, serialize } = &*r else { continue };
        if existing == cv {
            if *serialize {
                return false;
            }
            *r = Region::Retire { cv: cv.to_string(), serialize: true };
            return true;
        }
    }
    regions.push(Region::Retire { cv: cv.to_string(), serialize: false });
    true
}

fn push_if_absent(regions: &mut Vec<Region>, region: Region) -> bool {
    if regions.contains(&region) {
        return false;
    }
    regions.push(region);
    true
}
