//! The atomic-region model that fix inference plans in.
//!
//! `txfix lint` synthesizes a fix directly from a (finding, recipe)
//! pair. The inference pipeline (`txfix-autofix`) instead works with an
//! explicit, growable plan: a [`Region`] names *what* the patch will do
//! to the summary — wrap a span, dissolve a lock cycle, make a
//! participant preemptible, retire a monitor — and [`Region::apply`]
//! lowers it onto the IR with the exact same transformations the recipe
//! synthesizer uses. Inference seeds one region per finding
//! ([`wrap_region_seed`] for shared-data hazards), grows and merges
//! them, and only then lowers; [`footprint`] measures the result for
//! the widening comparison against hand-written TM variants.

use crate::ir::{Op, ScenarioSummary};
use crate::synth;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use txfix_core::json::{Json, ToJson};
use txfix_core::Recipe;

/// One planned atomic region (or region-introducing rewrite) over a
/// scenario summary. All name lists are kept sorted so a region's
/// rendering is a pure function of its content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Region {
    /// Wrap each selected path's span of accesses to `locs` in an
    /// atomic region serialized against `serialized` (empty = plain
    /// region). Lowered via the Recipe 2/4 span machinery: spans grow
    /// to stay balanced, subsumed serialized-lock sections are dropped.
    Wrap {
        /// The locations the region must cover (group-closed, sorted).
        locs: Vec<String>,
        /// Indices of the paths to wrap.
        paths: BTreeSet<usize>,
        /// Locks the region is serialized against (sorted).
        serialized: Vec<String>,
    },
    /// Replace every acquire/release of `locks` with atomic-region
    /// entry/exit in every path (Recipe 1 on a lock cycle).
    Dissolve {
        /// The cycle locks (sorted).
        locks: Vec<String>,
    },
    /// Make one cycle participant a preemptible transaction with
    /// revocable cycle-lock acquisitions (Recipe 3 on a lock cycle).
    Preempt {
        /// The cycle locks (sorted).
        locks: Vec<String>,
    },
    /// Turn every path waiting on `cv` into a preemptible transaction,
    /// the wait replaced by transactional retry (Recipe 3 on a wait
    /// cycle).
    PreemptWait {
        /// The condition variable waited on.
        cv: String,
    },
    /// Drop the wait/notify pair on `cv` and turn its monitor critical
    /// sections into atomic regions — TM's retry idiom subsumes the
    /// condition variable. With `serialize`, the regions stay
    /// serialized against the monitor locks for their remaining users.
    Retire {
        /// The condition variable to retire.
        cv: String,
        /// Whether the replacement regions serialize with the monitor.
        serialize: bool,
    },
}

impl Region {
    /// Which of the paper's recipes this region amounts to, for
    /// labeling the synthesized patch.
    pub fn recipe(&self) -> Recipe {
        match self {
            Region::Wrap { serialized, .. } if serialized.is_empty() => Recipe::WrapAll,
            Region::Wrap { .. } => Recipe::WrapUnprotected,
            Region::Dissolve { .. } => Recipe::ReplaceLocks,
            Region::Preempt { .. } | Region::PreemptWait { .. } => Recipe::DeadlockPreemption,
            Region::Retire { serialize: false, .. } => Recipe::WrapAll,
            Region::Retire { serialize: true, .. } => Recipe::WrapUnprotected,
        }
    }

    /// Lower the region onto the summary IR. `None` only for
    /// [`Region::Preempt`] when no path closes the cycle (nothing to
    /// make preemptible).
    pub fn apply(&self, summary: &ScenarioSummary) -> Option<ScenarioSummary> {
        match self {
            Region::Wrap { locs, paths, serialized } => {
                Some(synth::wrap_spans(summary, locs, paths, serialized))
            }
            Region::Dissolve { locks } => Some(synth::replace_locks(summary, locks)),
            Region::Preempt { locks } => synth::preempt_cycle(summary, locks),
            Region::PreemptWait { cv } => Some(synth::preempt_wait(summary, cv)),
            Region::Retire { cv, serialize } => {
                Some(synth::retire_monitor(summary, cv, *serialize))
            }
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Wrap { locs, paths, serialized } => {
                let paths: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
                write!(f, "wrap {{{}}} in paths [{}]", locs.join(", "), paths.join(", "))?;
                if !serialized.is_empty() {
                    write!(f, " serialized with {{{}}}", serialized.join(", "))?;
                }
                Ok(())
            }
            Region::Dissolve { locks } => write!(f, "dissolve locks {{{}}}", locks.join(", ")),
            Region::Preempt { locks } => {
                write!(f, "preempt one holder of {{{}}}", locks.join(", "))
            }
            Region::PreemptWait { cv } => write!(f, "preempt waiters on {cv}"),
            Region::Retire { cv, serialize } => {
                write!(f, "retire {cv}{}", if *serialize { " (serialized)" } else { "" })
            }
        }
    }
}

impl ToJson for Region {
    fn to_json_value(&self) -> Json {
        match self {
            Region::Wrap { locs, paths, serialized } => Json::obj([
                ("kind", Json::str("wrap")),
                ("locs", Json::strings(locs)),
                ("paths", Json::list(paths.iter().map(|p| Json::int(*p as u64)))),
                ("serialized", Json::strings(serialized)),
            ]),
            Region::Dissolve { locks } => {
                Json::obj([("kind", Json::str("dissolve")), ("locks", Json::strings(locks))])
            }
            Region::Preempt { locks } => {
                Json::obj([("kind", Json::str("preempt")), ("locks", Json::strings(locks))])
            }
            Region::PreemptWait { cv } => {
                Json::obj([("kind", Json::str("preempt_wait")), ("cv", Json::str(cv.clone()))])
            }
            Region::Retire { cv, serialize } => Json::obj([
                ("kind", Json::str("retire")),
                ("cv", Json::str(cv.clone())),
                ("serialize", Json::Bool(*serialize)),
            ]),
        }
    }
}

/// Seed a wrap region for a shared-data hazard over `subjects`: close
/// the locations over the summary's invariant groups, then start from
/// the minimal Recipe 4 shape — only the under-protected paths, with
/// the serialization set the locations' other protectors demand.
pub fn wrap_region_seed(summary: &ScenarioSummary, subjects: &[String]) -> Region {
    let locs = synth::expand_groups(summary, subjects);
    let (paths, serialized) = synth::wrap_seed(summary, &locs);
    Region::Wrap { locs, paths, serialized }
}

/// Close `locs` over the summary's declared invariant groups.
pub fn group_closure(summary: &ScenarioSummary, locs: &[String]) -> Vec<String> {
    synth::expand_groups(summary, locs)
}

/// The atomic-region footprint of a summary: per path name, the set of
/// locations accessed inside an atomic (or serialized) region. This is
/// the measure the widening report compares — an inferred fix whose
/// footprint strictly contains the hand-written TM variant's has grown
/// the region beyond what a human chose to protect.
pub fn footprint(summary: &ScenarioSummary) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    for path in &summary.paths {
        let mut depth = 0usize;
        let mut locs = BTreeSet::new();
        for op in &path.ops {
            match op {
                Op::AtomicBegin { .. } => depth += 1,
                Op::AtomicEnd => depth = depth.saturating_sub(1),
                Op::Read { loc, .. } | Op::Write { loc, .. } | Op::Rmw { loc } if depth > 0 => {
                    locs.insert(loc.clone());
                }
                _ => {}
            }
        }
        out.insert(path.name.clone(), locs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Path, Summary};

    #[test]
    fn wrap_seed_matches_recipe4_shape() {
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").acquire("right").read("x").write("x").release("right"))
            .path(Path::new("p1").read("x").write("x"))
            .build();
        let region = wrap_region_seed(&s, &["x".to_string()]);
        let Region::Wrap { locs, paths, serialized } = &region else {
            panic!("expected a wrap, got {region:?}");
        };
        assert_eq!(locs, &["x".to_string()]);
        assert_eq!(paths.iter().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(serialized, &["right".to_string()]);
        assert_eq!(region.recipe(), txfix_core::Recipe::WrapUnprotected);
        let fixed = region.apply(&s).unwrap();
        assert!(crate::check(&fixed).is_empty(), "{:?}", crate::check(&fixed));
    }

    #[test]
    fn footprint_sees_only_in_region_accesses() {
        let s = Summary::new("t", "tm")
            .path(Path::new("p0").write("outside").atomic_begin().read("x").write("y").atomic_end())
            .path(Path::new("p1").write("z"))
            .build();
        let fp = footprint(&s);
        assert_eq!(fp["p0"], ["x", "y"].iter().map(|s| s.to_string()).collect::<BTreeSet<_>>());
        assert!(fp["p1"].is_empty());
    }

    #[test]
    fn regions_render_and_serialize_deterministically() {
        let r = Region::Wrap {
            locs: vec!["a".into(), "b".into()],
            paths: [0usize, 2].into_iter().collect(),
            serialized: vec!["l".into()],
        };
        assert_eq!(r.to_string(), "wrap {a, b} in paths [0, 2] serialized with {l}");
        assert!(r.to_json().contains("\"kind\":\"wrap\""));
        assert_eq!(Region::Dissolve { locks: vec!["l".into()] }.to_string(), "dissolve locks {l}");
        assert_eq!(
            Region::Retire { cv: "cv".into(), serialize: true }.to_string(),
            "retire cv (serialized)"
        );
    }
}
