//! Condition-variable passes: wait-with-held-lock cycles and lost
//! wakeups.
//!
//! **Wait cycles.** A `Wait` releases only its monitor. If the waiting
//! path holds another non-revocable lock across the sleep, and some
//! path that notifies the condition variable must acquire that lock,
//! the notifier can block behind the sleeper forever — the
//! condition-variable analogue of a lock-order inversion (Apache#42031
//! is the corpus instance). Revocable (Recipe 3) acquisitions are
//! exempt on both sides: a preemptible transaction rolls the sleeper
//! back instead of deadlocking.
//!
//! **Lost wakeups.** A notification announces a predicate change. If a
//! path notifies *before* writing the predicate location (or never
//! writes it), a waiter can run its predicate check between the write
//! and the notify's intended order, observe stale state, and sleep
//! through the only wakeup.

use crate::ir::{Op, ScenarioSummary};
use crate::report::{Finding, Hazard};
use std::collections::{BTreeMap, BTreeSet};

/// The wait-cycle pass.
pub(crate) fn wait_cycles(summary: &ScenarioSummary) -> Vec<Finding> {
    // For each cv, which locks do notifying paths acquire non-revocably?
    let mut notifier_locks: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for path in &summary.paths {
        let notified: BTreeSet<&str> = path
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Notify { cv } => Some(cv.as_str()),
                _ => None,
            })
            .collect();
        if notified.is_empty() {
            continue;
        }
        let acquired: BTreeSet<&str> = path
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Acquire { lock, revocable: false } => Some(lock.as_str()),
                _ => None,
            })
            .collect();
        for cv in notified {
            notifier_locks.entry(cv).or_default().extend(acquired.iter().copied());
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for path in &summary.paths {
        let mut held: Vec<(&str, bool)> = Vec::new();
        for op in &path.ops {
            match op {
                Op::Acquire { lock, revocable } => held.push((lock, *revocable)),
                Op::Release { lock } => {
                    if let Some(pos) = held.iter().rposition(|(h, _)| h == lock) {
                        held.remove(pos);
                    }
                }
                Op::Wait { cv, monitor, .. } => {
                    for (lock, revocable) in &held {
                        if *revocable || lock == monitor {
                            continue;
                        }
                        let needed = notifier_locks
                            .get(cv.as_str())
                            .is_some_and(|locks| locks.contains(lock));
                        if needed && seen.insert((cv.clone(), lock.to_string())) {
                            out.push(Finding {
                                hazard: Hazard::WaitCycle {
                                    cv: cv.clone(),
                                    lock: lock.to_string(),
                                },
                                explanation: format!(
                                    "{} sleeps on {cv} holding \"{lock}\" (only the monitor \
                                     \"{monitor}\" is released), but a path that notifies \
                                     {cv} acquires \"{lock}\" first",
                                    path.name,
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// The lost-wakeup pass.
pub(crate) fn lost_wakeups(summary: &ScenarioSummary) -> Vec<Finding> {
    // The predicate locations each cv's waiters read.
    let mut predicates: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for path in &summary.paths {
        for op in &path.ops {
            if let Op::Wait { cv, predicate, .. } = op {
                predicates.entry(cv).or_default().insert(predicate);
            }
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for path in &summary.paths {
        for (i, op) in path.ops.iter().enumerate() {
            let Op::Notify { cv } = op else { continue };
            let Some(locs) = predicates.get(cv.as_str()) else { continue };
            for loc in locs {
                let writes_at = |op: &Op| match op {
                    Op::Write { loc: l, .. } | Op::Rmw { loc: l } => l == loc,
                    _ => false,
                };
                let before = path.ops[..i].iter().any(writes_at);
                let after = path.ops[i + 1..].iter().any(writes_at);
                if !before && after && seen.insert((cv.clone(), loc.to_string())) {
                    out.push(Finding {
                        hazard: Hazard::LostWakeup { cv: cv.clone(), loc: loc.to_string() },
                        explanation: format!(
                            "{} notifies {cv} before it updates {loc}, the state the wait \
                             predicate reads: a waiter checking {loc} now goes back to \
                             sleep and misses the wakeup",
                            path.name,
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Path, Summary};

    fn waiter(extra_lock: bool) -> Path {
        let p = Path::new("waiter");
        let p = if extra_lock { p.acquire("outer") } else { p };
        let p = p.acquire("m").wait("cv", "m", "flag").release("m");
        if extra_lock {
            p.release("outer")
        } else {
            p
        }
    }

    #[test]
    fn wait_holding_a_lock_the_notifier_needs_is_a_cycle() {
        let s = Summary::new("t", "buggy")
            .path(waiter(true))
            .path(
                Path::new("notifier")
                    .acquire("outer")
                    .release("outer")
                    .acquire("m")
                    .write("flag")
                    .notify("cv")
                    .release("m"),
            )
            .build();
        let c = wait_cycles(&s);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].hazard, Hazard::WaitCycle { cv: "cv".into(), lock: "outer".into() });
    }

    #[test]
    fn waiting_with_only_the_monitor_is_clean() {
        let s = Summary::new("t", "dev")
            .path(waiter(false))
            .path(Path::new("notifier").acquire("m").write("flag").notify("cv").release("m"))
            .build();
        assert!(wait_cycles(&s).is_empty());
    }

    #[test]
    fn unrelated_held_locks_are_not_cycles() {
        // The notifier never touches "outer", so holding it is fine.
        let s = Summary::new("t", "dev")
            .path(waiter(true))
            .path(Path::new("notifier").acquire("m").write("flag").notify("cv").release("m"))
            .build();
        assert!(wait_cycles(&s).is_empty());
    }

    #[test]
    fn revocable_held_lock_is_exempt() {
        let s = Summary::new("t", "tm")
            .path(
                Path::new("waiter")
                    .atomic_begin()
                    .acquire_tx("outer")
                    .acquire("m")
                    .wait("cv", "m", "flag")
                    .release("m")
                    .release("outer")
                    .atomic_end(),
            )
            .path(
                Path::new("notifier")
                    .acquire("outer")
                    .release("outer")
                    .acquire("m")
                    .write("flag")
                    .notify("cv")
                    .release("m"),
            )
            .build();
        assert!(wait_cycles(&s).is_empty());
    }

    #[test]
    fn notify_before_the_predicate_write_is_a_lost_wakeup() {
        let s = Summary::new("t", "buggy")
            .path(waiter(false))
            .path(Path::new("notifier").notify("cv").acquire("m").write("flag").release("m"))
            .build();
        let l = lost_wakeups(&s);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].hazard, Hazard::LostWakeup { cv: "cv".into(), loc: "flag".into() });
    }

    #[test]
    fn notify_after_the_predicate_write_is_clean() {
        let s = Summary::new("t", "dev")
            .path(waiter(false))
            .path(Path::new("notifier").acquire("m").write("flag").release("m").notify("cv"))
            .build();
        assert!(lost_wakeups(&s).is_empty());
    }

    #[test]
    fn notify_without_waiters_is_clean() {
        let s =
            Summary::new("t", "dev").path(Path::new("notifier").notify("cv").write("flag")).build();
        assert!(lost_wakeups(&s).is_empty());
    }
}
