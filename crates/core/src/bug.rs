//! The bug description model.
//!
//! A [`BugRecord`] captures what the paper's authors extracted from each
//! bug report: what kind of bug it is, the structural characteristics that
//! determine whether (and how) transactional memory can fix it, what the
//! fix's atomic blocks would call into (Table 3's "downcalls"), and how the
//! developers actually fixed it. The recipe-applicability analysis
//! ([`crate::analysis`]) and difficulty model ([`crate::difficulty`]) are
//! pure functions of this record, so the paper's Tables 1–3 can be
//! re-derived from the corpus dataset.

use std::fmt;

/// The application a bug was reported against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum App {
    /// Mozilla (browser engine, incl. SpiderMonkey and NSPR).
    Mozilla,
    /// Apache httpd.
    Apache,
    /// MySQL server.
    MySql,
}

impl App {
    /// All applications, in the paper's table order.
    pub const ALL: [App; 3] = [App::Mozilla, App::Apache, App::MySql];
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            App::Mozilla => write!(f, "Mozilla"),
            App::Apache => write!(f, "Apache"),
            App::MySql => write!(f, "MySQL"),
        }
    }
}

/// The two bug classes the paper studies (order violations are excluded,
/// §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BugKind {
    /// Circular wait between threads (locks, or locks + condition
    /// variables).
    Deadlock,
    /// Code not protected from interleaving with other accesses to the
    /// same shared data.
    AtomicityViolation,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugKind::Deadlock => write!(f, "deadlock"),
            BugKind::AtomicityViolation => write!(f, "atomicity violation"),
        }
    }
}

/// How much synchronization the buggy atomicity-violation code had.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MissingSync {
    /// No synchronization at all around the conflicting regions — the
    /// best case for TM (Recipe 2, §5.3.2).
    Complete,
    /// Asymmetric: most regions follow the locking discipline, some do not
    /// (Recipe 4's target, e.g. MySQL-I).
    Partial,
    /// Synchronization present but using the wrong lock
    /// (Mozilla#18025/#133773).
    WrongLock,
    /// Hand-rolled ad hoc mechanism (ownership flags, custom
    /// check/abort/redo as in MySQL#16582).
    AdHoc,
}

/// What the TM fix's atomic blocks call into (paper Table 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Downcalls {
    /// Condition-variable operations inside the atomic block (needs
    /// transactional condvars).
    pub condvar: bool,
    /// A blocking `retry` replaces a condition-variable wait.
    pub retry: bool,
    /// File/socket/pipe I/O (needs xCalls).
    pub io: bool,
    /// Very long actions (millions of instructions, e.g. GC).
    pub long_action: bool,
    /// Calls into other library/module functions that must be executed
    /// transactionally.
    pub library: bool,
}

impl Downcalls {
    /// No downcalls.
    pub const NONE: Downcalls =
        Downcalls { condvar: false, retry: false, io: false, long_action: false, library: false };

    /// Whether any downcall category is present.
    pub fn any(&self) -> bool {
        self.condvar || self.retry || self.io || self.long_action || self.library
    }

    /// Whether the downcalls force extra safety reasoning in the fix.
    /// File/socket I/O does *not*: the x-call wrappers make it routine
    /// (the paper judges the I/O-bearing Apache-II fix easy). Library
    /// downcalls, very long actions and condition variables do (the
    /// "reason that wrapping downcalls inside the atomic block was safe"
    /// judgment behind the medium ratings of §5.3.2).
    pub fn needs_reasoning(&self) -> bool {
        self.long_action || self.library || self.condvar
    }
}

/// Structural characteristics that decide recipe applicability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BugChars {
    // -- deadlock structure ------------------------------------------------
    /// The deadlock is a pure lock-acquisition cycle (pairs of locks taken
    /// out of order).
    pub lock_cycle: bool,
    /// The circular wait goes through a condition-variable wait.
    pub cv_wait: bool,
    /// The blocked threads need *two-way* communication (nested monitor
    /// lockout): the waiter can only be signalled by a thread that needs
    /// the waiter's lock **and** the waiter cannot make progress without
    /// the signal. TM cannot fix these (§5.3.1).
    pub two_way_communication: bool,
    /// Locks involved span more than one module.
    pub multi_module: bool,
    /// State unrelated to the deadlocking locks changes while they are
    /// held (irreversible effects), so no participant can be rolled back.
    pub non_preemptible: bool,
    /// The deadlock stems from a design error (e.g. waiting on a destroyed
    /// component, Mozilla#27486), not from the mutual-exclusion mechanism.
    pub design_flaw: bool,
    // -- atomicity-violation structure --------------------------------------
    /// How much synchronization the buggy code had (AV bugs only).
    pub missing_sync: Option<MissingSync>,
    /// The region must atomically issue a long-latency operation and later
    /// process its completion callback (Mozilla#19421). Unfixable.
    pub long_latency_callback: bool,
    /// Needs exactly-once execution semantics beyond atomicity. Unfixable.
    pub exactly_once: bool,
    /// The atomicity that is violated is of I/O visible across processes
    /// (kernel/process or process/process, e.g. Apache#7617). Unfixable.
    pub cross_process_io: bool,
    // -- fix shape -----------------------------------------------------------
    /// The whole TM fix is a single atomic block.
    pub single_atomic_block: bool,
    /// The TM fix carries side benefits beyond this bug — it fixes other
    /// reported bugs or retires a fragile protocol (e.g. Mozilla-I's
    /// Recipe 1 fix also resolved four later deadlock reports). Breaks
    /// difficulty ties in TM's favor.
    pub fix_extra_benefits: bool,
    /// Number of code regions that must be modified by the TM fix.
    pub fix_sites: u8,
    /// What the fix's atomic blocks call into.
    pub downcalls: Downcalls,
}

/// Fix difficulty, as judged in the paper (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Difficulty {
    /// Few code changes, local reasoning.
    Easy,
    /// Either distributed changes or some non-local reasoning.
    Medium,
    /// Deep understanding or compensation logic required.
    Hard,
}

impl fmt::Display for Difficulty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Difficulty::Easy => write!(f, "easy"),
            Difficulty::Medium => write!(f, "medium"),
            Difficulty::Hard => write!(f, "hard"),
        }
    }
}

/// What the developers did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DevFix {
    /// Difficulty of the final developer fix, as judged by the criteria of
    /// §5.2.
    pub difficulty: Difficulty,
    /// Lines added + modified by the developer fix.
    pub loc: u32,
    /// Number of fix attempts visible in the bug history (≥1).
    pub attempts: u8,
}

/// One studied concurrency bug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BugRecord {
    /// Bug-tracker identifier, e.g. `"Mozilla#54743"`. IDs named in the
    /// paper are used verbatim; reconstructed entries set
    /// [`synthetic_id`](BugRecord::synthetic_id).
    pub id: &'static str,
    /// Application the bug belongs to.
    pub app: App,
    /// Deadlock or atomicity violation.
    pub kind: BugKind,
    /// Whether the ID was synthesized during dataset reconstruction (the
    /// paper's per-bug table is not public; see DESIGN.md).
    pub synthetic_id: bool,
    /// One-line description.
    pub summary: &'static str,
    /// Structural characteristics.
    pub chars: BugChars,
    /// The developers' fix.
    pub dev_fix: DevFix,
    /// Key of the executable reproduction in `txfix-corpus`, for the 18
    /// bugs whose fixes the study implemented and tested.
    pub scenario: Option<&'static str>,
}

impl BugRecord {
    /// Whether this bug's fix was implemented and tested (18 of 60).
    pub fn is_implemented(&self) -> bool {
        self.scenario.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_display_matches_paper_names() {
        assert_eq!(App::Mozilla.to_string(), "Mozilla");
        assert_eq!(App::Apache.to_string(), "Apache");
        assert_eq!(App::MySql.to_string(), "MySQL");
    }

    #[test]
    fn downcalls_any_and_reasoning() {
        assert!(!Downcalls::NONE.any());
        let d = Downcalls { retry: true, ..Downcalls::NONE };
        assert!(d.any());
        assert!(!d.needs_reasoning(), "retry alone does not force downcall reasoning");
        let d = Downcalls { io: true, ..Downcalls::NONE };
        assert!(!d.needs_reasoning(), "x-call I/O is routine (Apache-II judged easy)");
        let d = Downcalls { library: true, ..Downcalls::NONE };
        assert!(d.needs_reasoning());
    }

    #[test]
    fn difficulty_orders_easy_to_hard() {
        assert!(Difficulty::Easy < Difficulty::Medium);
        assert!(Difficulty::Medium < Difficulty::Hard);
    }
}
