//! Small, stable per-thread identities used by the wait-for graph.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of an OS thread within the lock runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadToken(u64);

impl ThreadToken {
    /// Numeric value (diagnostics only).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Fabricate a token for unit tests that model threads without
    /// spawning them.
    #[cfg(test)]
    pub(crate) fn fabricate(n: u64) -> ThreadToken {
        ThreadToken(n)
    }
}

impl fmt::Display for ThreadToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread#{}", self.0)
    }
}

static NEXT: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TOKEN: Cell<Option<ThreadToken>> = const { Cell::new(None) };
}

/// The calling thread's token, allocated on first use.
pub fn current() -> ThreadToken {
    TOKEN.with(|t| match t.get() {
        Some(tok) => tok,
        None => {
            let tok = ThreadToken(NEXT.fetch_add(1, Ordering::Relaxed));
            t.set(Some(tok));
            tok
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_within_a_thread() {
        assert_eq!(current(), current());
    }

    #[test]
    fn distinct_across_threads() {
        let here = current();
        let there = std::thread::spawn(current).join().unwrap();
        assert_ne!(here, there);
    }

    #[test]
    fn display_mentions_thread() {
        assert!(current().to_string().contains("thread#"));
    }
}
