//! The lock-order validator applied to corpus-style lock disciplines:
//! buggy orders are flagged from clean runs; fixed orders validate clean.
//! (Lockdep state is process-global, so this lives in its own test binary
//! to avoid cross-talk with other integration tests.)

use txfix::txlock::{lockdep, TxMutex};

#[test]
fn buggy_discipline_is_flagged_and_fixed_discipline_is_clean() {
    // Phase 1: the Mozilla#54743 shape, sequentially — both orders occur,
    // no deadlock happens, lockdep still reports the hazard.
    lockdep::reset();
    lockdep::enable();
    let cache = TxMutex::new("ldc.cache", 0u32);
    let atoms = TxMutex::new("ldc.atoms", 0u32);
    {
        let _a = cache.lock().unwrap();
        let _b = atoms.lock().unwrap();
    }
    {
        let _b = atoms.lock().unwrap();
        let _a = cache.lock().unwrap();
    }
    lockdep::disable();
    let hazards = lockdep::inversions();
    assert_eq!(hazards.len(), 1, "expected exactly the cache/atoms inversion: {hazards:?}");

    // Phase 2: the developers' reordered fix validates clean.
    lockdep::reset();
    lockdep::enable();
    let cache = TxMutex::new("ldf.cache", 0u32);
    let atoms = TxMutex::new("ldf.atoms", 0u32);
    for _ in 0..3 {
        let _a = cache.lock().unwrap();
        let _b = atoms.lock().unwrap();
    }
    lockdep::disable();
    assert!(lockdep::inversions().is_empty(), "fixed order must not be flagged");

    // Phase 3: three-lock rotating order (Mozilla#60303 shape) — every
    // pair ends up inverted.
    lockdep::reset();
    lockdep::enable();
    let locks: Vec<TxMutex<u32>> =
        (0..3).map(|i| TxMutex::new(Box::leak(format!("ldr.l{i}").into_boxed_str()), 0)).collect();
    for t in 0..3usize {
        let _g1 = locks[t].lock().unwrap();
        let _g2 = locks[(t + 1) % 3].lock().unwrap();
    }
    lockdep::disable();
    assert!(
        !lockdep::inversions().is_empty(),
        "rotating three-lock order must produce at least one inversion"
    );
}
