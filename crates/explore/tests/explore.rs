//! Scheduler and explorer integration tests: DFS completeness on a toy
//! state space, replay determinism, PCT bug-finding, serial-rung
//! schedule-independence, and the corpus-level acceptance sweep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txfix_corpus::{scheduled_by_key, scheduled_scenarios, Outcome, ScheduledRun, Variant};
use txfix_explore::dfs::explore_dfs;
use txfix_explore::runner::{run_schedule, RunResult, DEFAULT_MAX_STEPS};
use txfix_explore::{explore_variant, pct, replay, ExploreConfig, Strategy};
use txfix_stm::sched;
use txfix_stm::trace::TracedCell;
use txfix_stm::TVar;
use txfix_tmsync::serial_atomic;
use txfix_tmsync::SerialDomain;

/// Two threads, two writes each, all to the same cell: every pair of
/// operations is dependent, so partial-order reduction must not prune
/// anything and DFS must enumerate exactly C(4,2) = 6 interleavings.
fn toy_dependent() -> ScheduledRun {
    let cell = Arc::new(TracedCell::new("toy.shared", 0));
    let c2 = cell.clone();
    ScheduledRun {
        threads: vec![
            Box::new(move || {
                cell.store(1);
                cell.store(2);
            }),
            Box::new(move || {
                c2.store(3);
                c2.store(4);
            }),
        ],
        check: Box::new(|| Outcome::Correct),
    }
}

/// Two threads, two writes each, to *different* cells: everything
/// commutes, so sleep sets must collapse the 6 interleavings.
fn toy_independent() -> ScheduledRun {
    let a = Arc::new(TracedCell::new("toy.a", 0));
    let b = Arc::new(TracedCell::new("toy.b", 0));
    ScheduledRun {
        threads: vec![
            Box::new(move || {
                a.store(1);
                a.store(2);
            }),
            Box::new(move || {
                b.store(3);
                b.store(4);
            }),
        ],
        check: Box::new(|| Outcome::Correct),
    }
}

#[test]
fn dfs_enumerates_exactly_the_dependent_interleavings() {
    sched::run_exclusively(|| {
        let out = explore_dfs(&|_| toy_dependent(), Variant::Buggy, 1_000, DEFAULT_MAX_STEPS);
        assert!(out.exhausted, "toy space must be exhausted");
        assert_eq!(out.schedules, 6, "2 threads x 2 dependent ops = C(4,2) schedules");
        assert_eq!(out.pruned, 0, "fully dependent ops leave nothing to prune");
        assert!(out.failure.is_none());
    });
}

#[test]
fn sleep_sets_prune_commuting_interleavings() {
    sched::run_exclusively(|| {
        let out = explore_dfs(&|_| toy_independent(), Variant::Buggy, 1_000, DEFAULT_MAX_STEPS);
        assert!(out.exhausted);
        assert!(
            out.schedules < 6,
            "independent ops must explore fewer than the {} full interleavings, got {}",
            6,
            out.schedules
        );
        assert!(out.failure.is_none());
    });
}

#[test]
fn pct_finds_planted_refcount_bug_within_budget() {
    let scenario = scheduled_by_key("av_refcount_race").expect("scenario exists");
    let cfg =
        ExploreConfig { strategy: Strategy::Pct, budget: 200, seed: 7, ..ExploreConfig::default() };
    let entry = explore_variant(scenario.as_ref(), Variant::Buggy, &cfg);
    assert!(entry.ok, "PCT must plant the lost-update within 200 schedules: {entry:?}");
    let failure = entry.failure.expect("buggy variant fails");
    assert!(failure.found_after <= 200);
}

#[test]
fn failing_schedule_replays_bit_for_bit() {
    let scenario = scheduled_by_key("av_stats_race").expect("scenario exists");
    let cfg = ExploreConfig { strategy: Strategy::Dfs, budget: 1_000, ..ExploreConfig::default() };
    let entry = explore_variant(scenario.as_ref(), Variant::Buggy, &cfg);
    let failure = entry.failure.expect("DFS finds the stats race");
    let trace: Vec<usize> = failure
        .trace
        .split('.')
        .map(|c| c.parse().expect("trace components are indices"))
        .collect();
    let a = replay(scenario.as_ref(), Variant::Buggy, DEFAULT_MAX_STEPS, &trace);
    let b = replay(scenario.as_ref(), Variant::Buggy, DEFAULT_MAX_STEPS, &trace);
    assert!(matches!(a.result, RunResult::Bug(_)), "replayed schedule still fails: {a:?}");
    assert_eq!(a.result, b.result);
    assert_eq!(a.log.events, b.log.events, "same trace, same event sequence");
    assert_eq!(a.log.trace(), trace, "replay followed the trace exactly");
}

/// Replay determinism over arbitrary PCT seeds: whatever schedule a seed
/// produces, re-driving its decision trace reproduces the identical
/// event sequence.
#[test]
fn pct_schedules_replay_deterministically_across_seeds() {
    let scenario = scheduled_by_key("av_adhoc_retry").expect("scenario exists");
    // A spread of seeds rather than a proptest runner: each case spins up
    // real threads, so keep the count deliberate and the failures
    // reproducible by seed.
    for seed in [0u64, 1, 7, 42, 0xdead_beef, u64::MAX, 0x1234_5678_9abc_def0] {
        for variant in [Variant::Buggy, Variant::TmFix] {
            let (events, trace) = sched::run_exclusively(|| {
                let params = pct::PctParams { seed, depth: 3, steps_hint: 64 };
                let out = run_schedule(
                    scenario.build(variant),
                    DEFAULT_MAX_STEPS,
                    pct::pct_picker(params, 0),
                );
                let trace = out.log.trace();
                (out.log.events, trace)
            });
            let replayed = replay(scenario.as_ref(), variant, DEFAULT_MAX_STEPS, &trace);
            assert_eq!(replayed.log.events, events, "seed {seed:#x} {variant:?}: replay diverged");
        }
    }
}

/// Satellite: the escalation ladder's Serial rung is schedule-independent.
/// A serial-mode atomic region takes the domain exclusively and runs
/// once; there must be no schedule in which its body re-executes (an
/// abort/retry) or its effects interleave.
#[test]
fn serial_rung_is_schedule_independent() {
    let build = |_v: Variant| {
        let domain = SerialDomain::new();
        let counter = TVar::new(0u64);
        let body_runs = Arc::new(AtomicU64::new(0));
        let (d1, d2) = (domain.clone(), domain.clone());
        let (c1, c2) = (counter.clone(), counter.clone());
        let cc = counter.clone();
        let (r1, r2) = (body_runs.clone(), body_runs.clone());
        let rc = body_runs.clone();
        ScheduledRun {
            threads: vec![
                Box::new(move || {
                    serial_atomic(&d1, |txn| {
                        r1.fetch_add(1, Ordering::Relaxed);
                        c1.modify(txn, |v| v + 1)
                    });
                }),
                Box::new(move || {
                    serial_atomic(&d2, |txn| {
                        r2.fetch_add(1, Ordering::Relaxed);
                        c2.modify(txn, |v| v + 1)
                    });
                }),
            ],
            check: Box::new(move || {
                let runs = rc.load(Ordering::Relaxed);
                let total = cc.load();
                if runs == 2 && total == 2 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved(format!(
                        "serial rung not schedule-independent: {runs} body runs, counter {total}"
                    ))
                }
            }),
        }
    };
    sched::run_exclusively(|| {
        let out = explore_dfs(&build, Variant::TmFix, 2_000, DEFAULT_MAX_STEPS);
        assert!(
            out.failure.is_none(),
            "a schedule aborted/duplicated a serial-mode txn: {:?}",
            out.failure
        );
        assert!(out.schedules >= 1);
    });
}

/// The acceptance sweep: every buggy variant breaks within budget, every
/// fixed variant survives everything DFS explores.
#[test]
fn dfs_sweep_finds_every_bug_and_clears_every_fix() {
    let cfg = ExploreConfig { strategy: Strategy::Dfs, budget: 3_000, ..ExploreConfig::default() };
    for scenario in scheduled_scenarios() {
        for variant in [Variant::Buggy, Variant::DevFix, Variant::TmFix] {
            let entry = explore_variant(scenario.as_ref(), variant, &cfg);
            assert!(
                entry.ok,
                "{} [{}]: expectation not met (schedules={} pruned={} failure={:?})",
                entry.key, entry.variant, entry.schedules, entry.pruned, entry.failure
            );
            assert_eq!(entry.step_limited, 0, "{}: no schedule may hit the step bound", entry.key);
        }
    }
}
