//! Minimal reimplementation of the `criterion` API surface that txfix's
//! benches use, vendored because the build environment has no network access
//! to crates.io.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints the median ns/iteration. Under
//! `cargo test` (cargo passes `--test` to harness-less bench binaries) each
//! benchmark body executes exactly once as a smoke test, so the tier-1 suite
//! stays fast.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier for parameterized benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier made of a function name plus a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Identifier made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&self.id)
    }
}

/// Types accepted as benchmark names by `bench_function`.
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// One iteration, no timing (cargo test smoke run).
    Test,
    /// Timed sampling.
    Measure { sample_count: u64 },
}

impl Bencher {
    /// Run `f` repeatedly, timing it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(f());
            }
            Mode::Measure { sample_count } => {
                // Warm-up and per-sample iteration sizing: aim for samples
                // of at least ~1ms so Instant resolution noise stays small.
                let warm = Instant::now();
                std::hint::black_box(f());
                let one = warm.elapsed().max(Duration::from_nanos(50));
                let iters = (Duration::from_millis(1).as_nanos() / one.as_nanos()).max(1) as u64;
                self.iters_per_sample = iters;
                self.samples.clear();
                for _ in 0..sample_count {
                    let t = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(f());
                    }
                    self.samples.push(t.elapsed());
                }
            }
        }
    }

    fn report(&self, id: &str) {
        if self.mode == Mode::Test {
            println!("bench {id}: ok (test mode)");
            return;
        }
        if self.samples.is_empty() {
            println!("bench {id}: no samples (closure never called iter)");
            return;
        }
        let mut per_iter: Vec<u128> =
            self.samples.iter().map(|d| d.as_nanos() / self.iters_per_sample as u128).collect();
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        println!(
            "bench {id}: median {median} ns/iter (min {lo}, max {hi}, {} samples x {} iters)",
            per_iter.len(),
            self.iters_per_sample
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark driver.
pub struct Criterion {
    test_mode: bool,
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Cargo invokes harness-less bench targets with `--test` during
        // `cargo test`, and with `--bench` during `cargo bench`.
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_TEST_MODE").is_some();
        Criterion { test_mode, default_samples: 24 }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_samples,
            criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_samples;
        self.run_one(&id.into_id(), samples, |b| f(b));
        self
    }

    fn run_one(&self, id: &str, samples: u64, mut f: impl FnMut(&mut Bencher)) {
        let mode = if self.test_mode {
            Mode::Test
        } else {
            Mode::Measure { sample_count: samples.max(1) }
        };
        let mut b = Bencher { mode, samples: Vec::new(), iters_per_sample: 1 };
        f(&mut b);
        b.report(id);
    }

    /// Final reporting hook (no-op; exists for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declare the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion { test_mode: true, default_samples: 4 };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("a", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1, "test mode runs each body exactly once");
    }

    #[test]
    fn measure_mode_samples() {
        let c = Criterion { test_mode: false, default_samples: 3 };
        let mut calls = 0u64;
        c.run_one("m", 3, |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 4, "warmup + 3 samples should call several times");
    }
}
