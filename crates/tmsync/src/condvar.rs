//! Transactional condition variables (commit-before-wait).
//!
//! Five of the paper's Mozilla fixes required "support for condition
//! variables in transactions [17]" (Table 3). The semantics implemented
//! here follow that line of work: `wait` **commits** the transaction's
//! effects so far (so other threads can observe the state that justifies a
//! later signal), blocks, and re-executes the atomic block from the top
//! when signalled. Signals issued inside a transaction are deferred to its
//! commit, preserving isolation.

use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use txfix_stm::{sched, trace};
use txfix_stm::{StmResult, Txn, WaitPoint};

/// Upper bound on one blocking interval; waits re-check afterwards, which
/// turns a lost-wakeup programming error into a spin instead of a hang.
const WAIT_SLICE: Duration = Duration::from_millis(100);

/// A condition variable for transactional code.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use txfix_stm::{atomic, TVar};
/// use txfix_tmsync::TxCondvar;
///
/// let ready = TVar::new(false);
/// let cv = Arc::new(TxCondvar::new());
///
/// std::thread::scope(|s| {
///     let (ready2, cv2) = (ready.clone(), cv.clone());
///     s.spawn(move || {
///         atomic(|txn| {
///             if !ready2.read(txn)? {
///                 return cv2.wait(txn); // commit-before-wait
///             }
///             Ok(())
///         });
///     });
///     let (ready3, cv3) = (ready.clone(), cv.clone());
///     s.spawn(move || {
///         atomic(|txn| {
///             ready3.write(txn, true)?;
///             cv3.notify_all_at_commit(txn);
///             Ok(())
///         });
///     });
/// });
/// ```
pub struct TxCondvar {
    generation: Mutex<u64>,
    cv: Condvar,
    trace_id: u64,
}

impl Default for TxCondvar {
    fn default() -> Self {
        TxCondvar::new()
    }
}

impl fmt::Debug for TxCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxCondvar").field("generation", &*self.generation.lock()).finish()
    }
}

impl TxCondvar {
    /// Create a condition variable.
    pub fn new() -> TxCondvar {
        TxCondvar {
            generation: Mutex::new(0),
            cv: Condvar::new(),
            trace_id: trace::next_object_id(),
        }
    }

    /// Commit the transaction's work so far, block until notified, and
    /// re-execute the atomic block. Composes with `?`:
    /// `return cv.wait(txn);`.
    ///
    /// # Errors
    ///
    /// Always returns `Err` (the commit-and-wait control-flow signal); the
    /// runtime consumes it.
    pub fn wait<T>(self: &Arc<Self>, txn: &mut Txn) -> StmResult<T> {
        trace::emit(trace::EventKind::CvWait { cv: self.trace_id, name: String::new() });
        txn.wait_on(self.clone() as Arc<dyn WaitPoint>)
    }

    /// Wake all waiters immediately (non-transactional callers).
    pub fn notify_all(&self) {
        sched::yield_point(sched::SyncOp::CvNotify(self.trace_id));
        trace::emit(trace::EventKind::CvNotify { cv: self.trace_id, name: String::new() });
        let mut g = self.generation.lock();
        *g += 1;
        drop(g);
        self.cv.notify_all();
        sched::signal(self.trace_id);
    }

    /// Defer a [`notify_all`](TxCondvar::notify_all) until `txn` commits,
    /// so waiters only observe signals justified by committed state.
    pub fn notify_all_at_commit(self: &Arc<Self>, txn: &mut Txn) {
        let this = self.clone();
        txn.on_commit(move || this.notify_all());
    }

    /// Wake one waiter immediately.
    ///
    /// Waiters re-check their predicate after re-execution, so waking
    /// "one" is purely a throughput hint; it can never cause a missed
    /// update (the generation still advances for everyone).
    pub fn notify_one(&self) {
        sched::yield_point(sched::SyncOp::CvNotify(self.trace_id));
        trace::emit(trace::EventKind::CvNotify { cv: self.trace_id, name: String::new() });
        let mut g = self.generation.lock();
        *g += 1;
        drop(g);
        self.cv.notify_one();
        sched::signal(self.trace_id);
    }

    /// Defer a [`notify_one`](TxCondvar::notify_one) until `txn` commits.
    pub fn notify_one_at_commit(self: &Arc<Self>, txn: &mut Txn) {
        let this = self.clone();
        txn.on_commit(move || this.notify_one());
    }
}

impl WaitPoint for TxCondvar {
    fn prepare(&self) -> u64 {
        *self.generation.lock()
    }

    fn wait(&self, ticket: u64) {
        if sched::is_controlled() {
            // Park on the scheduler instead of the OS condvar. Only one
            // controlled thread runs at a time, so no notify can slip in
            // between the generation check and the park; a notify that
            // happens while nobody is parked is *observably lost* here if
            // it raced ahead of `prepare` — exactly the lost-wakeup
            // behaviour the explorer must be able to reach.
            loop {
                if *self.generation.lock() > ticket {
                    return;
                }
                sched::block_on(self.trace_id, sched::SyncOp::CvWait(self.trace_id));
            }
        }
        let mut g = self.generation.lock();
        if *g > ticket {
            return;
        }
        // One bounded wait; the atomic block re-checks its predicate after
        // re-execution, so a timeout is safe (spurious wakeup).
        let _ = self.cv.wait_for(&mut g, WAIT_SLICE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use txfix_stm::{atomic, TVar};

    #[test]
    fn wait_commits_prior_writes() {
        let state = TVar::new(0u32);
        let cv = Arc::new(TxCondvar::new());
        let passed_wait = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            let (state2, cv2, pw) = (state.clone(), cv.clone(), passed_wait.clone());
            s.spawn(move || {
                atomic(|txn| {
                    let v = state2.read(txn)?;
                    if v == 0 {
                        state2.write(txn, 1)?; // must be visible to the signaler
                        return cv2.wait(txn);
                    }
                    Ok(())
                });
                pw.store(true, Ordering::SeqCst);
            });

            // Wait until the pre-wait write committed.
            for _ in 0..2000 {
                if state.load() == 1 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            assert_eq!(state.load(), 1, "wait did not commit prior writes");

            state.store(2);
            cv.notify_all();
        });
        assert!(passed_wait.load(Ordering::SeqCst));
        assert_eq!(state.load(), 2);
    }

    #[test]
    fn signal_before_prepare_is_not_lost() {
        // prepare() then a signal then wait(ticket) must not block.
        let cv = TxCondvar::new();
        let t = cv.prepare();
        cv.notify_all();
        let start = std::time::Instant::now();
        WaitPoint::wait(&cv, t);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn notify_one_wakes_a_waiter() {
        let flag = TVar::new(false);
        let cv = Arc::new(TxCondvar::new());
        let woke = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let (f, c, w) = (flag.clone(), cv.clone(), woke.clone());
            s.spawn(move || {
                atomic(|txn| {
                    if !f.read(txn)? {
                        return c.wait(txn);
                    }
                    Ok(())
                });
                w.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(20));
            let (f, c) = (flag.clone(), cv.clone());
            atomic(|txn| {
                f.write(txn, true)?;
                c.notify_one_at_commit(txn);
                Ok(())
            });
        });
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn producer_consumer_via_tx_condvar() {
        let queue: TVar<Vec<u32>> = TVar::new(Vec::new());
        let cv = Arc::new(TxCondvar::new());
        let consumed = Arc::new(AtomicU64::new(0));
        const ITEMS: u32 = 50;

        std::thread::scope(|s| {
            let (q, cvp) = (queue.clone(), cv.clone());
            s.spawn(move || {
                for i in 0..ITEMS {
                    atomic(|txn| {
                        let mut v = q.read(txn)?;
                        v.push(i);
                        q.write(txn, v)?;
                        cvp.notify_all_at_commit(txn);
                        Ok(())
                    });
                }
            });
            let (q, cvc, consumed) = (queue.clone(), cv.clone(), consumed.clone());
            s.spawn(move || {
                let mut got = 0u64;
                while got < ITEMS as u64 {
                    let batch = atomic(|txn| {
                        let v = q.read(txn)?;
                        if v.is_empty() {
                            return cvc.wait(txn);
                        }
                        q.write(txn, Vec::new())?;
                        Ok(v.len() as u64)
                    });
                    got += batch;
                }
                consumed.store(got, Ordering::SeqCst);
            });
        });
        assert_eq!(consumed.load(Ordering::SeqCst), ITEMS as u64);
    }
}
