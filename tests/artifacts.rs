//! Schema regression tests over the committed result artifacts.
//!
//! Every sweep (`txfix stress/chaos/explore/autofix/crash/canary`) writes its
//! canonical report to the repo root, and CI regenerates and compares
//! them; these tests pin the *committed* copies — if a schema drifts or
//! a committed artifact records a failing sweep, `cargo test` says so
//! before any consumer trips over it.

use txfix::recipes::json::{get, Json};

fn load(name: &str) -> Json {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed artifact {path} must exist: {e}"));
    Json::parse(&raw).unwrap_or_else(|e| panic!("{name} must parse as JSON: {e}"))
}

/// Assert `doc` carries the schema marker and return its top-level map.
fn check_schema<'a>(
    name: &str,
    doc: &'a Json,
    schema: &str,
) -> &'a std::collections::BTreeMap<String, Json> {
    let obj = doc.object(name).unwrap();
    assert_eq!(get(obj, "schema").unwrap().string("schema").unwrap(), schema, "{name}");
    obj
}

#[test]
fn bench_artifact_matches_stress_schema() {
    let doc = load("BENCH_stm.json");
    let obj = check_schema("BENCH_stm.json", &doc, "txfix-stress-v2");
    assert!(get(obj, "host_cores").unwrap().number("host_cores").unwrap() >= 1.0);
    let clocks: Vec<String> = get(obj, "clocks")
        .unwrap()
        .array("clocks")
        .unwrap()
        .iter()
        .map(|c| c.string("clock").unwrap().to_string())
        .collect();
    assert_eq!(clocks, ["gv1", "gv5"], "committed sweep must cover both clocks");
    let runs = get(obj, "runs").unwrap().array("runs").unwrap();
    assert!(!runs.is_empty(), "stress artifact records no runs");
    for r in runs {
        let run = r.object("run").unwrap();
        for field in ["scenario", "variant", "clock"] {
            get(run, field).unwrap().string(field).unwrap();
        }
        for field in ["ops_per_sec", "aborts", "threads", "p50_ns", "p99_ns"] {
            get(run, field).unwrap().number(field).unwrap();
        }
    }
}

#[test]
fn chaos_artifact_passed_its_sweep() {
    let doc = load("CHAOS_stm.json");
    let obj = check_schema("CHAOS_stm.json", &doc, "txfix-chaos-v1");
    assert!(get(obj, "passed").unwrap().bool("passed").unwrap(), "committed chaos sweep failed");
    assert!(!get(obj, "runs").unwrap().array("runs").unwrap().is_empty());
}

#[test]
fn explore_artifact_met_its_expectations() {
    let doc = load("EXPLORE_stm.json");
    let obj = check_schema("EXPLORE_stm.json", &doc, "txfix-explore-v1");
    assert!(get(obj, "ok").unwrap().bool("ok").unwrap(), "committed exploration failed");
    assert!(!get(obj, "entries").unwrap().array("entries").unwrap().is_empty());
}

#[test]
fn autofix_artifact_verified_every_fix() {
    let doc = load("AUTOFIX_stm.json");
    let obj = check_schema("AUTOFIX_stm.json", &doc, "txfix-autofix-v1");
    assert!(get(obj, "ok").unwrap().bool("ok").unwrap(), "committed autofix sweep failed");
    let entries = get(obj, "entries").unwrap().array("entries").unwrap();
    assert!(!entries.is_empty());
    for e in entries {
        let entry = e.object("entry").unwrap();
        let key = get(entry, "key").unwrap().string("key").unwrap();
        assert!(get(entry, "ok").unwrap().bool("ok").unwrap(), "unverified fix for {key}");
    }
}

#[test]
fn crash_artifact_is_clean_on_fixed_and_flags_the_planted_bug() {
    let doc = load("CRASH_stm.json");
    let obj = check_schema("CRASH_stm.json", &doc, "txfix-crash-v1");
    assert!(get(obj, "ok").unwrap().bool("ok").unwrap(), "committed crash sweep failed");
    let variants = get(obj, "variants").unwrap().array("variants").unwrap();
    assert_eq!(variants.len(), 2, "both WAL protocol variants swept");
    for v in variants {
        let row = v.object("variant").unwrap();
        let name = get(row, "variant").unwrap().string("variant").unwrap();
        let expected_clean = get(row, "expected_clean").unwrap().bool("expected_clean").unwrap();
        assert_eq!(expected_clean, name == "fixed", "{name}");
        assert!(get(row, "ok").unwrap().bool("ok").unwrap(), "{name} missed its verdict");
        for s in get(row, "schedules").unwrap().array("schedules").unwrap() {
            let sched = s.object("schedule").unwrap();
            let flagged = get(sched, "flagged").unwrap().array("flagged").unwrap();
            if expected_clean {
                assert!(flagged.is_empty(), "{name}: fixed WAL flagged {flagged:?}");
            } else {
                assert!(
                    flagged.iter().any(|l| l.string("label").unwrap() == "wal_after_commit_write"),
                    "{name}: planted bug not flagged at its window"
                );
            }
        }
    }
}

#[test]
fn kv_bench_artifact_covers_every_mode_at_two_shard_counts() {
    let doc = load("BENCH_kv.json");
    let obj = check_schema("BENCH_kv.json", &doc, "txfix-kv-v1");
    assert!(get(obj, "ok").unwrap().bool("ok").unwrap(), "committed kv sweep failed");
    assert!(get(obj, "host_cores").unwrap().number("host_cores").unwrap() >= 1.0);
    assert_eq!(get(obj, "clock").unwrap().string("clock").unwrap(), "gv1");
    let w = get(obj, "workload").unwrap().object("workload").unwrap();
    for field in ["keys", "users", "theta_milli", "session_len", "burst_period", "burst_len"] {
        get(w, field).unwrap().number(field).unwrap();
    }
    get(w, "mix").unwrap().string("mix").unwrap();
    let cells = get(obj, "cells").unwrap().array("cells").unwrap();
    let mut seen = std::collections::BTreeSet::new();
    let mut shard_counts = std::collections::BTreeSet::new();
    for c in cells {
        let cell = c.object("cell").unwrap();
        let mode = get(cell, "mode").unwrap().string("mode").unwrap().to_string();
        let shards = get(cell, "shards").unwrap().number("shards").unwrap() as u64;
        seen.insert(mode.clone());
        shard_counts.insert(shards);
        for field in [
            "ops",
            "aborts",
            "escalations",
            "serial_commits",
            "steps",
            "ops_per_kstep",
            "p50_steps",
            "p99_steps",
        ] {
            get(cell, field).unwrap().number(field).unwrap();
        }
        assert!(
            get(cell, "recovered_ok").unwrap().bool("recovered_ok").unwrap(),
            "{mode}/{shards}: recovery diverged"
        );
        assert!(
            get(cell, "clean_run").unwrap().bool("clean_run").unwrap(),
            "{mode}/{shards}: schedule did not finish"
        );
    }
    let want: std::collections::BTreeSet<String> = ["dev", "tm", "hybrid"].map(String::from).into();
    assert_eq!(seen, want, "every mode must be swept");
    assert!(shard_counts.len() >= 2, "at least two shard counts must be swept");
}

#[test]
fn kv_crash_artifact_is_clean_in_every_mode() {
    let doc = load("CRASH_kv.json");
    let obj = check_schema("CRASH_kv.json", &doc, "txfix-crash-kv-v1");
    assert!(get(obj, "ok").unwrap().bool("ok").unwrap(), "committed kv crash sweep failed");
    let modes = get(obj, "modes").unwrap().array("modes").unwrap();
    assert_eq!(modes.len(), 3, "all three store modes swept");
    for m in modes {
        let row = m.object("mode").unwrap();
        let name = get(row, "mode").unwrap().string("mode").unwrap();
        assert!(get(row, "ok").unwrap().bool("ok").unwrap(), "{name} missed its verdict");
        for s in get(row, "schedules").unwrap().array("schedules").unwrap() {
            let sched = s.object("schedule").unwrap();
            let flagged = get(sched, "flagged").unwrap().array("flagged").unwrap();
            assert!(flagged.is_empty(), "{name}: store flagged at {flagged:?}");
            assert!(get(sched, "runs").unwrap().number("runs").unwrap() > 0.0, "{name}");
        }
    }
}

#[test]
fn canary_artifact_has_no_uncaught_canary() {
    let doc = load("CANARY_stm.json");
    let obj = check_schema("CANARY_stm.json", &doc, "txfix-canary-v1");
    assert!(
        get(obj, "ok").unwrap().bool("ok").unwrap(),
        "committed canary matrix records an uncaught canary"
    );
    let canaries = get(obj, "canaries").unwrap().array("canaries").unwrap();
    assert_eq!(canaries.len(), 11, "one matrix row per planted canary");
    let layer_names = ["analyze", "lint", "explore", "chaos", "crash"];
    for c in canaries {
        let row = c.object("canary").unwrap();
        let name = get(row, "canary").unwrap().string("canary").unwrap();
        assert!(get(row, "caught").unwrap().bool("caught").unwrap(), "{name} uncaught");
        let layers = get(row, "layers").unwrap().array("layers").unwrap();
        assert_eq!(layers.len(), layer_names.len(), "{name}");
        for (probe, expected) in layers.iter().zip(layer_names) {
            let p = probe.object("probe").unwrap();
            assert_eq!(get(p, "layer").unwrap().string("layer").unwrap(), expected, "{name}");
            // A probe that caught the canary must have been probed: the
            // matrix may not claim credit for a skipped layer.
            let probed = get(p, "probed").unwrap().bool("probed").unwrap();
            let caught = get(p, "caught").unwrap().bool("caught").unwrap();
            assert!(probed || !caught, "{name}: caught by an unprobed layer");
        }
        // The lint layer is honestly blind to runtime mutations.
        let lint = layers[1].object("probe").unwrap();
        assert!(!get(lint, "probed").unwrap().bool("probed").unwrap(), "{name}");
    }
}
