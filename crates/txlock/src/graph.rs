//! The global wait-for graph.
//!
//! Nodes are threads and locks; an edge `thread → lock` means the thread is
//! blocked acquiring the lock, and `lock → thread` means the thread owns
//! the lock. A cycle through these edges is a deadlock. The graph also
//! tracks which threads are currently executing an abortable transaction,
//! so the detector can resolve a deadlock by *preempting* a transaction
//! (paper Recipe 3) instead of reporting an unrecoverable error.
//!
//! Only *blocked* acquisitions touch the graph: lock ownership is read on
//! demand from the lock objects themselves (via [`OwnerQuery`]), so
//! uncontended lock/unlock stays free of global state — essential for the
//! Recipe 3 benchmarks, whose whole point is that the common path keeps
//! plain-lock performance.

use crate::thread_id::ThreadToken;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Weak;
use txfix_stm::KillHandle;

/// Identity of a lock registered with the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub(crate) u64);

/// How the detector reads a lock's current owner on demand.
pub(crate) trait OwnerQuery: Send + Sync {
    fn current_owner(&self) -> Option<ThreadToken>;
    fn lock_name(&self) -> &str;
}

#[derive(Default)]
struct GraphState {
    locks: HashMap<LockId, Weak<dyn OwnerQuery>>,
    waits_for: HashMap<ThreadToken, LockId>,
    /// Threads currently inside an abortable transaction that acquires
    /// revocable locks, keyed by thread.
    txns: HashMap<ThreadToken, TxnEntry>,
}

struct TxnEntry {
    kill: KillHandle,
    /// Lower value = preferred victim (paper: preempt the low-priority or
    /// infrequently run thread).
    priority: i32,
}

/// What the detector decided about a blocked acquisition.
#[derive(Debug)]
pub(crate) enum CycleResolution {
    /// No cycle; keep waiting.
    NoCycle,
    /// A cycle exists and the *calling* thread is the chosen victim: it
    /// must abort its transaction (releasing its revocable locks).
    SelfVictim,
    /// A cycle exists and another thread was killed; keep waiting — its
    /// abort will release the lock we need. The token is diagnostic (and
    /// asserted on in tests).
    OtherVictim(#[allow(dead_code)] ThreadToken),
    /// A cycle exists and no participant can be aborted: a true deadlock.
    Unresolvable(Vec<String>),
}

static GRAPH: Mutex<Option<GraphState>> = Mutex::new(None);

fn with_state<R>(f: impl FnOnce(&mut GraphState) -> R) -> R {
    let mut g = GRAPH.lock();
    f(g.get_or_insert_with(GraphState::default))
}

pub(crate) fn register_lock(id: LockId, lock: Weak<dyn OwnerQuery>) {
    with_state(|s| {
        s.locks.insert(id, lock);
    });
}

pub(crate) fn unregister_lock(id: LockId) {
    with_state(|s| {
        s.locks.remove(&id);
    });
}

pub(crate) fn clear_wait(t: ThreadToken) {
    with_state(|s| {
        s.waits_for.remove(&t);
    });
}

/// Declare that `t` has begun an abortable transaction that may acquire
/// revocable locks; `priority` orders victim selection (lower aborts
/// first).
pub fn register_txn_thread(t: ThreadToken, kill: KillHandle, priority: i32) {
    with_state(|s| {
        s.txns.insert(t, TxnEntry { kill, priority });
    });
}

/// Like [`register_txn_thread`], but keeps an existing registration (and
/// its priority). Returns `true` if a new registration was created.
pub fn register_txn_thread_if_new(t: ThreadToken, kill: KillHandle, priority: i32) -> bool {
    with_state(|s| match s.txns.entry(t) {
        std::collections::hash_map::Entry::Occupied(_) => false,
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(TxnEntry { kill, priority });
            true
        }
    })
}

/// Remove `t`'s transaction registration (on commit or abort).
pub fn unregister_txn_thread(t: ThreadToken) {
    with_state(|s| {
        s.txns.remove(&t);
    });
}

/// Record that `t` blocks on `lock`, then look for a deadlock cycle and
/// resolve it if possible.
pub(crate) fn block_and_check(t: ThreadToken, lock: LockId) -> CycleResolution {
    with_state(|s| {
        s.waits_for.insert(t, lock);
        let Some(cycle_threads) = find_cycle(s, t, lock) else {
            return CycleResolution::NoCycle;
        };

        // Victim selection: the abortable transaction with the lowest
        // priority among cycle participants; prefer self on ties so the
        // thread that *can* abort does so promptly (Recipe 3 semantics).
        let mut victim: Option<(ThreadToken, i32)> = None;
        for &ct in &cycle_threads {
            if let Some(e) = s.txns.get(&ct) {
                let better = match victim {
                    None => true,
                    Some((vt, vp)) => e.priority < vp || (e.priority == vp && ct == t && vt != t),
                };
                if better {
                    victim = Some((ct, e.priority));
                }
            }
        }

        match victim {
            Some((vt, _)) if vt == t => {
                s.waits_for.remove(&t);
                CycleResolution::SelfVictim
            }
            Some((vt, _)) => {
                if let Some(e) = s.txns.get(&vt) {
                    e.kill.kill();
                }
                CycleResolution::OtherVictim(vt)
            }
            None => {
                let desc = describe_cycle(s, &cycle_threads);
                s.waits_for.remove(&t);
                CycleResolution::Unresolvable(desc)
            }
        }
    })
}

fn owner_of(s: &GraphState, lock: LockId) -> Option<ThreadToken> {
    s.locks.get(&lock)?.upgrade()?.current_owner()
}

/// Threads forming the cycle that passes through (`start` → `first_lock`),
/// if one exists.
fn find_cycle(s: &GraphState, start: ThreadToken, first_lock: LockId) -> Option<Vec<ThreadToken>> {
    let mut path = vec![start];
    let mut lock = first_lock;
    // Bounded walk: each step moves to a distinct thread.
    for _ in 0..s.waits_for.len() + 2 {
        let owner = owner_of(s, lock)?;
        if owner == start {
            return Some(path);
        }
        if path.contains(&owner) {
            // A cycle exists but does not pass through `start`; not ours to
            // resolve (the threads in it will detect it themselves).
            return None;
        }
        path.push(owner);
        lock = *s.waits_for.get(&owner)?;
    }
    None
}

fn describe_cycle(s: &GraphState, threads: &[ThreadToken]) -> Vec<String> {
    threads
        .iter()
        .map(|t| {
            let name = s
                .waits_for
                .get(t)
                .and_then(|l| s.locks.get(l))
                .and_then(Weak::upgrade)
                .map(|l| l.lock_name().to_owned())
                .unwrap_or_else(|| "?".to_owned());
            format!("{t} -> lock \"{name}\"")
        })
        .collect()
}

/// Diagnostic: number of threads currently blocked in the graph.
pub fn blocked_thread_count() -> usize {
    with_state(|s| s.waits_for.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct MockLock {
        name: String,
        owner: PlMutex<Option<ThreadToken>>,
    }

    impl OwnerQuery for MockLock {
        fn current_owner(&self) -> Option<ThreadToken> {
            *self.owner.lock()
        }
        fn lock_name(&self) -> &str {
            &self.name
        }
    }

    static NEXT_TEST_LOCK: AtomicU64 = AtomicU64::new(u64::MAX / 2);

    fn mock(name: &str, owner: Option<ThreadToken>) -> (LockId, Arc<MockLock>) {
        let id = LockId(NEXT_TEST_LOCK.fetch_add(1, Ordering::Relaxed));
        let l = Arc::new(MockLock { name: name.to_owned(), owner: PlMutex::new(owner) });
        let weak: Weak<dyn OwnerQuery> = Arc::downgrade(&l) as Weak<dyn OwnerQuery>;
        register_lock(id, weak);
        (id, l)
    }

    fn t(n: u64) -> ThreadToken {
        ThreadToken::fabricate(n)
    }

    fn cleanup(ids: &[LockId], threads: &[ThreadToken]) {
        for id in ids {
            unregister_lock(*id);
        }
        for th in threads {
            clear_wait(*th);
            unregister_txn_thread(*th);
        }
    }

    #[test]
    fn no_cycle_on_simple_block() {
        let a = t(9_000_001);
        let me = t(9_000_002);
        let (l1, _k1) = mock("l1", Some(a));
        match block_and_check(me, l1) {
            CycleResolution::NoCycle => {}
            other => panic!("unexpected {other:?}"),
        }
        cleanup(&[l1], &[me, a]);
    }

    #[test]
    fn two_thread_cycle_is_unresolvable_without_txns() {
        let a = t(9_100_001);
        let b = t(9_100_002);
        let (la, _ka) = mock("la", Some(a));
        let (lb, _kb) = mock("lb", Some(b));
        with_state(|s| {
            s.waits_for.insert(b, la);
        });
        match block_and_check(a, lb) {
            CycleResolution::Unresolvable(desc) => {
                assert_eq!(desc.len(), 2);
                assert!(desc.iter().any(|d| d.contains("la") || d.contains("lb")));
            }
            other => panic!("unexpected {other:?}"),
        }
        cleanup(&[la, lb], &[a, b]);
    }

    #[test]
    fn transactional_participant_is_chosen_as_victim() {
        let a = t(9_200_001);
        let b = t(9_200_002);
        let (la, _ka) = mock("la", Some(a));
        let (lb, _kb) = mock("lb", Some(b));
        with_state(|s| {
            s.waits_for.insert(b, la);
        });
        let kill = txfix_stm::atomic(|txn| Ok(txn.kill_handle()));
        register_txn_thread(b, kill.clone(), 0);
        match block_and_check(a, lb) {
            CycleResolution::OtherVictim(v) => {
                assert_eq!(v, b);
                assert!(kill.is_killed());
            }
            other => panic!("unexpected {other:?}"),
        }
        cleanup(&[la, lb], &[a, b]);
    }

    #[test]
    fn self_victim_when_caller_is_the_abortable_txn() {
        let a = t(9_300_001);
        let b = t(9_300_002);
        let (la, _ka) = mock("la", Some(a));
        let (lb, _kb) = mock("lb", Some(b));
        with_state(|s| {
            s.waits_for.insert(b, la);
        });
        let kill = txfix_stm::atomic(|txn| Ok(txn.kill_handle()));
        register_txn_thread(a, kill, 0);
        match block_and_check(a, lb) {
            CycleResolution::SelfVictim => {}
            other => panic!("unexpected {other:?}"),
        }
        cleanup(&[la, lb], &[a, b]);
    }

    #[test]
    fn lower_priority_txn_is_preferred_victim() {
        let a = t(9_400_001);
        let b = t(9_400_002);
        let (la, _ka) = mock("la", Some(a));
        let (lb, _kb) = mock("lb", Some(b));
        with_state(|s| {
            s.waits_for.insert(b, la);
        });
        let kill_a = txfix_stm::atomic(|txn| Ok(txn.kill_handle()));
        let kill_b = txfix_stm::atomic(|txn| Ok(txn.kill_handle()));
        register_txn_thread(a, kill_a.clone(), 5);
        register_txn_thread(b, kill_b.clone(), 1);
        match block_and_check(a, lb) {
            CycleResolution::OtherVictim(v) => {
                assert_eq!(v, b, "lower-priority txn should be the victim");
                assert!(kill_b.is_killed());
                assert!(!kill_a.is_killed());
            }
            other => panic!("unexpected {other:?}"),
        }
        cleanup(&[la, lb], &[a, b]);
    }

    #[test]
    fn dropped_lock_breaks_the_walk() {
        let a = t(9_500_001);
        let me = t(9_500_002);
        let (l1, keeper) = mock("l1", Some(a));
        drop(keeper); // weak ref dies → owner unknown → no cycle
        match block_and_check(me, l1) {
            CycleResolution::NoCycle => {}
            other => panic!("unexpected {other:?}"),
        }
        cleanup(&[l1], &[me, a]);
    }
}
