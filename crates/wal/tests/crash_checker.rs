//! End-to-end checks of the crash sweep: the fixed protocol survives
//! every crash point, the commit-before-fsync protocol is flagged at its
//! planted window, and the whole report is deterministic per seed.
//!
//! The crash-point registry and chaos layer are process-global, so every
//! test here serializes on [`GATE`].

use std::sync::Mutex;
use txfix_core::json::ToJson;
use txfix_stm::chaos::Trigger;
use txfix_wal::checker::{run_crash_check, CrashConfig, Schedule, WAL_PATH};
use txfix_wal::{DurableKv, WalVariant, AFTER_COMMIT_WRITE};
use txfix_xcall::{crashpoint, SimFs, BLOCK_BYTES};

static GATE: Mutex<()> = Mutex::new(());

#[test]
fn fixed_wal_is_clean_and_buggy_wal_is_flagged_at_the_planted_window() {
    let _g = GATE.lock().unwrap();
    let report = run_crash_check(&CrashConfig::full(7));
    assert!(report.ok, "sweep verdict:\n{}", report.table());
    for v in &report.variants {
        for s in &v.schedules {
            match v.variant {
                WalVariant::Fixed => assert!(
                    s.flagged.is_empty(),
                    "fixed WAL flagged under {}: {:?}",
                    s.schedule.name(),
                    s.flagged
                ),
                WalVariant::CommitBeforeFsync => assert!(
                    s.flagged.iter().any(|l| l == AFTER_COMMIT_WRITE),
                    "buggy WAL not flagged at {} under {}",
                    AFTER_COMMIT_WRITE,
                    s.schedule.name()
                ),
            }
        }
    }
}

#[test]
fn crash_report_is_bit_for_bit_deterministic_per_seed() {
    let _g = GATE.lock().unwrap();
    let cfg = CrashConfig {
        seed: 11,
        images_per_point: 2,
        variants: vec![WalVariant::Fixed, WalVariant::CommitBeforeFsync],
        schedules: vec![Schedule::Clean, Schedule::XcallFaults],
    };
    let a = run_crash_check(&cfg).to_json();
    let b = run_crash_check(&cfg).to_json();
    assert_eq!(a, b);
    let other = run_crash_check(&CrashConfig { seed: 12, ..CrashConfig::full(12) }).to_json();
    assert_ne!(a, other, "the seed must steer the crash images");
}

/// Satellite invariant: at *every* crash point of the fixed workload,
/// the crash image the model would take is a legal flush subset of the
/// page cache — block-granular, each block either the durable content or
/// the cached content, never a blend.
#[test]
fn crash_image_is_a_legal_flush_subset_at_every_crash_point() {
    let _g = GATE.lock().unwrap();
    // Record pass: learn the labels this workload passes through.
    let universe = {
        let session = crashpoint::record();
        run_fixed_workload();
        let u = crashpoint::recording();
        drop(session);
        u
    };
    assert!(
        universe.iter().any(|(l, _)| l == AFTER_COMMIT_WRITE),
        "the WAL protocol must plant its commit window: {universe:?}"
    );
    for (label, hits) in &universe {
        for hit in 1..=*hits {
            let session = crashpoint::arm(label, 0, Trigger::Nth(hit));
            let fs = run_fixed_workload();
            assert!(crashpoint::fired().is_some(), "{label} hit {hit} must fire");
            let file = fs.open(WAL_PATH).unwrap();
            let cached = file.read_all();
            let durable = file.durable_snapshot();
            for seed in [0u64, 7, 1234] {
                let img = file.crash_image(seed);
                assert_flush_subset(&img, &durable, &cached, label, hit, seed);
            }
            drop(session);
        }
    }
}

fn run_fixed_workload() -> std::sync::Arc<SimFs> {
    let fs = SimFs::new();
    let kv = DurableKv::open(&fs, WAL_PATH, WalVariant::Fixed);
    let puts = |pairs: &[(&str, &str)]| -> Vec<(String, String)> {
        pairs.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect()
    };
    let _ = kv.put_many(&puts(&[("a", "a1_kkkkkkkkkkkk"), ("b", "b1_kkkkkkkkkkkk")]));
    kv.put_many_cancelled(&puts(&[("a", "poisoned_value")]));
    let _ = kv.put_many(&puts(&[("c", "c3_kkkkkkkkkkkk")]));
    crashpoint::crash_point("wal_quiesce");
    fs
}

fn assert_flush_subset(
    img: &[u8],
    durable: &[u8],
    cached: &[u8],
    label: &str,
    hit: u64,
    seed: u64,
) {
    assert!(
        img.len() >= durable.len() && img.len() <= cached.len().max(durable.len()),
        "image length out of range at {label}#{hit} seed {seed}"
    );
    for b in 0..img.len().div_ceil(BLOCK_BYTES) {
        let s = b * BLOCK_BYTES;
        let e = ((b + 1) * BLOCK_BYTES).min(img.len());
        let pad = |src: &[u8]| -> Vec<u8> {
            let mut v = vec![0u8; e - s];
            if src.len() > s {
                let ce = src.len().min(e);
                v[..ce - s].copy_from_slice(&src[s..ce]);
            }
            v
        };
        assert!(
            img[s..e] == pad(durable)[..] || img[s..e] == pad(cached)[..],
            "block {b} at {label}#{hit} seed {seed} blends durable and cached content"
        );
    }
}
