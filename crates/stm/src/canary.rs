//! Canary mutations: deliberate bugs planted inside the runtime to
//! mutation-test the detectors (`txfix canary`).
//!
//! [`chaos`](crate::chaos) injects failures the runtime *claims to
//! survive*; this module injects failures the detectors *claim to catch*.
//! Each [`Canary`] names one mutation at a real hazard site — skip a
//! TVar write-back, drop a lock release, run a compensation twice — and
//! arming it makes the runtime misbehave in exactly the way the analysis
//! layers (analyze / lint / explore / chaos invariants) are supposed to
//! flag. A canary no layer catches is a measured detector gap, not a
//! passing test (the kimberlite canary principle: if the canary does not
//! fail, the tests are incomplete).
//!
//! ## Compiled out by default
//!
//! The whole module — and every call site, via per-crate `canary-*`
//! cargo features — is absent from default builds: zero overhead, no
//! accidental deployment. The `stm_overhead` bench and the CI guard job
//! (which greps the default binary for canary site names) pin this.
//!
//! ## Determinism
//!
//! Arming reuses the [`chaos`](crate::chaos) ordinal machinery: each site
//! keeps a hit counter and the decision for hit `k` is the pure hash
//! `splitmix64(seed ^ SITE_SALT ^ k)` (for [`Trigger::PerMille`]) or a
//! pure predicate on `k` ([`Trigger::Nth`] / [`Trigger::EveryNth`]), so a
//! fixed `(canary, seed, trigger)` fires on a fixed set of ordinals. A
//! firing site never takes a scheduler yield or emits a trace event of
//! its own — the mutation must be exactly as silent as the bug it
//! models, or the detectors would be tipped off.

use crate::chaos::{splitmix64, Trigger};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One plantable runtime mutation.
///
/// The discriminant doubles as the index into the arming tables, so the
/// list is append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Canary {
    /// Skip one TVar write-back in the lazy commit's publish loop: the
    /// transaction reports success but the store never lands (silent
    /// lost update). Hit ordinal: one per write-set entry.
    StmSkipWriteback = 0,
    /// Skip read-set validation for one orec at commit: a transaction
    /// that raced a committed writer publishes anyway (serializability
    /// violation). Hit ordinal: one per read-set entry.
    StmSkipValidation = 1,
    /// Publish with a stale version stamp (the orec's pre-commit
    /// version instead of a fresh clock tick): concurrent readers
    /// validate against the old stamp and miss the conflict. Hit
    /// ordinal: one per lazy commit.
    StmStaleStamp = 2,
    /// Bump the retry notifier *before* the write-back loop and suppress
    /// the post-publish notification: a waiter can revalidate against
    /// unpublished state and sleep through the only wakeup. Hit ordinal:
    /// one per lazy commit.
    StmNotifyReorder = 3,
    /// Drop a `TxMutex` release on one path: the lock stays held by a
    /// finished owner and every later acquirer blocks forever. Hit
    /// ordinal: one per release.
    LockDropRelease = 4,
    /// Skip one `lockdep` order-edge record: execution is unchanged but
    /// the dynamic lock-order graph silently loses coverage. Hit
    /// ordinal: one per acquisition attempt.
    LockSkipLockdep = 5,
    /// Release-then-reacquire inside a revocation window: the abort
    /// path frees the lock early, letting a waiter slip in mid-
    /// revocation, then retakes (or double-releases) it. Hit ordinal:
    /// one per revocation.
    LockReacquireInRevoke = 6,
    /// Skip a deferred x-call action's undo: an aborted transaction
    /// leaks its pending operations. Hit ordinal: one per undo hook
    /// execution.
    XcallSkipUndo = 7,
    /// Register a compensating action twice: an aborted pipe read
    /// pushes its bytes back twice (duplication). Hit ordinal: one per
    /// compensation registration.
    XcallDoubleCompensate = 8,
    /// Let one announced op execute out of turnstile order: the
    /// scheduler records the picker's decision but runs a different
    /// ready candidate. Hit ordinal: one per perturbable decision.
    SchedOutOfTurn = 9,
    /// Pretend-success fsync in the WAL durability path: the commit-time
    /// sync application reports success but never moves the page cache
    /// to the durable image, so acknowledged commits silently stop
    /// surviving crashes (the kimberlite `canary-skip-fsync` bug class).
    /// Hit ordinal: one per deferred sync application.
    WalSkipFsync = 10,
}

/// Number of canary sites (size of the arming tables).
pub const SITE_COUNT: usize = 11;

impl Canary {
    /// Every canary, in discriminant order.
    pub const ALL: [Canary; SITE_COUNT] = [
        Canary::StmSkipWriteback,
        Canary::StmSkipValidation,
        Canary::StmStaleStamp,
        Canary::StmNotifyReorder,
        Canary::LockDropRelease,
        Canary::LockSkipLockdep,
        Canary::LockReacquireInRevoke,
        Canary::XcallSkipUndo,
        Canary::XcallDoubleCompensate,
        Canary::SchedOutOfTurn,
        Canary::WalSkipFsync,
    ];

    /// Table index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Canary::StmSkipWriteback => "stm_skip_writeback",
            Canary::StmSkipValidation => "stm_skip_validation",
            Canary::StmStaleStamp => "stm_stale_stamp",
            Canary::StmNotifyReorder => "stm_notify_reorder",
            Canary::LockDropRelease => "lock_drop_release",
            Canary::LockSkipLockdep => "lock_skip_lockdep",
            Canary::LockReacquireInRevoke => "lock_reacquire_in_revoke",
            Canary::XcallSkipUndo => "xcall_skip_undo",
            Canary::XcallDoubleCompensate => "xcall_double_compensate",
            Canary::SchedOutOfTurn => "sched_out_of_turn",
            Canary::WalSkipFsync => "wal_skip_fsync",
        }
    }

    /// The mutated code path, for reports.
    pub fn site(self) -> &'static str {
        match self {
            Canary::StmSkipWriteback => "stm::txn lazy-commit publish loop",
            Canary::StmSkipValidation => "stm::txn lazy-commit read-set validation",
            Canary::StmStaleStamp => "stm::txn lazy-commit version stamp",
            Canary::StmNotifyReorder => "stm::txn commit vs retry-notifier ordering",
            Canary::LockDropRelease => "txlock::mutex release path",
            Canary::LockSkipLockdep => "txlock::lockdep attempt-edge record",
            Canary::LockReacquireInRevoke => "txlock::mutex revocation (abort) path",
            Canary::XcallSkipUndo => "xcall::file abort undo hook",
            Canary::XcallDoubleCompensate => "xcall::pipe compensation registration",
            Canary::SchedOutOfTurn => "stm::sched turnstile decision",
            Canary::WalSkipFsync => "xcall::file commit-time sync application",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Canary> {
        Canary::ALL.into_iter().find(|c| c.name() == s)
    }
}

// ---- the arming tables ----------------------------------------------------
//
// Same discipline as `chaos`: one relaxed load (`ACTIVE`) on the disabled
// path, per-site atomics for the armed trigger so `fire` never locks. At
// most one canary is armed at a time — a sweep probes mutations one by
// one, and a single armed site keeps every probe attributable.

static ACTIVE: AtomicBool = AtomicBool::new(false);
static ARMED: AtomicU64 = AtomicU64::new(0); // site index + 1; 0 = none
static SEED: AtomicU64 = AtomicU64::new(0);
static KIND: AtomicU64 = AtomicU64::new(0); // 1/2/3 = PerMille/Nth/EveryNth
static VALUE: AtomicU64 = AtomicU64::new(0);
static HITS: [AtomicU64; SITE_COUNT] = {
    #[allow(clippy::declare_interior_mutable_const)] // const used only as array initializer
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; SITE_COUNT]
};
static FIRED: [AtomicU64; SITE_COUNT] = {
    #[allow(clippy::declare_interior_mutable_const)] // const used only as array initializer
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; SITE_COUNT]
};

/// Per-site salt so one seed draws independent per-mille coins at
/// different sites (mirrors `chaos::POINT_SALT`).
static SITE_SALT: [u64; SITE_COUNT] = [
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x27D4_EB2F_1656_67C5,
    0x9E37_79B9_85EB_CA87,
    0x85EB_CA6B_C2B2_AE35,
    0xFF51_AFD7_ED55_8CCD,
    0xC4CE_B9FE_1A85_EC53,
    0x2545_F491_4F6C_DD1D,
    0x9E6C_63D0_876A_3F6B,
    0xD1B5_4A32_D192_ED03,
    0x2BB6_863E_4098_BD1D,
];

/// Arm `canary` with `trigger` under `seed`, zeroing all hit/fired
/// counters. Any previously armed canary is disarmed.
pub fn arm(canary: Canary, seed: u64, trigger: Trigger) {
    ACTIVE.store(false, Ordering::SeqCst);
    for i in 0..SITE_COUNT {
        HITS[i].store(0, Ordering::SeqCst);
        FIRED[i].store(0, Ordering::SeqCst);
    }
    let (kind, value) = match trigger {
        Trigger::PerMille(p) => (1, u64::from(p)),
        Trigger::Nth(n) => (2, n),
        Trigger::EveryNth(n) => (3, n),
    };
    SEED.store(seed, Ordering::SeqCst);
    KIND.store(kind, Ordering::SeqCst);
    VALUE.store(value, Ordering::SeqCst);
    ARMED.store(canary.index() as u64 + 1, Ordering::SeqCst);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Disarm whatever canary is armed (counters are kept until the next
/// [`arm`]).
pub fn disarm() {
    ACTIVE.store(false, Ordering::SeqCst);
    ARMED.store(0, Ordering::SeqCst);
}

/// Whether any canary is currently armed.
pub fn is_armed() -> bool {
    ACTIVE.load(Ordering::SeqCst)
}

/// RAII guard: arm on construction, disarm on drop.
pub struct Armed(());

/// Arm `canary` for the lifetime of the returned guard.
#[must_use = "the canary is disarmed when the guard drops"]
pub fn scoped(canary: Canary, seed: u64, trigger: Trigger) -> Armed {
    arm(canary, seed, trigger);
    Armed(())
}

impl Drop for Armed {
    fn drop(&mut self) {
        disarm();
    }
}

/// Ask whether `canary`'s mutation should fire at this hit. Counts the
/// hit and evaluates the armed trigger; `false` in one relaxed load when
/// nothing is armed (and always when a different canary is armed).
#[inline]
pub fn fire(canary: Canary) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    fire_slow(canary)
}

#[cold]
fn fire_slow(canary: Canary) -> bool {
    let i = canary.index();
    if ARMED.load(Ordering::SeqCst) != i as u64 + 1 {
        return false;
    }
    let hit = HITS[i].fetch_add(1, Ordering::SeqCst) + 1;
    let fires = match KIND.load(Ordering::SeqCst) {
        1 => {
            let p = VALUE.load(Ordering::SeqCst);
            let h = splitmix64(SEED.load(Ordering::SeqCst) ^ SITE_SALT[i] ^ hit);
            (h % 1000) < p.min(1000)
        }
        2 => hit == VALUE.load(Ordering::SeqCst).max(1),
        3 => hit.is_multiple_of(VALUE.load(Ordering::SeqCst).max(1)),
        _ => false,
    };
    if fires {
        FIRED[i].fetch_add(1, Ordering::SeqCst);
    }
    fires
}

/// `(hits, fired)` counters per canary since the last [`arm`].
pub fn site_stats() -> Vec<(Canary, u64, u64)> {
    Canary::ALL
        .into_iter()
        .map(|c| {
            let i = c.index();
            (c, HITS[i].load(Ordering::SeqCst), FIRED[i].load(Ordering::SeqCst))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    // The arming tables are process-global; serialize tests that touch
    // them (same discipline as the chaos tests).
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_never_fires() {
        let _g = GATE.lock();
        disarm();
        assert!(!fire(Canary::StmSkipWriteback));
        assert!(!is_armed());
    }

    #[test]
    fn only_the_armed_canary_fires() {
        let _g = GATE.lock();
        let _armed = scoped(Canary::LockDropRelease, 0, Trigger::EveryNth(1));
        assert!(fire(Canary::LockDropRelease));
        assert!(!fire(Canary::StmSkipWriteback), "a different site must stay silent");
        let stats = site_stats();
        let (_, hits, fired) = stats[Canary::LockDropRelease.index()];
        assert_eq!((hits, fired), (1, 1));
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _g = GATE.lock();
        let _armed = scoped(Canary::StmStaleStamp, 9, Trigger::Nth(3));
        let fires: Vec<bool> = (0..6).map(|_| fire(Canary::StmStaleStamp)).collect();
        assert_eq!(fires, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn per_mille_is_a_pure_function_of_seed_and_ordinal() {
        let _g = GATE.lock();
        let run = |seed| {
            let _armed = scoped(Canary::SchedOutOfTurn, seed, Trigger::PerMille(500));
            (0..64).map(|_| fire(Canary::SchedOutOfTurn)).collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7), "same seed, same firing ordinals");
        assert_ne!(run(7), run(8), "different seeds draw different coins");
    }

    #[test]
    fn names_round_trip() {
        for c in Canary::ALL {
            assert_eq!(Canary::parse(c.name()), Some(c));
            assert!(!c.site().is_empty());
        }
        assert_eq!(Canary::parse("nope"), None);
    }
}
