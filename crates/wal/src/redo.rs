//! The redo log: commit-marker protocol, recovery replay, compaction.

use std::collections::{BTreeMap, BTreeSet};
use txfix_stm::{StmResult, Txn};
use txfix_xcall::{SimFile, SimFs, XFile};

/// Which commit protocol the log uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalVariant {
    /// The correct protocol: records are synced *before* the commit
    /// marker is appended, so a durable marker implies durable records.
    Fixed,
    /// The FIRST reference-WAL bug (SNIPPETS §2): the commit marker is
    /// appended while the records are still only in the page cache. A
    /// crash between the marker write and the final sync can persist the
    /// marker without its records.
    CommitBeforeFsync,
}

impl WalVariant {
    /// Every variant, fixed protocol first.
    pub const ALL: [WalVariant; 2] = [WalVariant::Fixed, WalVariant::CommitBeforeFsync];

    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            WalVariant::Fixed => "fixed",
            WalVariant::CommitBeforeFsync => "commit_before_fsync",
        }
    }

    /// Inverse of [`name`](WalVariant::name).
    pub fn parse(s: &str) -> Option<WalVariant> {
        WalVariant::ALL.into_iter().find(|v| v.name() == s)
    }
}

/// The crash point planted between the commit-marker append and the final
/// sync — the exact window where [`WalVariant::CommitBeforeFsync`] loses
/// atomicity.
pub const AFTER_COMMIT_WRITE: &str = "wal_after_commit_write";

fn token_ok(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Whether `s` is a legal WAL token (`[A-Za-z0-9_]+`). Layers that store
/// user-facing keys/values in the log (the kvstore) validate against this
/// before accepting an operation.
pub fn is_token(s: &str) -> bool {
    token_ok(s)
}

/// One logical redo record inside a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// Set `key` to `value`.
    Put(String, String),
    /// Remove `key`.
    Delete(String),
}

/// A write-ahead redo log over a transactional file.
pub struct Wal {
    file: XFile,
    variant: WalVariant,
}

impl Wal {
    /// Open (or create) the log at `path` with the given protocol.
    pub fn open(fs: &SimFs, path: &str, variant: WalVariant) -> Wal {
        Wal { file: XFile::open_or_create(fs, path), variant }
    }

    /// The transactional handle to the log file.
    pub fn file(&self) -> &XFile {
        &self.file
    }

    /// The protocol in use.
    pub fn variant(&self) -> WalVariant {
        self.variant
    }

    /// Queue one logical transaction's records plus its commit marker as
    /// deferred operations of `txn`. If `txn` aborts, nothing reaches the
    /// log; if it commits, the protocol's appends and fsyncs are applied
    /// in order.
    ///
    /// Keys and values must be WAL tokens (`[A-Za-z0-9_]+`).
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts/preemption as [`Abort`](txfix_stm::Abort).
    pub fn x_log_txn(&self, txn: &mut Txn, txid: u64, puts: &[(String, String)]) -> StmResult<()> {
        let ops: Vec<WalOp> = puts.iter().map(|(k, v)| WalOp::Put(k.clone(), v.clone())).collect();
        self.x_log_ops(txn, txid, &ops)
    }

    /// Like [`x_log_txn`](Wal::x_log_txn), but accepts deletes as well as
    /// puts: `P txid k v ;` / `D txid k ;` records followed by the
    /// protocol's commit marker and syncs.
    pub fn x_log_ops(&self, txn: &mut Txn, txid: u64, ops: &[WalOp]) -> StmResult<()> {
        for op in ops {
            let line = match op {
                WalOp::Put(k, v) => {
                    debug_assert!(token_ok(k) && token_ok(v), "invalid WAL token in {k:?}={v:?}");
                    format!("P {txid} {k} {v} ;\n")
                }
                WalOp::Delete(k) => {
                    debug_assert!(token_ok(k), "invalid WAL token in {k:?}");
                    format!("D {txid} {k} ;\n")
                }
            };
            self.file.x_append(txn, line.as_bytes())?;
        }
        if self.variant == WalVariant::Fixed {
            // The protocol's load-bearing fsync: records must be durable
            // before the commit marker exists anywhere.
            self.file.x_sync(txn)?;
        }
        self.file.x_append(txn, format!("C {txid} ;\n").as_bytes())?;
        self.file.x_crash_point(txn, AFTER_COMMIT_WRITE)?;
        self.file.x_sync(txn)?;
        Ok(())
    }
}

/// What recovery reconstructed from a (possibly crash-torn) log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovery {
    /// The replayed map: puts of committed transactions, in txid order.
    pub map: BTreeMap<String, String>,
    /// Transaction ids with a durable, well-formed commit marker.
    pub committed: BTreeSet<u64>,
    /// Put records seen per transaction id, in log order (including
    /// transactions without a commit marker — the checker compares the
    /// committed ones against the workload oracle).
    pub records: BTreeMap<u64, Vec<(String, String)>>,
    /// Every well-formed record (puts *and* deletes) per transaction id,
    /// in log order — the replay source for delete-aware consumers.
    pub ops: BTreeMap<u64, Vec<WalOp>>,
    /// Non-empty lines that failed to parse — crash holes, torn tails.
    pub skipped_lines: usize,
    /// One past the highest txid seen in any well-formed record.
    pub next_txid: u64,
}

fn parse_line(line: &[u8], out: &mut Recovery) -> Option<()> {
    let text = std::str::from_utf8(line).ok()?;
    let tokens: Vec<&str> = text.split(' ').collect();
    match tokens.as_slice() {
        ["P", txid, key, value, ";"] if token_ok(key) && token_ok(value) => {
            let txid: u64 = txid.parse().ok()?;
            out.records.entry(txid).or_default().push(((*key).to_owned(), (*value).to_owned()));
            out.ops
                .entry(txid)
                .or_default()
                .push(WalOp::Put((*key).to_owned(), (*value).to_owned()));
            out.next_txid = out.next_txid.max(txid + 1);
        }
        ["D", txid, key, ";"] if token_ok(key) => {
            let txid: u64 = txid.parse().ok()?;
            out.ops.entry(txid).or_default().push(WalOp::Delete((*key).to_owned()));
            out.next_txid = out.next_txid.max(txid + 1);
        }
        ["C", txid, ";"] => {
            let txid: u64 = txid.parse().ok()?;
            out.committed.insert(txid);
            out.next_txid = out.next_txid.max(txid + 1);
        }
        _ => return None,
    }
    Some(())
}

fn recover_bytes(bytes: &[u8]) -> Recovery {
    let mut rec = Recovery { next_txid: 1, ..Recovery::default() };
    for line in bytes.split(|&b| b == b'\n') {
        if line.is_empty() {
            continue;
        }
        if parse_line(line, &mut rec).is_none() {
            rec.skipped_lines += 1;
        }
    }
    for txid in &rec.committed {
        if let Some(ops) = rec.ops.get(txid) {
            for op in ops {
                match op {
                    WalOp::Put(k, v) => {
                        rec.map.insert(k.clone(), v.clone());
                    }
                    WalOp::Delete(k) => {
                        rec.map.remove(k);
                    }
                }
            }
        }
    }
    rec
}

/// Replay the log's current (post-crash) contents: apply the puts of
/// every transaction whose commit marker survived, in txid order, and
/// skip unparseable lines.
pub fn recover(file: &SimFile) -> Recovery {
    recover_bytes(&file.read_all())
}

/// [`recover`], then rewrite the log as one compacted snapshot
/// transaction (under the highest committed txid) and sync it. Running
/// it again recovers the same map from the compacted log — the
/// idempotence the proptests pin.
pub fn recover_and_compact(file: &SimFile) -> Recovery {
    let rec = recover_bytes(&file.read_all());
    let mut compact = String::new();
    if let Some(&txid) = rec.committed.iter().max() {
        for (k, v) in &rec.map {
            compact.push_str(&format!("P {txid} {k} {v} ;\n"));
        }
        compact.push_str(&format!("C {txid} ;\n"));
    }
    file.truncate(0);
    file.append(compact.as_bytes());
    file.sync_all();
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use txfix_stm::atomic;

    fn log_one(wal: &Wal, txid: u64, puts: &[(&str, &str)]) {
        let puts: Vec<(String, String)> =
            puts.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect();
        atomic(|txn| wal.x_log_txn(txn, txid, &puts));
    }

    #[test]
    fn committed_transactions_replay_in_txid_order() {
        let fs = SimFs::new();
        let wal = Wal::open(&fs, "wal", WalVariant::Fixed);
        log_one(&wal, 1, &[("k", "old"), ("a", "a1")]);
        log_one(&wal, 2, &[("k", "new")]);
        let rec = recover(wal.file().file());
        assert_eq!(rec.committed.len(), 2);
        assert_eq!(rec.map.get("k").map(String::as_str), Some("new"));
        assert_eq!(rec.map.get("a").map(String::as_str), Some("a1"));
        assert_eq!(rec.skipped_lines, 0);
        assert_eq!(rec.next_txid, 3);
    }

    #[test]
    fn deletes_replay_in_txid_order_and_uncommitted_deletes_are_ignored() {
        let fs = SimFs::new();
        let wal = Wal::open(&fs, "wal", WalVariant::Fixed);
        log_one(&wal, 1, &[("a", "a1"), ("b", "b1")]);
        atomic(|txn| {
            wal.x_log_ops(
                txn,
                2,
                &[WalOp::Delete("a".to_owned()), WalOp::Put("c".to_owned(), "c2".to_owned())],
            )
        });
        // Uncommitted delete of `b`, as a crash mid-protocol would leave.
        wal.file().file().append(b"D 3 b ;\n");
        let rec = recover(wal.file().file());
        assert_eq!(rec.committed, BTreeSet::from([1, 2]));
        assert!(!rec.map.contains_key("a"), "committed delete must replay");
        assert_eq!(rec.map.get("b").map(String::as_str), Some("b1"));
        assert_eq!(rec.map.get("c").map(String::as_str), Some("c2"));
        assert_eq!(rec.next_txid, 4);
        assert_eq!(
            rec.ops[&2],
            vec![WalOp::Delete("a".to_owned()), WalOp::Put("c".to_owned(), "c2".to_owned())]
        );
    }

    #[test]
    fn records_without_commit_marker_are_not_applied() {
        let fs = SimFs::new();
        let wal = Wal::open(&fs, "wal", WalVariant::Fixed);
        log_one(&wal, 1, &[("a", "a1")]);
        // Hand-write an uncommitted record, as a crash mid-protocol would
        // leave behind.
        wal.file().file().append(b"P 2 b b2 ;\n");
        let rec = recover(wal.file().file());
        assert_eq!(rec.committed, BTreeSet::from([1]));
        assert!(!rec.map.contains_key("b"));
        assert_eq!(rec.records[&2], vec![("b".to_owned(), "b2".to_owned())]);
    }

    #[test]
    fn torn_and_garbage_lines_are_skipped_not_misparsed() {
        let fs = SimFs::new();
        let f = fs.open_or_create("wal");
        f.append(b"P 1 a a1 ;\nC 1 ;\n");
        f.append(b"P 2 b b2"); // torn tail: no terminator, no newline
        let rec = recover(&f);
        assert_eq!(rec.map.len(), 1);
        assert_eq!(rec.skipped_lines, 1);
        // A crash hole (zero bytes) can never be a valid record either.
        let g = fs.open_or_create("wal2");
        g.append(b"C 9 ;\n");
        g.append(&[0u8; 16]);
        g.append(b"\nP 9 x x9 ;\n");
        let rec = recover(&g);
        assert_eq!(rec.committed, BTreeSet::from([9]));
        assert_eq!(rec.skipped_lines, 1);
    }

    #[test]
    fn compaction_preserves_the_map_and_is_idempotent() {
        let fs = SimFs::new();
        let wal = Wal::open(&fs, "wal", WalVariant::Fixed);
        log_one(&wal, 1, &[("a", "a1"), ("b", "b1")]);
        log_one(&wal, 2, &[("a", "a2")]);
        wal.file().file().append(b"P 3 c c3 ;\n"); // uncommitted tail
        let first = recover_and_compact(wal.file().file());
        let bytes1 = wal.file().file().read_all();
        let second = recover_and_compact(wal.file().file());
        let bytes2 = wal.file().file().read_all();
        assert_eq!(first.map, second.map);
        assert_eq!(bytes1, bytes2, "recovering a compacted log is a fixpoint");
        assert_eq!(second.skipped_lines, 0);
        assert_eq!(wal.file().file().durable_snapshot(), bytes2, "compaction syncs its rewrite");
        // The empty log compacts to the empty log.
        let empty = fs.open_or_create("none");
        recover_and_compact(&empty);
        assert!(empty.read_all().is_empty());
    }

    #[test]
    fn buggy_variant_orders_commit_marker_before_record_sync() {
        // White-box: drive both protocols and compare the durable image
        // at the planted crash point by arming it. Covered end-to-end by
        // the checker; here we just pin the op order difference.
        let fs = SimFs::new();
        let fixed = Wal::open(&fs, "f", WalVariant::Fixed);
        let buggy = Wal::open(&fs, "b", WalVariant::CommitBeforeFsync);
        log_one(&fixed, 1, &[("k", "v1")]);
        log_one(&buggy, 1, &[("k", "v1")]);
        assert_eq!(fixed.file().file().read_all(), buggy.file().file().read_all());
        assert_eq!(fixed.variant(), WalVariant::Fixed);
        assert_eq!(buggy.variant(), WalVariant::CommitBeforeFsync);
    }
}
