//! Regression tests for the crash boundary: compensations and pending
//! undo state queued at crash time must not replay into the post-crash
//! image. Before the freeze model, an abort racing a crash would push
//! consumed pipe bytes back (`SimPipe::unread`) and re-apply undo
//! effects *after* the crash instant — state no real dead process could
//! have produced.
//!
//! The crash-point registry is process-global; tests serialize on GATE.

use std::sync::Mutex;
use txfix_stm::chaos::Trigger;
use txfix_stm::{Txn, TxnError};
use txfix_xcall::{crashpoint, SimFs, SimPipe, XFile, XPipe};

static GATE: Mutex<()> = Mutex::new(());

#[test]
fn pipe_unread_compensation_does_not_replay_into_the_crash_image() {
    let _g = GATE.lock().unwrap();
    let pipe = SimPipe::new(16);
    pipe.write(b"abcd").unwrap();
    let xp = XPipe::new(pipe.clone());
    let session = crashpoint::arm("crash_freeze_test", 0, Trigger::Nth(1));
    let res = Txn::build().try_run(|txn| {
        let got = xp.x_try_read(txn, 2)?;
        assert_eq!(got.as_deref(), Some(b"ab".as_slice()));
        // The crash lands after the consuming read, before the abort.
        crashpoint::crash_point("crash_freeze_test");
        txn.cancel::<()>()
    });
    assert!(matches!(res, Err(TxnError::Cancelled)));
    assert!(crashpoint::is_frozen(), "the armed point must have fired");
    // The abort ran its compensation, but the world was already frozen:
    // the two consumed bytes stay consumed. Without the freeze, the
    // unread would resurrect them — 4 buffered instead of 2.
    assert_eq!(pipe.buffered(), 2, "compensation must not leak across the crash boundary");
    // And the crash itself wipes the (volatile) pipe buffer entirely.
    pipe.crash();
    assert_eq!(pipe.buffered(), 0);
    drop(session);
}

#[test]
fn commit_interrupted_by_a_crash_applies_no_op_after_the_freeze() {
    let _g = GATE.lock().unwrap();
    let fs = SimFs::new();
    let xf = XFile::open_or_create(&fs, "f");
    // Fire at the second simos-level append: the first deferred op lands,
    // the second freezes the world at its crash point, the third is dead.
    let session = crashpoint::arm("simos_file_append", 0, Trigger::Nth(2));
    let xf2 = xf.clone();
    txfix_stm::atomic(move |txn| {
        xf2.x_append(txn, b"one ")?;
        xf2.x_append(txn, b"two ")?;
        xf2.x_append(txn, b"three")
    });
    assert_eq!(xf.file().read_all(), b"one ", "nothing after the crash instant may land");
    // In-memory bookkeeping is not durable state: the pending buffer and
    // ownership stamp are still released (no leak into the next txn).
    assert_eq!(xf.file().durable_snapshot(), b"", "nothing was ever synced");
    drop(session);
    assert_eq!(xf.pending_snapshot(), Some((0, 0)));
}

#[test]
fn aborted_truncate_compensation_is_frozen_too() {
    let _g = GATE.lock().unwrap();
    let fs = SimFs::new();
    let f = fs.open_or_create("t");
    f.append(b"keep-me!");
    f.sync_all();
    let session = crashpoint::arm("crash_freeze_test", 0, Trigger::Nth(1));
    crashpoint::crash_point("crash_freeze_test");
    assert!(crashpoint::is_frozen());
    // A compensating truncate issued after the crash instant is dead.
    f.truncate(0);
    assert_eq!(f.read_all(), b"keep-me!");
    fs.crash(3);
    assert_eq!(f.read_all(), b"keep-me!", "the synced image survives any seed");
    drop(session);
}
