//! Lock-acquisition errors.

use std::error::Error;
use std::fmt;

/// An unresolvable deadlock: the wait-for graph contains a cycle and no
/// participant is an abortable transaction that could be preempted.
///
/// This is what the *buggy* variants of the corpus scenarios report: the
/// detector sees the circular wait that would hang a production system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockError {
    /// Human-readable description of the cycle, e.g.
    /// `["thread#1 -> lock \"a\"", "thread#2 -> lock \"b\""]`.
    pub cycle: Vec<String>,
}

impl fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadlock detected: {}", self.cycle.join(" ; "))
    }
}

impl Error for DeadlockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_joins_cycle() {
        let e = DeadlockError { cycle: vec!["a".into(), "b".into()] };
        assert_eq!(e.to_string(), "deadlock detected: a ; b");
    }
}
