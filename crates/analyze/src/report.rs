//! Findings and machine-readable reports.
//!
//! The workspace has no serde (the build environment vendors only a
//! handful of stand-in crates), so the JSON encoding here is hand-rolled:
//! [`Report::to_json`] emits a stable object layout and
//! [`Report::from_json`] parses it back with a minimal recursive-descent
//! JSON reader. Round-tripping is covered by tests.

use std::collections::BTreeMap;
use std::fmt;
use txfix_core::Recipe;
use txfix_corpus::Outcome;

/// What kind of bug a finding reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// Two unordered conflicting accesses, at least one non-atomic.
    DataRace {
        /// Diagnostic name of the racing object.
        object: String,
    },
    /// A cycle in the region conflict graph: the interleaving is not
    /// conflict-serializable.
    AtomicityViolation {
        /// Names of the objects whose conflicts form the cycle.
        objects: Vec<String>,
    },
    /// Two locks acquired in both orders (potential deadlock).
    LockOrderInversion {
        /// Name of one lock of the inverted pair (sorted).
        first: String,
        /// Name of the other lock.
        second: String,
    },
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingKind::DataRace { object } => write!(f, "data race on {object}"),
            FindingKind::AtomicityViolation { objects } => {
                write!(f, "atomicity violation across {}", objects.join(", "))
            }
            FindingKind::LockOrderInversion { first, second } => {
                write!(f, "lock-order inversion between \"{first}\" and \"{second}\"")
            }
        }
    }
}

/// One detected bug, with the recipe the paper's decision procedure
/// suggests for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// What was detected.
    pub kind: FindingKind,
    /// The suggested TM fix recipe (from `txfix_core::analysis::analyze`
    /// on the scenario's bug record), when the bug is TM-fixable.
    pub recipe: Option<Recipe>,
    /// Human-readable account of the finding and the suggested fix.
    pub explanation: String,
}

/// The result of analyzing one scenario run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// The scenario key.
    pub scenario: String,
    /// Which variant ran (`buggy`, `dev`, `tm`).
    pub variant: String,
    /// What the run itself observed.
    pub outcome: Outcome,
    /// How many events the recorder captured.
    pub events: usize,
    /// Everything the analysis passes detected.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Whether the analysis found anything.
    pub fn has_findings(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_field(&mut s, "scenario", &json_string(&self.scenario));
        push_field(&mut s, "variant", &json_string(&self.variant));
        let outcome = match &self.outcome {
            Outcome::Correct => r#"{"kind":"correct"}"#.to_string(),
            Outcome::BugObserved(detail) => {
                format!(r#"{{"kind":"bug_observed","detail":{}}}"#, json_string(detail))
            }
        };
        push_field(&mut s, "outcome", &outcome);
        push_field(&mut s, "events", &self.events.to_string());
        let findings: Vec<String> = self.findings.iter().map(finding_to_json).collect();
        push_field(&mut s, "findings", &format!("[{}]", findings.join(",")));
        s.push('}');
        s
    }

    /// Parse a report back from [`Report::to_json`] output.
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct.
    pub fn from_json(input: &str) -> Result<Report, String> {
        let v = Json::parse(input)?;
        let obj = v.object("report")?;
        let outcome_obj = get(obj, "outcome")?.object("outcome")?;
        let outcome = match get(outcome_obj, "kind")?.string("outcome.kind")?.as_str() {
            "correct" => Outcome::Correct,
            "bug_observed" => {
                Outcome::BugObserved(get(outcome_obj, "detail")?.string("outcome.detail")?)
            }
            other => return Err(format!("unknown outcome kind {other:?}")),
        };
        let findings = get(obj, "findings")?
            .array("findings")?
            .iter()
            .map(finding_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Report {
            scenario: get(obj, "scenario")?.string("scenario")?,
            variant: get(obj, "variant")?.string("variant")?,
            outcome,
            events: get(obj, "events")?.number("events")? as usize,
            findings,
        })
    }
}

fn finding_to_json(f: &Finding) -> String {
    let mut s = String::from("{");
    let kind = match &f.kind {
        FindingKind::DataRace { object } => {
            format!(r#"{{"kind":"data_race","object":{}}}"#, json_string(object))
        }
        FindingKind::AtomicityViolation { objects } => {
            let items: Vec<String> = objects.iter().map(|o| json_string(o)).collect();
            format!(r#"{{"kind":"atomicity_violation","objects":[{}]}}"#, items.join(","))
        }
        FindingKind::LockOrderInversion { first, second } => format!(
            r#"{{"kind":"lock_order_inversion","first":{},"second":{}}}"#,
            json_string(first),
            json_string(second)
        ),
    };
    push_field(&mut s, "bug", &kind);
    let recipe = match f.recipe {
        Some(r) => json_string(recipe_slug(r)),
        None => "null".to_string(),
    };
    push_field(&mut s, "recipe", &recipe);
    push_field(&mut s, "explanation", &json_string(&f.explanation));
    s.push('}');
    s
}

fn finding_from_json(v: &Json) -> Result<Finding, String> {
    let obj = v.object("finding")?;
    let bug = get(obj, "bug")?.object("finding.bug")?;
    let kind = match get(bug, "kind")?.string("bug.kind")?.as_str() {
        "data_race" => FindingKind::DataRace { object: get(bug, "object")?.string("object")? },
        "atomicity_violation" => FindingKind::AtomicityViolation {
            objects: get(bug, "objects")?
                .array("objects")?
                .iter()
                .map(|o| o.string("objects[]"))
                .collect::<Result<Vec<_>, _>>()?,
        },
        "lock_order_inversion" => FindingKind::LockOrderInversion {
            first: get(bug, "first")?.string("first")?,
            second: get(bug, "second")?.string("second")?,
        },
        other => return Err(format!("unknown finding kind {other:?}")),
    };
    let recipe = match get(obj, "recipe")? {
        Json::Null => None,
        v => Some(recipe_from_slug(&v.string("recipe")?)?),
    };
    Ok(Finding { kind, recipe, explanation: get(obj, "explanation")?.string("explanation")? })
}

fn recipe_slug(r: Recipe) -> &'static str {
    match r {
        Recipe::ReplaceLocks => "replace-locks",
        Recipe::WrapAll => "wrap-all",
        Recipe::DeadlockPreemption => "deadlock-preemption",
        Recipe::WrapUnprotected => "wrap-unprotected",
    }
}

fn recipe_from_slug(s: &str) -> Result<Recipe, String> {
    match s {
        "replace-locks" => Ok(Recipe::ReplaceLocks),
        "wrap-all" => Ok(Recipe::WrapAll),
        "deadlock-preemption" => Ok(Recipe::DeadlockPreemption),
        "wrap-unprotected" => Ok(Recipe::WrapUnprotected),
        other => Err(format!("unknown recipe {other:?}")),
    }
}

fn push_field(s: &mut String, key: &str, value: &str) {
    if !s.ends_with('{') {
        s.push(',');
    }
    s.push_str(&json_string(key));
    s.push(':');
    s.push_str(value);
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (the minimal subset the report layout uses).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

impl Json {
    fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { chars: input.chars().collect(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at {}", p.pos));
        }
        Ok(v)
    }

    fn object(&self, what: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Object(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn string(&self, what: &str) -> Result<String, String> {
        match self {
            Json::String(s) => Ok(s.clone()),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    fn number(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Number(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected {c:?} at {}, got {got:?}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for expected in word.chars() {
            if self.bump() != Some(expected) {
                return Err(format!("malformed literal near {}", self.pos));
            }
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object_value(),
            Some('[') => self.array_value(),
            Some('"') => Ok(Json::String(self.string_value()?)),
            Some('t') => self.keyword("true", Json::Bool(true)),
            Some('f') => self.keyword("false", Json::Bool(false)),
            Some('n') => self.keyword("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number_value(),
            other => Err(format!("unexpected {other:?} at {}", self.pos)),
        }
    }

    fn object_value(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string_value()?;
            self.expect(':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Object(map)),
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
    }

    fn array_value(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Array(items)),
                got => return Err(format!("expected ',' or ']', got {got:?}")),
            }
        }
    }

    fn string_value(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("malformed \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    got => return Err(format!("unknown escape {got:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number_value(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Json::Number).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            scenario: "av_wrong_lock".into(),
            variant: "buggy".into(),
            outcome: Outcome::BugObserved("lost update: counter is 1 \"quoted\"\n".into()),
            events: 42,
            findings: vec![
                Finding {
                    kind: FindingKind::DataRace { object: "m133773.counter".into() },
                    recipe: Some(Recipe::WrapAll),
                    explanation: "unordered conflicting accesses".into(),
                },
                Finding {
                    kind: FindingKind::AtomicityViolation { objects: vec!["a".into(), "b".into()] },
                    recipe: Some(Recipe::WrapUnprotected),
                    explanation: "non-serializable interleaving".into(),
                },
                Finding {
                    kind: FindingKind::LockOrderInversion {
                        first: "cache".into(),
                        second: "atoms".into(),
                    },
                    recipe: None,
                    explanation: "both orders observed".into(),
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let parsed = Report::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
    }

    #[test]
    fn correct_outcome_round_trips() {
        let r = Report {
            scenario: "x".into(),
            variant: "tm".into(),
            outcome: Outcome::Correct,
            events: 0,
            findings: vec![],
        };
        let parsed = Report::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed, r);
        assert!(!parsed.has_findings());
    }

    #[test]
    fn every_recipe_round_trips() {
        for recipe in [
            Recipe::ReplaceLocks,
            Recipe::WrapAll,
            Recipe::DeadlockPreemption,
            Recipe::WrapUnprotected,
        ] {
            assert_eq!(recipe_from_slug(recipe_slug(recipe)), Ok(recipe));
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Report::from_json("{").is_err());
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json(r#"{"scenario": 3}"#).is_err());
        let valid = sample_report().to_json();
        assert!(Report::from_json(&format!("{valid}x")).is_err(), "trailing garbage");
    }

    #[test]
    fn json_escapes_are_emitted_and_parsed() {
        let s = json_string("a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let v = Json::parse(&s).unwrap();
        assert_eq!(v, Json::String("a\"b\\c\nd\u{1}".into()));
    }
}
