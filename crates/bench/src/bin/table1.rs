//! Regenerate Table 1: concurrency bugs that TM can fix.

fn main() {
    let bugs = txfix_corpus::all_bugs();
    print!("{}", txfix_core::table1(&bugs));
    let s = txfix_core::CorpusSummary::compute(&bugs);
    println!(
        "\nTM can fix {} of {} bugs ({:.0}%); {} judged simpler than the developers' fix ({:.0}%).",
        s.fixable(),
        s.total,
        100.0 * s.fixable() as f64 / s.total as f64,
        s.tm_preferred,
        100.0 * s.tm_preferred as f64 / s.total as f64,
    );
}
