//! Apache-I: the listener/worker timeout-queue deadlock (paper §5.4.2,
//! Figure 3).
//!
//! The listener pops timed-out connections from a list protected by the
//! *timeout mutex* and hands each to an idle worker. To keep the
//! pop-and-handoff atomic, the buggy listener **holds the timeout mutex
//! while waiting** for a worker to become idle; a worker finishing a
//! request must acquire that same mutex (to update connection accounting)
//! *before* announcing itself idle — a lock/wait cycle.
//!
//! - Developers' fix: release the timeout mutex before waiting, with
//!   compensation code re-validating state after re-acquisition (took
//!   three failed attempts upstream).
//! - TM fix (Recipe 3): the listener acquires the timeout mutex
//!   *revocably* inside a transaction and replaces the condition wait with
//!   a blocking `retry`: finding no idle worker aborts the transaction —
//!   releasing the mutex — and re-executes when a worker registers.

use crossbeam::channel;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};
use txfix_core::{preemptible, PreemptOptions};
use txfix_stm::TVar;
use txfix_tmsync::guard;
use txfix_txlock::{LockCondvar, TxMutex, WaitOutcome};

/// Which implementation of the listener/worker protocol runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Apache1Variant {
    /// As shipped: wait while holding the timeout mutex (deadlocks).
    Buggy,
    /// Release the mutex before waiting + compensation.
    DevFix,
    /// Recipe 3: revocable mutex + retry.
    TmFix,
}

/// One simulated connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conn {
    /// Connection id.
    pub id: u32,
}

/// Workload/server parameters.
#[derive(Clone, Copy, Debug)]
pub struct Apache1Config {
    /// Protocol variant.
    pub variant: Apache1Variant,
    /// Worker threads.
    pub workers: usize,
    /// Connections to dispatch.
    pub connections: u32,
    /// Simulated per-request processing cost (busy-wait).
    pub process_cost: Duration,
    /// How long the buggy listener waits before declaring deadlock.
    pub deadlock_timeout: Duration,
}

impl Default for Apache1Config {
    fn default() -> Self {
        Apache1Config {
            variant: Apache1Variant::DevFix,
            workers: 4,
            connections: 200,
            process_cost: Duration::from_micros(30),
            deadlock_timeout: Duration::from_millis(150),
        }
    }
}

/// Result of driving the server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Apache1Outcome {
    /// Connections fully processed by workers.
    pub completed: u32,
    /// Whether the run hit the lock/wait deadlock (buggy variant only).
    pub deadlocked: bool,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

struct Shared {
    /// The timeout mutex and the connection accounting it protects
    /// (number of connections whose timeout bookkeeping was updated).
    timeout: TxMutex<u64>,
    /// Timed-out connections awaiting dispatch (listener-owned queue).
    queue: parking_lot::Mutex<VecDeque<Conn>>,
    /// Idle workers — lock+condvar flavor (buggy / dev fix).
    idle: TxMutex<usize>,
    idle_cv: LockCondvar,
    /// Idle workers — transactional flavor (TM fix).
    idle_tv: TVar<usize>,
}

fn busy_wait(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// Drive a listener plus `cfg.workers` workers until all connections are
/// processed or (buggy variant) deadlock is detected.
pub fn run_apache1(cfg: &Apache1Config) -> Apache1Outcome {
    let shared = Arc::new(Shared {
        timeout: TxMutex::new("apache1.timeout_mutex", 0),
        queue: parking_lot::Mutex::new((0..cfg.connections).map(|id| Conn { id }).collect()),
        idle: TxMutex::new("apache1.idle_workers", cfg.workers),
        idle_cv: LockCondvar::named("apache1.idle_cv"),
        idle_tv: TVar::new(cfg.workers),
    });
    let (tx, rx) = channel::unbounded::<Conn>();
    let (done_tx, done_rx) = channel::unbounded::<u32>();
    let start = Instant::now();
    let mut deadlocked = false;

    std::thread::scope(|s| {
        // Workers.
        for _ in 0..cfg.workers {
            let shared = shared.clone();
            let rx = rx.clone();
            let done_tx = done_tx.clone();
            let cfg = *cfg;
            s.spawn(move || {
                while let Ok(conn) = rx.recv() {
                    busy_wait(cfg.process_cost);
                    // Finish the request: update connection accounting
                    // under the timeout mutex, THEN announce availability.
                    // This ordering is what completes the deadlock cycle.
                    match cfg.variant {
                        Apache1Variant::Buggy | Apache1Variant::DevFix => {
                            let mut tg = shared.timeout.lock().expect("timeout mutex cycle");
                            *tg += 1;
                            drop(tg);
                            let mut ig = shared.idle.lock().expect("idle mutex cycle");
                            *ig += 1;
                            drop(ig);
                            shared.idle_cv.notify_all();
                        }
                        Apache1Variant::TmFix => {
                            // Workers stay lock-based (Recipe 3 is
                            // asymmetric): plain mutex, then bump the
                            // transactional idle count (serialized by the
                            // mutex, visible to the listener's retry).
                            let mut tg = shared.timeout.lock().expect("timeout mutex cycle");
                            *tg += 1;
                            shared.idle_tv.store(shared.idle_tv.load() + 1);
                            drop(tg);
                        }
                    }
                    let _ = done_tx.send(conn.id);
                }
            });
        }
        drop(done_tx);

        // Listener.
        let mut dispatched = 0u32;
        'outer: while dispatched < cfg.connections {
            match cfg.variant {
                Apache1Variant::Buggy => {
                    // Hold the timeout mutex across the wait (the bug).
                    let tg = shared.timeout.lock().expect("timeout mutex cycle");
                    let conn = shared.queue.lock().pop_front().expect("queue underflow");
                    let mut ig = shared.idle.lock().expect("idle mutex cycle");
                    let wait_start = Instant::now();
                    while *ig == 0 {
                        let (g2, outcome) = shared
                            .idle_cv
                            .wait_timeout(ig, Duration::from_millis(20))
                            .expect("idle cv reacquire");
                        ig = g2;
                        if *ig == 0
                            && outcome == WaitOutcome::TimedOut
                            && wait_start.elapsed() >= cfg.deadlock_timeout
                        {
                            // Workers are stuck behind the timeout mutex we
                            // hold: the circular wait is complete.
                            deadlocked = true;
                            shared.queue.lock().push_front(conn);
                            drop(ig);
                            drop(tg);
                            break 'outer;
                        }
                    }
                    *ig -= 1;
                    drop(ig);
                    tx.send(conn).expect("workers alive");
                    drop(tg);
                    dispatched += 1;
                }
                Apache1Variant::DevFix => {
                    // Fix: pop under the mutex, then RELEASE it before
                    // waiting; compensate by re-acquiring afterwards to
                    // redo the accounting atomicity the unlock broke.
                    let tg = shared.timeout.lock().expect("timeout mutex cycle");
                    let conn = shared.queue.lock().pop_front().expect("queue underflow");
                    drop(tg);

                    let mut ig = shared.idle.lock().expect("idle mutex cycle");
                    while *ig == 0 {
                        let (g2, _) = shared
                            .idle_cv
                            .wait_timeout(ig, Duration::from_millis(20))
                            .expect("idle cv reacquire");
                        ig = g2;
                    }
                    *ig -= 1;
                    drop(ig);

                    // Compensation: re-validate under the mutex before the
                    // handoff (upstream this took three attempts to get
                    // right).
                    let tg = shared.timeout.lock().expect("timeout mutex cycle");
                    tx.send(conn).expect("workers alive");
                    drop(tg);
                    dispatched += 1;
                }
                Apache1Variant::TmFix => {
                    // Recipe 3: revocable mutex + retry instead of the
                    // condition wait. Finding no idle worker aborts the
                    // transaction (releasing the mutex!) and re-executes
                    // when `idle_tv` changes.
                    let conn = preemptible(&PreemptOptions::default(), |txn| {
                        shared.timeout.lock_tx(txn)?;
                        let idle = shared.idle_tv.read(txn)?;
                        guard(txn, idle > 0)?;
                        shared.idle_tv.write(txn, idle - 1)?;
                        // All abort points passed; now the non-isolated pop.
                        Ok(shared.queue.lock().pop_front().expect("queue underflow"))
                    })
                    .expect("preemptible listener cannot fail terminally");
                    tx.send(conn).expect("workers alive");
                    dispatched += 1;
                }
            }
        }
        drop(tx); // workers drain and exit
        let mut completed = 0;
        while done_rx.recv().is_ok() {
            completed += 1;
        }
        let elapsed = start.elapsed();
        Apache1Outcome { completed, deadlocked, elapsed }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buggy_listener_deadlocks() {
        let out = run_apache1(&Apache1Config {
            variant: Apache1Variant::Buggy,
            workers: 3,
            connections: 100,
            ..Default::default()
        });
        assert!(out.deadlocked, "expected the lock/wait deadlock");
        assert!(out.completed < 100);
    }

    #[test]
    fn dev_fix_completes_all_connections() {
        let out = run_apache1(&Apache1Config {
            variant: Apache1Variant::DevFix,
            workers: 3,
            connections: 150,
            ..Default::default()
        });
        assert!(!out.deadlocked);
        assert_eq!(out.completed, 150);
    }

    #[test]
    fn tm_fix_completes_all_connections() {
        let out = run_apache1(&Apache1Config {
            variant: Apache1Variant::TmFix,
            workers: 3,
            connections: 150,
            ..Default::default()
        });
        assert!(!out.deadlocked);
        assert_eq!(out.completed, 150);
    }

    #[test]
    fn tm_fix_survives_single_worker_saturation() {
        // One worker maximizes listener blocking: every dispatch must wait
        // for the previous request to finish.
        let out = run_apache1(&Apache1Config {
            variant: Apache1Variant::TmFix,
            workers: 1,
            connections: 60,
            ..Default::default()
        });
        assert_eq!(out.completed, 60);
    }
}
