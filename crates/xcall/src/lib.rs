//! # txfix-xcall: transactional system calls over a simulated OS
//!
//! Reproduction of the **xCalls** mechanism (paper §4.1/§5.1, citing
//! Volos et al., reference 54 of the paper): "a library-based implementation of transactional
//! semantics for common system calls. The xCall library defers until
//! commit time those system calls that can be delayed. When that is not
//! possible, system calls are executed as part of the transaction and
//! their side effects are reversed on abort. xCalls reverts to inevitable
//! transactions for system calls that are not reversible."
//!
//! Because this reproduction has no kernel to wrap (see DESIGN.md), the
//! crate ships its own miniature OS — [`SimFs`]/[`SimFile`] files,
//! [`SimPipe`] bounded pipes and [`SimSocket`] loopback sockets — and
//! layers the three xCall strategies on top:
//!
//! | strategy | API | used for |
//! |---|---|---|
//! | defer to commit | [`XFile::x_append`], [`XPipe::x_write`], [`XSocket::x_send`] | log writes, responses |
//! | compensate on abort | [`XPipe::x_read`], [`XSocket::x_recv`] | consuming reads |
//! | inevitable | [`x_inevitable`] | irreversible calls (`ioctl`-class) |
//!
//! Transactions touching the same file are isolated until commit by a
//! revocable per-file lock, so deferred writes from different transactions
//! never interleave — the property the Apache-II buffered-log fix (Recipe
//! 2 + xCalls, §5.4.3) depends on.

//! As an **extension** beyond the paper's implementation, [`AsyncIo`]
//! provides the commit-time asynchronous I/O with completion callbacks
//! that §5.3.2 identifies as the missing piece for long-latency-callback
//! bugs like Mozilla#19421.

#![warn(missing_docs)]

mod asyncio;
pub mod crashpoint;
mod file;
mod pipe;
mod simos;

pub use asyncio::AsyncIo;
pub use crashpoint::crash_point;
pub use file::XFile;
pub use pipe::{x_inevitable, XPipe, XSocket};
pub use simos::{OsError, SimFile, SimFs, SimPipe, SimSocket, BLOCK_BYTES};
