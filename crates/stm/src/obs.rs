//! Per-site runtime observability: the metrics layer behind `txfix stress`.
//!
//! Process-global [`stats`](crate::stats) counters answer "how much did the
//! whole runtime do"; this module answers "*which* atomic block paid for
//! it". Every transaction can carry a [`SiteId`] — a static label interned
//! once per call site (`Txn::build().site("apache_i")`) — and the runtime
//! attributes commits, aborts split by cause, attempt and latency
//! histograms, backoff time, irrevocable entries, revocable-lock traffic
//! and x-call counts to that site. A global registry holds one fixed slot
//! of atomics per site, so recording is lock-free; [`snapshot`] copies the
//! registry into a plain [`ObsSnapshot`] with counter-wise
//! [`delta`](ObsSnapshot::delta) semantics, the same discipline
//! [`StatsSnapshot`](crate::StatsSnapshot) uses.
//!
//! ## Cost when disabled
//!
//! The layer is **off by default** and follows the `trace::sink` contract:
//! every hook begins with a single relaxed load of the global enable flag
//! and returns immediately when it is clear. No timestamps are taken, no
//! thread-locals touched, no buckets computed. The `stm_overhead` criterion
//! bench keeps this honest (within 5% of the pre-metrics baseline).
//!
//! ## Histograms
//!
//! Attempt counts and commit latencies are recorded into fixed log₂-bucket
//! histograms: value `v` lands in the bucket of its bit length, so bucket
//! `i` covers `[2^(i-1), 2^i)` (bucket 0 holds zero). Percentiles
//! ([`HistogramSnapshot::percentile`]) are estimated as the midpoint of the
//! bucket containing the requested rank — exact enough to separate a 2 µs
//! commit from a 2 ms one, which is what the stress driver needs.

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::error::ConflictKind;
use crate::tvar::VarId;

/// Number of per-site slots in the static registry. Interning more sites
/// than this folds the excess into the unattributed slot 0 (no panic, no
/// allocation on the hot path).
pub const MAX_SITES: usize = 64;

/// Number of log₂ buckets in each histogram. Bucket `i` covers values of
/// bit length `i`, so 64 buckets cover the full `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// Identity of one static transaction call site.
///
/// Obtained from [`intern`]; `SiteId::UNATTRIBUTED` (slot 0) is the
/// default for transactions built without [`site`](crate::TxnBuilder::site).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub(crate) u32);

impl SiteId {
    /// The catch-all site for transactions without an explicit label.
    pub const UNATTRIBUTED: SiteId = SiteId(0);

    /// The registry slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Intern `name`, returning the same [`SiteId`] for the same name every
/// time. Names are expected to be static string literals at `atomic` call
/// sites; interning takes a registry lock and is not meant for hot paths —
/// do it once and store the id (the builder does this on `.site(..)`).
pub fn intern(name: &'static str) -> SiteId {
    let mut names = NAMES.lock();
    ensure_slot0(&mut names);
    if let Some(i) = names.iter().position(|n| *n == name) {
        return SiteId(i as u32);
    }
    if names.len() >= MAX_SITES {
        return SiteId::UNATTRIBUTED;
    }
    names.push(name);
    SiteId((names.len() - 1) as u32)
}

fn ensure_slot0(names: &mut Vec<&'static str>) {
    if names.is_empty() {
        names.push("(unattributed)");
    }
}

/// The registered name of `site` (`"(unattributed)"` for slot 0).
pub fn site_name(site: SiteId) -> &'static str {
    NAMES.lock().get(site.index()).copied().unwrap_or("(unattributed)")
}

static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn registered_sites() -> usize {
    let names = NAMES.lock();
    names.len().max(1)
}

// ---- the enable gate ------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn metrics recording on, process-wide.
pub fn enable() {
    ensure_slot0(&mut NAMES.lock());
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn metrics recording off. Already-accumulated counters are kept.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether metrics recording is on. This is the single relaxed load every
/// disabled-path hook pays.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every counter, histogram and the orec hotness map. Site names stay
/// interned (ids remain valid).
pub fn reset() {
    for slot in SITES.iter() {
        slot.reset();
    }
    HOT_ORECS.lock().clear();
}

// ---- per-site slots -------------------------------------------------------

/// One histogram of fixed log₂ buckets.
struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as array initializer
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    const fn new() -> Histogram {
        Histogram { buckets: [ZERO; HIST_BUCKETS] }
    }

    #[inline]
    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HIST_BUCKETS];
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// The log₂ bucket a value lands in: its bit length (zero → bucket 0).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Occupancy per log₂ bucket (see [`bucket_index`]).
    pub counts: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { counts: [0; HIST_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the midpoint of the
    /// bucket containing that rank, or 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = bucket_floor(i);
                let hi = if i == 0 { 0 } else { bucket_floor(i + 1).saturating_sub(1) };
                return lo + (hi - lo) / 2;
            }
        }
        bucket_floor(HIST_BUCKETS - 1)
    }

    /// Bucket-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = [0u64; HIST_BUCKETS];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        HistogramSnapshot { counts }
    }
}

macro_rules! site_counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        struct SiteSlot {
            $($name: AtomicU64,)+
            attempts: Histogram,
            latency_ns: Histogram,
        }

        impl SiteSlot {
            const fn new() -> SiteSlot {
                SiteSlot {
                    $($name: AtomicU64::new(0),)+
                    attempts: Histogram::new(),
                    latency_ns: Histogram::new(),
                }
            }

            fn snapshot(&self, site: SiteId) -> SiteSnapshot {
                SiteSnapshot {
                    site,
                    name: site_name(site),
                    $($name: self.$name.load(Ordering::Relaxed),)+
                    attempts: self.attempts.snapshot(),
                    latency_ns: self.latency_ns.snapshot(),
                }
            }

            fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
                self.attempts.reset();
                self.latency_ns.reset();
            }
        }

        /// A point-in-time copy of one site's metrics.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct SiteSnapshot {
            /// The site's id.
            pub site: SiteId,
            /// The site's interned name.
            pub name: &'static str,
            $($(#[$doc])* pub $name: u64,)+
            /// Attempts-per-committed-transaction histogram.
            pub attempts: HistogramSnapshot,
            /// Wall-clock latency (ns) of each `atomic` call, begin to
            /// successful commit.
            pub latency_ns: HistogramSnapshot,
        }

        impl SiteSnapshot {
            /// Counter-wise difference `self - earlier` (saturating).
            pub fn delta(&self, earlier: &SiteSnapshot) -> SiteSnapshot {
                SiteSnapshot {
                    site: self.site,
                    name: self.name,
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                    attempts: self.attempts.delta(&earlier.attempts),
                    latency_ns: self.latency_ns.delta(&earlier.latency_ns),
                }
            }
        }
    };
}

site_counters! {
    /// Transactions that committed.
    commits,
    /// Aborts from read-set validation failure.
    aborts_validation,
    /// Aborts from a busy ownership record.
    aborts_orec,
    /// Explicit `restart` aborts.
    aborts_restart,
    /// Deadlock-victim aborts.
    aborts_deadlock,
    /// External-kill aborts.
    aborts_killed,
    /// Capacity-bound aborts.
    aborts_capacity,
    /// `retry` operations that blocked.
    retries,
    /// Commit-before-wait suspensions.
    waits,
    /// Transactions that became irrevocable.
    irrevocable,
    /// Total nanoseconds spent in inter-attempt backoff.
    backoff_ns,
    /// Revocable lock acquisitions inside this site's transactions.
    lock_acquisitions,
    /// Revocable lock revocations (preemptions) inside this site's
    /// transactions.
    lock_revocations,
    /// Deferred x-call operations enlisted inside this site's transactions.
    xcalls,
    /// Escalation-ladder rung promotions (optimistic → stronger backoff →
    /// serial) taken by this site's transactions.
    escalations,
    /// Faults injected by the [`chaos`](crate::chaos) layer while this site
    /// was the thread's current transaction site.
    faults_injected,
}

static SITES: [SiteSlot; MAX_SITES] = [const { SiteSlot::new() }; MAX_SITES];

impl SiteSnapshot {
    /// Total aborts of all causes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_validation
            + self.aborts_orec
            + self.aborts_restart
            + self.aborts_deadlock
            + self.aborts_killed
            + self.aborts_capacity
    }

    /// Aborts as a fraction of attempted commits (`aborts / (commits +
    /// aborts)`), 0 when idle.
    pub fn abort_rate(&self) -> f64 {
        let aborts = self.total_aborts();
        let denom = self.commits + aborts;
        if denom == 0 {
            0.0
        } else {
            aborts as f64 / denom as f64
        }
    }
}

/// A point-in-time copy of every registered site's metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// One entry per interned site, index-aligned with [`SiteId`].
    pub sites: Vec<SiteSnapshot>,
}

impl ObsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating). Sites interned
    /// after `earlier` was taken are kept as-is.
    pub fn delta(&self, earlier: &ObsSnapshot) -> ObsSnapshot {
        ObsSnapshot {
            sites: self
                .sites
                .iter()
                .map(|s| match earlier.sites.get(s.site.index()) {
                    Some(e) => s.delta(e),
                    None => *s,
                })
                .collect(),
        }
    }

    /// The snapshot for a specific site, if it was registered.
    pub fn site(&self, site: SiteId) -> Option<&SiteSnapshot> {
        self.sites.get(site.index())
    }
}

/// Copy the registry. Like [`stats`](crate::stats), each counter is read
/// with a separate relaxed load, so a snapshot taken while transactions are
/// in flight can split one logical commit across two snapshots; use
/// [`delta`](ObsSnapshot::delta) over quiescent boundaries (or pause load)
/// for exact accounting.
pub fn snapshot() -> ObsSnapshot {
    let n = registered_sites().min(MAX_SITES);
    ObsSnapshot { sites: (0..n).map(|i| SITES[i].snapshot(SiteId(i as u32))).collect() }
}

// ---- hot-path hooks -------------------------------------------------------

macro_rules! note_fns {
    ($($name:ident => $field:ident),+ $(,)?) => {
        $(#[inline]
        pub(crate) fn $name(site: SiteId) {
            if !is_enabled() {
                return;
            }
            SITES[site.index()].$field.fetch_add(1, Ordering::Relaxed);
        })+
    };
}

note_fns! {
    note_restart => aborts_restart,
    note_deadlock => aborts_deadlock,
    note_killed => aborts_killed,
    note_capacity => aborts_capacity,
    note_retry_blocked => retries,
    note_wait => waits,
    note_irrevocable => irrevocable,
    note_escalation => escalations,
}

/// Record a successful commit: bumps the commit counter and feeds the
/// attempt and latency histograms.
#[inline]
pub(crate) fn note_commit(site: SiteId, attempts: u64, latency_ns: u64) {
    if !is_enabled() {
        return;
    }
    let slot = &SITES[site.index()];
    slot.commits.fetch_add(1, Ordering::Relaxed);
    slot.attempts.record(attempts);
    slot.latency_ns.record(latency_ns);
}

/// Record a conflict abort, split by cause.
#[inline]
pub(crate) fn note_conflict(site: SiteId, kind: ConflictKind) {
    if !is_enabled() {
        return;
    }
    let slot = &SITES[site.index()];
    match kind {
        ConflictKind::ReadValidation => slot.aborts_validation.fetch_add(1, Ordering::Relaxed),
        ConflictKind::OrecBusy => slot.aborts_orec.fetch_add(1, Ordering::Relaxed),
    };
}

/// Record time spent backing off between attempts.
#[inline]
pub(crate) fn note_backoff(site: SiteId, ns: u64) {
    if !is_enabled() {
        return;
    }
    SITES[site.index()].backoff_ns.fetch_add(ns, Ordering::Relaxed);
}

// ---- cross-crate hooks (txlock, xcall) ------------------------------------

thread_local! {
    static CURRENT_SITE: Cell<u32> = const { Cell::new(0) };
}

/// Scope guard restoring the thread's previous site on drop.
pub(crate) struct SiteScope {
    prev: Option<u32>,
}

/// Mark `site` as the thread's current transaction site for the life of the
/// returned guard, so hooks from other layers (locks, x-calls) attribute to
/// it. A no-op (no thread-local touched) while metrics are disabled.
pub(crate) fn enter_site(site: SiteId) -> SiteScope {
    if !is_enabled() {
        return SiteScope { prev: None };
    }
    let prev = CURRENT_SITE.with(|c| c.replace(site.0));
    SiteScope { prev: Some(prev) }
}

impl Drop for SiteScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            CURRENT_SITE.with(|c| c.set(prev));
        }
    }
}

fn current_site() -> SiteId {
    SiteId(CURRENT_SITE.with(|c| c.get()))
}

/// Hook for `txfix-txlock`: a revocable lock was acquired inside the
/// current thread's transaction (or outside any, which attributes to the
/// unattributed site).
#[inline]
pub fn note_lock_acquired() {
    if !is_enabled() {
        return;
    }
    SITES[current_site().index()].lock_acquisitions.fetch_add(1, Ordering::Relaxed);
}

/// Hook for `txfix-txlock`: a revocable lock was revoked (its holder
/// preempted by the deadlock detector).
#[inline]
pub fn note_lock_revoked() {
    if !is_enabled() {
        return;
    }
    SITES[current_site().index()].lock_revocations.fetch_add(1, Ordering::Relaxed);
}

/// Hook for `txfix-xcall`: a deferred x-call operation was enlisted in the
/// current thread's transaction.
#[inline]
pub fn note_xcall() {
    if !is_enabled() {
        return;
    }
    SITES[current_site().index()].xcalls.fetch_add(1, Ordering::Relaxed);
}

/// Hook for [`chaos`](crate::chaos): a fault fired. Attributed like the
/// lock hooks, via the thread's current site, because injection points live
/// in `txlock` and `xcall` as well as the STM core.
#[inline]
pub(crate) fn note_fault_injected() {
    if !is_enabled() {
        return;
    }
    SITES[current_site().index()].faults_injected.fetch_add(1, Ordering::Relaxed);
}

// ---- orec hotness ---------------------------------------------------------

static HOT_ORECS: Mutex<BTreeMap<u64, u64>> = Mutex::new(BTreeMap::new());

/// Record a conflict observed on a specific orec (called from the STM's
/// conflict points with the contended `TVar`'s id).
#[inline]
pub(crate) fn note_orec_conflict(var: u64) {
    if !is_enabled() {
        return;
    }
    *HOT_ORECS.lock().entry(var).or_insert(0) += 1;
}

/// One contended orec and how many conflicts it has caused since the last
/// [`reset`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrecHotness {
    /// The contended variable.
    pub var: VarId,
    /// Conflicts attributed to it.
    pub conflicts: u64,
}

/// The `n` most contended orecs, hottest first (ties broken by id for
/// stable output).
pub fn hottest_orecs(n: usize) -> Vec<OrecHotness> {
    let map = HOT_ORECS.lock();
    let mut all: Vec<OrecHotness> =
        map.iter().map(|(&var, &conflicts)| OrecHotness { var: VarId(var), conflicts }).collect();
    drop(map);
    all.sort_by(|a, b| b.conflicts.cmp(&a.conflicts).then(a.var.cmp(&b.var)));
    all.truncate(n);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as TestMutex;

    // The registry is process-global; serialize tests that toggle it.
    static GATE: TestMutex<()> = TestMutex::new(());

    #[test]
    fn bucket_boundaries_are_log2() {
        // Bucket 0 holds only zero; bucket i covers [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for i in 1..HIST_BUCKETS - 1 {
            let lo = bucket_floor(i);
            assert_eq!(bucket_index(lo), i, "floor of bucket {i}");
            assert_eq!(bucket_index(lo * 2 - 1), i, "ceiling of bucket {i}");
            assert_eq!(bucket_index(lo * 2), i + 1, "first value past bucket {i}");
        }
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let h = Histogram::new();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.total(), 10);
        assert_eq!(s.percentile(0.5), 1, "p50 in the ones bucket");
        let p99 = s.percentile(0.99);
        assert!((512..1024).contains(&p99), "p99 in the bucket of 1000, got {p99}");
        assert_eq!(HistogramSnapshot::default().percentile(0.5), 0);
    }

    #[test]
    fn disabled_hooks_record_nothing() {
        let _g = GATE.lock();
        disable();
        let before = snapshot();
        let site = intern("obs_test_disabled");
        note_commit(site, 3, 500);
        note_conflict(site, ConflictKind::OrecBusy);
        note_orec_conflict(12345);
        let after = snapshot();
        if let (Some(b), Some(a)) = (before.site(site), after.site(site)) {
            assert_eq!(a.delta(b).commits, 0);
        }
        assert!(hottest_orecs(64).iter().all(|o| o.var != VarId(12345)));
    }

    #[test]
    fn enabled_hooks_attribute_to_the_site() {
        let _g = GATE.lock();
        let site = intern("obs_test_enabled");
        enable();
        let before = snapshot();
        note_commit(site, 2, 300);
        note_conflict(site, ConflictKind::ReadValidation);
        note_conflict(site, ConflictKind::OrecBusy);
        note_backoff(site, 42);
        note_irrevocable(site);
        let after = snapshot();
        disable();
        let d = after.site(site).unwrap().delta(before.site(site).unwrap());
        assert_eq!(d.commits, 1);
        assert_eq!(d.aborts_validation, 1);
        assert_eq!(d.aborts_orec, 1);
        assert_eq!(d.backoff_ns, 42);
        assert_eq!(d.irrevocable, 1);
        assert_eq!(d.total_aborts(), 2);
        assert!((d.abort_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(d.attempts.total(), 1);
        assert_eq!(d.latency_ns.total(), 1);
        assert_eq!(d.name, "obs_test_enabled");
    }

    #[test]
    fn interning_is_idempotent_and_bounded() {
        let a = intern("obs_test_idem");
        let b = intern("obs_test_idem");
        assert_eq!(a, b);
        assert_eq!(site_name(a), "obs_test_idem");
    }

    #[test]
    fn hottest_orecs_sorts_by_conflicts() {
        let _g = GATE.lock();
        enable();
        for _ in 0..3 {
            note_orec_conflict(900_001);
        }
        note_orec_conflict(900_002);
        disable();
        let hot = hottest_orecs(usize::MAX);
        let a = hot.iter().position(|o| o.var == VarId(900_001)).unwrap();
        let b = hot.iter().position(|o| o.var == VarId(900_002)).unwrap();
        assert!(a < b, "more-contended orec ranks first");
    }

    #[test]
    fn lock_hooks_attribute_to_current_site() {
        let _g = GATE.lock();
        let site = intern("obs_test_locks");
        enable();
        let before = snapshot();
        {
            let _scope = enter_site(site);
            note_lock_acquired();
            note_lock_revoked();
            note_xcall();
        }
        note_lock_acquired(); // outside the scope: unattributed
        let after = snapshot();
        disable();
        let d = after.site(site).unwrap().delta(before.site(site).unwrap());
        assert_eq!(d.lock_acquisitions, 1);
        assert_eq!(d.lock_revocations, 1);
        assert_eq!(d.xcalls, 1);
        let d0 = after.sites[0].delta(&before.sites[0]);
        assert!(d0.lock_acquisitions >= 1);
    }
}
