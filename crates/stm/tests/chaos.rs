//! Integration tests for the fault-injection layer's runtime hooks: armed
//! plans must fire deterministically at the right abort points, the
//! runtime must recover (no stuck orecs, no lost writes), irrevocable
//! transactions must be exempt, and a disarmed layer must inject nothing.

use std::sync::Mutex;
use txfix_stm::chaos::{self, FaultPlan, InjectionPoint, Trigger};
use txfix_stm::{obs, TVar, Txn};

/// The arming tables are process-global; serialize every test that
/// installs a plan so triggers are consumed by the intended transactions.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn begin_injection_forces_exactly_one_retry() {
    let _g = gate();
    let plan = FaultPlan::new(1).with(InjectionPoint::TxnBegin, Trigger::Nth(1));
    let _armed = chaos::scoped(&plan);
    let before = txfix_stm::stats();
    let v = TVar::new(0u32);
    let (_, report) = Txn::build().try_run(|t| v.modify(t, |x| x + 1)).expect("commits");
    assert_eq!(report.attempts, 2, "the first begin is injected, the second commits");
    assert_eq!(v.load(), 1, "exactly one commit's effect");
    assert_eq!(txfix_stm::stats().delta(&before).chaos_injected, 1);
    assert_eq!(chaos::injected_total(), 1);
}

#[test]
fn read_injection_aborts_and_recovers() {
    let _g = gate();
    let plan = FaultPlan::new(2).with(InjectionPoint::TxnRead, Trigger::Nth(1));
    let _armed = chaos::scoped(&plan);
    let v = TVar::new(10u32);
    let (got, report) = Txn::build()
        .try_run(|t| {
            let x = v.read(t)?;
            v.write(t, x + 1)?;
            Ok(x)
        })
        .expect("commits");
    assert_eq!(report.attempts, 2);
    assert_eq!(got, 10);
    assert_eq!(v.load(), 11);
}

#[test]
fn precommit_injection_aborts_and_recovers() {
    let _g = gate();
    let plan = FaultPlan::new(3).with(InjectionPoint::TxnPreCommit, Trigger::Nth(1));
    let _armed = chaos::scoped(&plan);
    let v = TVar::new(0u32);
    let (_, report) = Txn::build().try_run(|t| v.modify(t, |x| x + 1)).expect("commits");
    assert_eq!(report.attempts, 2);
    assert_eq!(v.load(), 1);
}

#[test]
fn writeback_injection_releases_orecs_before_aborting() {
    let _g = gate();
    let plan = FaultPlan::new(4).with(InjectionPoint::TxnWriteback, Trigger::Nth(1));
    let _armed = chaos::scoped(&plan);
    let v = TVar::new(0u32);
    let w = TVar::new(0u32);
    let (_, report) = Txn::build()
        .try_run(|t| {
            v.modify(t, |x| x + 1)?;
            w.modify(t, |x| x + 1)
        })
        .expect("commits");
    assert_eq!(report.attempts, 2, "mid-writeback failure retries once");
    // Both writes from the retried attempt — a half-applied first attempt
    // would leave 2 somewhere; a stuck orec would hang the next reader.
    assert_eq!((v.load(), w.load()), (1, 1));
    let (sum, _) = Txn::build()
        .try_run(|t| Ok(v.read(t)? + w.read(t)?))
        .expect("orecs must be free after the injected writeback failure");
    assert_eq!(sum, 2);
}

#[test]
fn every_nth_fires_periodically_across_transactions() {
    let _g = gate();
    let plan = FaultPlan::new(5).with(InjectionPoint::TxnPreCommit, Trigger::EveryNth(2));
    let _armed = chaos::scoped(&plan);
    let v = TVar::new(0u32);
    for _ in 0..8 {
        Txn::build().try_run(|t| v.modify(t, |x| x + 1)).expect("commits");
    }
    assert_eq!(v.load(), 8, "every transaction still commits exactly once");
    let precommit = chaos::point_stats()
        .into_iter()
        .find(|s| s.point == InjectionPoint::TxnPreCommit)
        .expect("stats for every point");
    assert_eq!(precommit.injected, precommit.hits / 2, "every 2nd hit fires");
    assert!(precommit.injected >= 4, "8 commits draw at least 8 hits");
}

#[test]
fn irrevocable_transactions_are_exempt() {
    let _g = gate();
    let plan = FaultPlan::new(6)
        .with(InjectionPoint::TxnRead, Trigger::EveryNth(1))
        .with(InjectionPoint::TxnPreCommit, Trigger::EveryNth(1));
    let _armed = chaos::scoped(&plan);
    let v = TVar::new(0u32);
    let (_, report) = Txn::build()
        .try_run(|t| {
            t.become_irrevocable()?;
            v.modify(t, |x| x + 1)
        })
        .expect("commits");
    assert_eq!(report.attempts, 1, "no injection point may touch an irrevocable txn");
    assert!(report.committed_irrevocably);
    assert_eq!(v.load(), 1);
    assert_eq!(chaos::injected_total(), 0, "exempt paths do not even draw hits");
}

#[test]
fn disarmed_layer_injects_nothing() {
    let _g = gate();
    chaos::clear();
    assert!(!chaos::is_active());
    let before = txfix_stm::stats();
    let v = TVar::new(0u32);
    for _ in 0..50 {
        Txn::build().try_run(|t| v.modify(t, |x| x + 1)).expect("commits");
    }
    assert_eq!(v.load(), 50);
    assert_eq!(txfix_stm::stats().delta(&before).chaos_injected, 0);
}

#[test]
fn injected_faults_are_attributed_to_the_obs_site() {
    let _g = gate();
    obs::enable();
    let site = obs::intern("chaos_attribution_probe");
    let before = obs::snapshot();
    let plan = FaultPlan::new(7).with(InjectionPoint::TxnBegin, Trigger::Nth(1));
    let _armed = chaos::scoped(&plan);
    let v = TVar::new(0u32);
    Txn::build()
        .site("chaos_attribution_probe")
        .try_run(|t| v.modify(t, |x| x + 1))
        .expect("commits");
    let delta = obs::snapshot().delta(&before);
    let probe = delta.site(site).expect("site registered");
    assert_eq!(probe.faults_injected, 1, "the fault lands on the current site's counter");
    assert_eq!(probe.commits, 1);
}

#[test]
fn scoped_guard_disarms_on_drop() {
    let _g = gate();
    {
        let plan = FaultPlan::new(8).with(InjectionPoint::TxnBegin, Trigger::EveryNth(1));
        let _armed = chaos::scoped(&plan);
        assert!(chaos::is_active());
    }
    assert!(!chaos::is_active(), "guard drop must disarm the layer");
    let v = TVar::new(0u32);
    let (_, report) = Txn::build().try_run(|t| v.modify(t, |x| x + 1)).expect("commits");
    assert_eq!(report.attempts, 1);
}
