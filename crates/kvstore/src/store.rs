//! The sharded transactional KV store.
//!
//! Keys hash to a shard; each shard owns a hash index of bucket maps, a
//! redo log ([`Wal`], always the fixed protocol), and a double-buffered
//! checkpoint pair behind [`BufferPool`]s. Concurrency within a shard is
//! selected by [`Mode`]:
//!
//! | mode     | write path                                  | read path |
//! |----------|---------------------------------------------|-----------|
//! | `dev`    | coarse per-shard [`TxMutex`] around the op  | same lock |
//! | `tm`     | optimistic STM, backoff only (no serial)    | optimistic STM |
//! | `hybrid` | optimistic STM, backoff only (no serial)    | full escalation ladder |
//!
//! Write transactions enlist the shard's WAL inside the same STM
//! transaction, so the redo records of an aborted op never reach the log
//! and the log's append order equals the commit order (the WAL file's
//! isolation lock is held to commit). Writers must never take the serial
//! rung: a serial (irrevocable) attempt could wait on the WAL file lock
//! held by an optimistic transaction that cannot finish its commit while
//! the serial lock is held (DESIGN §8) — hence `serial_after: u64::MAX`
//! on every write path. Read-only transactions touch no x-call locks, so
//! the hybrid mode lets them climb all the way to serial.
//!
//! ## Durability and recovery
//!
//! Every committed write is in the WAL before the client sees its reply.
//! [`KvStore::checkpoint`] snapshots a shard into the inactive buffer of
//! its checkpoint pair (crash-atomic via the checksum trailer — see
//! [`crate::page`]); [`KvStore::checkpoint_and_truncate`] additionally
//! empties the WAL, and takes `&mut self` because log truncation is only
//! sound while no op is in flight. Recovery takes the newest valid
//! checkpoint and replays committed WAL transactions with
//! `txid >= checkpoint.next_txid` in txid order — so redo records of
//! pre-checkpoint transactions resurrected by a torn truncation can never
//! roll a key back.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::page::{decode_checkpoint, encode_checkpoint, BufferPool, Checkpoint, PoolStats};
use txfix_stm::chaos::splitmix64;
use txfix_stm::{EscalationPolicy, EscalationRung, TVar, Txn, TxnBuilder};
use txfix_txlock::TxMutex;
use txfix_wal::{is_token, recover, Wal, WalOp, WalVariant};
use txfix_xcall::{SimFile, SimFs};

/// The per-shard concurrency discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Developer-style coarse locking: one revocable [`TxMutex`] per
    /// shard, held across the whole op.
    Dev,
    /// Pure optimistic TM: conflicts resolved by retry and backoff.
    Tm,
    /// TM plus the escalation ladder where it is sound: read-only ops may
    /// degrade to the serial rung, writes stay optimistic.
    Hybrid,
}

impl Mode {
    /// Every mode, in report order.
    pub const ALL: [Mode; 3] = [Mode::Dev, Mode::Tm, Mode::Hybrid];

    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Dev => "dev",
            Mode::Tm => "tm",
            Mode::Hybrid => "hybrid",
        }
    }

    /// Inverse of [`name`](Mode::name).
    pub fn parse(s: &str) -> Option<Mode> {
        Mode::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Store shape and concurrency configuration.
#[derive(Clone, Copy, Debug)]
pub struct KvConfig {
    /// Number of shards (keys hash across them).
    pub shards: usize,
    /// Bucket maps per shard (the hash index fan-out; finer buckets mean
    /// fewer false TM conflicts).
    pub buckets_per_shard: usize,
    /// Concurrency discipline.
    pub mode: Mode,
    /// Buffer-pool frames per checkpoint file.
    pub pool_pages: usize,
}

impl KvConfig {
    /// A config with the default index fan-out and pool size.
    pub fn new(mode: Mode, shards: usize) -> KvConfig {
        assert!(shards >= 1);
        KvConfig { shards, buckets_per_shard: 4, mode, pool_pages: 4 }
    }
}

/// Why an op was rejected before executing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvError {
    /// Key or value is not a WAL token (`[A-Za-z0-9_]+`).
    InvalidToken(String),
    /// A group op named keys on different shards; groups are atomic only
    /// within one shard.
    CrossShard(String),
    /// The dev-mode shard lock reported a deadlock cycle.
    Deadlock(String),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::InvalidToken(t) => write!(f, "not a WAL token: {t:?}"),
            KvError::CrossShard(m) => write!(f, "cross-shard group: {m}"),
            KvError::Deadlock(m) => write!(f, "deadlock: {m}"),
        }
    }
}

/// Execution facts for one committed op — everything the differential
/// harness and the bench need to order and account for it.
#[derive(Clone, Copy, Debug)]
pub struct OpStats {
    /// The shard the op ran on.
    pub shard: usize,
    /// The shard's history version at the op's serialization point:
    /// writes return the version their commit produced (each write bumps
    /// it by one), reads return the version they observed.
    pub version: u64,
    /// STM attempts the op took (1 = first-try commit).
    pub attempts: u64,
    /// Ladder escalations across those attempts.
    pub escalations: u64,
    /// Whether the op committed on the serial rung.
    pub serialized: bool,
}

/// An op result plus its [`OpStats`].
#[derive(Clone, Debug)]
pub struct Reply<T> {
    /// The op's return value.
    pub value: T,
    /// Execution facts.
    pub stats: OpStats,
}

struct CkptState {
    epoch: u64,
    /// Buffer index holding the newest valid checkpoint.
    active: usize,
    pools: [BufferPool; 2],
}

struct Shard {
    wal: Wal,
    /// Next WAL txid — allocated *inside* the write transaction, so txid
    /// order equals commit order equals WAL append order.
    next_txid: TVar<u64>,
    /// History version: bumped by every write commit, observed by reads.
    version: TVar<u64>,
    buckets: Vec<TVar<BTreeMap<String, String>>>,
    /// Dev-mode coarse lock (unused by tm/hybrid).
    dev: TxMutex<()>,
    ckpt: TxMutex<CkptState>,
}

/// The store. See the module docs for the architecture.
pub struct KvStore {
    cfg: KvConfig,
    shards: Vec<Shard>,
}

fn fnv64(bytes: &[u8]) -> u64 {
    crate::page::fnv64(bytes)
}

impl KvStore {
    /// Open the store over `fs`, recovering every shard from its
    /// checkpoint pair and WAL. A fresh filesystem yields an empty store.
    pub fn open(fs: &Arc<SimFs>, cfg: KvConfig) -> KvStore {
        assert!(cfg.shards >= 1 && cfg.buckets_per_shard >= 1);
        let shards = (0..cfg.shards)
            .map(|i| {
                let wal = Wal::open(fs, &format!("kv_shard{i}.wal"), WalVariant::Fixed);
                let mut pools = [
                    BufferPool::new(
                        fs.open_or_create(&format!("kv_shard{i}.pages0")),
                        cfg.pool_pages,
                    ),
                    BufferPool::new(
                        fs.open_or_create(&format!("kv_shard{i}.pages1")),
                        cfg.pool_pages,
                    ),
                ];
                // Newest valid checkpoint wins; a torn buffer decodes to
                // None and is simply not a candidate.
                let mut base = Checkpoint { epoch: 0, next_txid: 1, map: BTreeMap::new() };
                let mut active = 0;
                for (b, pool) in pools.iter_mut().enumerate() {
                    let len = pool.file().len();
                    let img = pool.read_at(0, len);
                    pool.discard();
                    if let Some(cp) = decode_checkpoint(&img) {
                        if cp.epoch > base.epoch {
                            active = b;
                            base = cp;
                        }
                    }
                }
                // Redo: committed WAL transactions the checkpoint does not
                // already cover, in txid order.
                let rec = recover(wal.file().file());
                let mut map = base.map;
                for txid in &rec.committed {
                    if *txid < base.next_txid {
                        continue;
                    }
                    for op in rec.ops.get(txid).into_iter().flatten() {
                        match op {
                            WalOp::Put(k, v) => {
                                map.insert(k.clone(), v.clone());
                            }
                            WalOp::Delete(k) => {
                                map.remove(k);
                            }
                        }
                    }
                }
                let next_txid = base.next_txid.max(rec.next_txid);
                let mut buckets: Vec<BTreeMap<String, String>> =
                    vec![BTreeMap::new(); cfg.buckets_per_shard];
                for (k, v) in map {
                    let b = bucket_of(&k, cfg.buckets_per_shard);
                    buckets[b].insert(k, v);
                }
                Shard {
                    wal,
                    next_txid: TVar::new(next_txid),
                    version: TVar::new(0),
                    buckets: buckets.into_iter().map(TVar::new).collect(),
                    dev: TxMutex::new(&format!("kv_shard{i}.dev"), ()),
                    ckpt: TxMutex::new(
                        &format!("kv_shard{i}.ckpt"),
                        CkptState { epoch: base.epoch, active, pools },
                    ),
                }
            })
            .collect();
        KvStore { cfg, shards }
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> KvConfig {
        self.cfg
    }

    /// Which shard `key` lives on.
    pub fn shard_of(&self, key: &str) -> usize {
        shard_placement(key, self.cfg.shards)
    }

    fn builder(&self, site: &'static str, writes: bool) -> TxnBuilder {
        let policy = match (self.cfg.mode, writes) {
            // Writers hold the WAL file's isolation lock to commit, so
            // the serial rung is off-limits for them in every mode.
            (_, true) | (Mode::Tm, false) => {
                EscalationPolicy { backoff_after: 4, serial_after: u64::MAX, deadline: None }
            }
            // Hybrid read-only ops get the full ladder. (Dev ops run
            // under the shard lock and never conflict; the policy is
            // irrelevant there.)
            (Mode::Dev | Mode::Hybrid, false) => EscalationPolicy::default(),
        };
        Txn::build().site(site).escalation(policy)
    }

    /// Run `body` as one shard-local transaction under the mode's
    /// discipline, returning its value and version via [`Reply`].
    fn run_op<T>(
        &self,
        shard_idx: usize,
        site: &'static str,
        writes: bool,
        mut body: impl FnMut(&Shard, &mut Txn) -> txfix_stm::StmResult<(T, u64)>,
    ) -> Result<Reply<T>, KvError> {
        let shard = &self.shards[shard_idx];
        let _guard = match self.cfg.mode {
            Mode::Dev => Some(shard.dev.lock().map_err(|e| KvError::Deadlock(e.to_string()))?),
            Mode::Tm | Mode::Hybrid => None,
        };
        let ((value, version), report) = self.builder(site, writes).run(|txn| body(shard, txn));
        Ok(Reply {
            value,
            stats: OpStats {
                shard: shard_idx,
                version,
                attempts: report.attempts,
                escalations: report.escalations,
                serialized: report.committed_rung == EscalationRung::Serial,
            },
        })
    }

    /// Apply `ops` (all on `shard_idx`) as one transaction: mutate the
    /// bucket maps, bump the shard version, and log to the WAL. Returns
    /// the displaced value per op.
    fn write_ops(
        &self,
        shard_idx: usize,
        site: &'static str,
        ops: &[WalOp],
    ) -> Result<Reply<Vec<Option<String>>>, KvError> {
        let buckets = self.cfg.buckets_per_shard;
        self.run_op(shard_idx, site, true, |shard, txn| {
            let txid = shard.next_txid.read(txn)?;
            shard.next_txid.write(txn, txid + 1)?;
            let mut displaced = Vec::with_capacity(ops.len());
            for op in ops {
                let key = match op {
                    WalOp::Put(k, _) | WalOp::Delete(k) => k,
                };
                let b = bucket_of(key, buckets);
                let mut m = shard.buckets[b].read(txn)?;
                displaced.push(match op {
                    WalOp::Put(k, v) => m.insert(k.clone(), v.clone()),
                    WalOp::Delete(k) => m.remove(k),
                });
                shard.buckets[b].write(txn, m)?;
            }
            let version = shard.version.read(txn)? + 1;
            shard.version.write(txn, version)?;
            shard.wal.x_log_ops(txn, txid, ops)?;
            Ok((displaced, version))
        })
    }

    /// Read `key`. The reply's value is the current mapping, if any.
    pub fn get(&self, key: &str) -> Result<Reply<Option<String>>, KvError> {
        check_token(key)?;
        let buckets = self.cfg.buckets_per_shard;
        self.run_op(self.shard_of(key), "kv_get", false, |shard, txn| {
            let version = shard.version.read(txn)?;
            let m = shard.buckets[bucket_of(key, buckets)].read(txn)?;
            Ok((m.get(key).cloned(), version))
        })
    }

    /// Set `key` to `value`; the reply carries the displaced value.
    pub fn put(&self, key: &str, value: &str) -> Result<Reply<Option<String>>, KvError> {
        check_token(key)?;
        check_token(value)?;
        let ops = [WalOp::Put(key.to_string(), value.to_string())];
        let reply = self.write_ops(self.shard_of(key), "kv_put", &ops)?;
        Ok(Reply { value: reply.value.into_iter().next().unwrap(), stats: reply.stats })
    }

    /// Remove `key`; the reply carries the removed value, if any.
    pub fn delete(&self, key: &str) -> Result<Reply<Option<String>>, KvError> {
        check_token(key)?;
        let ops = [WalOp::Delete(key.to_string())];
        let reply = self.write_ops(self.shard_of(key), "kv_delete", &ops)?;
        Ok(Reply { value: reply.value.into_iter().next().unwrap(), stats: reply.stats })
    }

    /// Apply a group of puts/deletes atomically. All keys must hash to
    /// the same shard — the group is one shard-local transaction (and one
    /// WAL transaction), so recovery can never observe it torn.
    pub fn apply_group(&self, ops: &[WalOp]) -> Result<Reply<()>, KvError> {
        let mut shard = None;
        for op in ops {
            let (k, v) = match op {
                WalOp::Put(k, v) => (k, Some(v)),
                WalOp::Delete(k) => (k, None),
            };
            check_token(k)?;
            if let Some(v) = v {
                check_token(v)?;
            }
            let s = self.shard_of(k);
            if *shard.get_or_insert(s) != s {
                return Err(KvError::CrossShard(format!("{ops:?}")));
            }
        }
        let shard = match shard {
            Some(s) => s,
            None => return Err(KvError::CrossShard("empty group".to_string())),
        };
        let reply = self.write_ops(shard, "kv_group", ops)?;
        Ok(Reply { value: (), stats: reply.stats })
    }

    /// Snapshot every key on `shard_idx`, in key order, as one
    /// transaction (hybrid mode may serialize it under contention).
    pub fn scan(&self, shard_idx: usize) -> Result<Reply<Vec<(String, String)>>, KvError> {
        assert!(shard_idx < self.cfg.shards);
        self.run_op(shard_idx, "kv_scan", false, |shard, txn| {
            let version = shard.version.read(txn)?;
            let mut out = BTreeMap::new();
            for b in &shard.buckets {
                out.extend(b.read(txn)?);
            }
            Ok((out.into_iter().collect::<Vec<_>>(), version))
        })
    }

    /// Checkpoint `shard_idx` into the inactive buffer of its pair. Safe
    /// concurrently with ops in every mode: the snapshot is one STM
    /// transaction, and the WAL is left alone (full replay over a newer
    /// base is idempotent because records carry absolute values).
    pub fn checkpoint(&self, shard_idx: usize) {
        self.ckpt_inner(shard_idx, false);
    }

    /// [`checkpoint`](KvStore::checkpoint), then truncate the WAL.
    /// Requires `&mut self`: truncation is only sound with no op in
    /// flight, and exclusive access is the static proof of that.
    pub fn checkpoint_and_truncate(&mut self, shard_idx: usize) {
        self.ckpt_inner(shard_idx, true);
    }

    fn ckpt_inner(&self, shard_idx: usize, truncate: bool) {
        let shard = &self.shards[shard_idx];
        let ((map, next_txid), _) = Txn::build().site("kv_ckpt").run(|txn| {
            let mut map = BTreeMap::new();
            for b in &shard.buckets {
                map.extend(b.read(txn)?);
            }
            Ok((map, shard.next_txid.read(txn)?))
        });
        let mut ck = shard.ckpt.lock().expect("checkpoint lock cycle");
        ck.epoch += 1;
        let cp = Checkpoint { epoch: ck.epoch, next_txid, map };
        let target = 1 - ck.active;
        let pool = &mut ck.pools[target];
        pool.discard();
        pool.write_at(0, &encode_checkpoint(&cp));
        // Page-by-page write-back (each page crosses KV_POOL_FLUSH), then
        // the fsync that commits the checkpoint.
        pool.flush();
        ck.active = target;
        if truncate {
            let file: &SimFile = shard.wal.file().file();
            file.truncate(0);
            file.sync_all();
        }
    }

    /// Current shard contents, read non-transactionally. Only meaningful
    /// at quiescence (tests, recovery assertions).
    pub fn shard_snapshot(&self, shard_idx: usize) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for b in &self.shards[shard_idx].buckets {
            out.extend(b.load());
        }
        out
    }

    /// Current shard history version (non-transactional; quiescence only).
    pub fn shard_version(&self, shard_idx: usize) -> u64 {
        self.shards[shard_idx].version.load()
    }

    /// Combined buffer-pool counters for `shard_idx`'s checkpoint pair.
    pub fn pool_stats(&self, shard_idx: usize) -> PoolStats {
        let ck = self.shards[shard_idx].ckpt.lock().expect("checkpoint lock cycle");
        let [a, b] = [ck.pools[0].stats(), ck.pools[1].stats()];
        PoolStats {
            hits: a.hits + b.hits,
            misses: a.misses + b.misses,
            evictions: a.evictions + b.evictions,
            flushed_pages: a.flushed_pages + b.flushed_pages,
        }
    }
}

/// Which shard `key` hashes to in a store of `shards` shards — pure, so
/// harnesses can plan single-shard groups without a store in hand.
pub fn shard_placement(key: &str, shards: usize) -> usize {
    (splitmix64(fnv64(key.as_bytes())) % shards as u64) as usize
}

fn check_token(s: &str) -> Result<(), KvError> {
    if is_token(s) {
        Ok(())
    } else {
        Err(KvError::InvalidToken(s.to_string()))
    }
}

fn bucket_of(key: &str, buckets: usize) -> usize {
    (splitmix64(fnv64(key.as_bytes()) ^ 0x0B0C_4E75).wrapping_rem(buckets as u64)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(mode: Mode, shards: usize) -> (Arc<SimFs>, KvStore) {
        let fs = SimFs::new();
        let kv = KvStore::open(&fs, KvConfig::new(mode, shards));
        (fs, kv)
    }

    #[test]
    fn basic_ops_round_trip_in_every_mode() {
        for mode in Mode::ALL {
            let (_fs, kv) = store(mode, 2);
            assert_eq!(kv.get("a").unwrap().value, None);
            assert_eq!(kv.put("a", "1").unwrap().value, None);
            assert_eq!(kv.put("a", "2").unwrap().value, Some("1".to_string()));
            assert_eq!(kv.get("a").unwrap().value, Some("2".to_string()));
            assert_eq!(kv.delete("a").unwrap().value, Some("2".to_string()));
            assert_eq!(kv.get("a").unwrap().value, None, "{}", mode.name());
        }
    }

    #[test]
    fn versions_order_writes_per_shard() {
        let (_fs, kv) = store(Mode::Tm, 1);
        let v1 = kv.put("a", "1").unwrap().stats.version;
        let v2 = kv.put("b", "2").unwrap().stats.version;
        let v3 = kv.delete("a").unwrap().stats.version;
        assert_eq!((v1, v2, v3), (1, 2, 3));
        assert_eq!(kv.get("b").unwrap().stats.version, 3);
        assert_eq!(kv.shard_version(0), 3);
    }

    #[test]
    fn recovery_replays_the_wal_over_the_newest_checkpoint() {
        let fs = SimFs::new();
        let cfg = KvConfig::new(Mode::Tm, 2);
        let mut kv = KvStore::open(&fs, cfg);
        for i in 0..8 {
            kv.put(&format!("k{i}"), &format!("v{i}")).unwrap();
        }
        kv.checkpoint_and_truncate(0);
        kv.checkpoint_and_truncate(1);
        kv.put("k1", "after").unwrap();
        kv.delete("k2").unwrap();
        let want: Vec<BTreeMap<String, String>> = (0..2).map(|s| kv.shard_snapshot(s)).collect();
        drop(kv);
        let kv2 = KvStore::open(&fs, cfg);
        for (s, w) in want.iter().enumerate() {
            assert_eq!(&kv2.shard_snapshot(s), w, "shard {s}");
        }
        // And a second checkpoint generation still recovers.
        kv2.put("zz", "last").unwrap();
        kv2.checkpoint(kv2.shard_of("zz"));
        let want: Vec<BTreeMap<String, String>> = (0..2).map(|s| kv2.shard_snapshot(s)).collect();
        drop(kv2);
        let kv3 = KvStore::open(&fs, cfg);
        for (s, w) in want.iter().enumerate() {
            assert_eq!(&kv3.shard_snapshot(s), w, "shard {s}");
        }
    }

    #[test]
    fn groups_are_single_shard_only() {
        let (_fs, kv) = store(Mode::Tm, 4);
        // Find two keys on the same shard and one elsewhere.
        let mut by_shard: Vec<Vec<String>> = vec![Vec::new(); 4];
        for i in 0..64 {
            let k = format!("g{i}");
            by_shard[kv.shard_of(&k)].push(k);
        }
        let same = by_shard.iter().find(|v| v.len() >= 2).unwrap();
        let other = by_shard
            .iter()
            .find(|v| !v.is_empty() && kv.shard_of(&v[0]) != kv.shard_of(&same[0]))
            .unwrap();
        let ok = kv.apply_group(&[
            WalOp::Put(same[0].clone(), "x".to_string()),
            WalOp::Put(same[1].clone(), "y".to_string()),
        ]);
        assert!(ok.is_ok());
        let err = kv.apply_group(&[
            WalOp::Put(same[0].clone(), "x".to_string()),
            WalOp::Put(other[0].clone(), "y".to_string()),
        ]);
        assert!(matches!(err, Err(KvError::CrossShard(_))));
        assert!(matches!(kv.apply_group(&[]), Err(KvError::CrossShard(_))));
    }

    #[test]
    fn non_token_keys_and_values_are_rejected() {
        let (_fs, kv) = store(Mode::Dev, 1);
        assert!(matches!(kv.get("no space"), Err(KvError::InvalidToken(_))));
        assert!(matches!(kv.put("k", "bad;"), Err(KvError::InvalidToken(_))));
        assert!(matches!(kv.delete(""), Err(KvError::InvalidToken(_))));
    }

    #[test]
    fn scan_returns_the_whole_shard_in_key_order() {
        let (_fs, kv) = store(Mode::Hybrid, 1);
        kv.put("b", "2").unwrap();
        kv.put("a", "1").unwrap();
        let scan = kv.scan(0).unwrap();
        assert_eq!(
            scan.value,
            vec![("a".to_string(), "1".to_string()), ("b".to_string(), "2".to_string())]
        );
        assert_eq!(scan.stats.version, 2);
    }
}
