//! Property tests for the crash model and recovery:
//!
//! * recovery is idempotent — recovering (and compacting) twice yields
//!   the same map and the same log bytes as doing it once;
//! * a crash image is always a legal flush subset of the page cache —
//!   block-granular, each block either durable or cached content.
//!
//! Nothing here arms the crash-point registry, so these run in parallel
//! with each other safely.

use proptest::prelude::*;
use txfix_stm::atomic;
use txfix_wal::{recover, recover_and_compact, Wal, WalVariant};
use txfix_xcall::{SimFs, BLOCK_BYTES};

#[derive(Clone, Debug)]
enum DiskOp {
    Append(Vec<u8>),
    WriteAt(usize, Vec<u8>),
    Sync,
}

fn disk_op() -> impl Strategy<Value = DiskOp> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..48).prop_map(DiskOp::Append),
        (0usize..96, proptest::collection::vec(any::<u8>(), 1..24))
            .prop_map(|(o, b)| DiskOp::WriteAt(o, b)),
        Just(DiskOp::Sync),
    ]
}

fn wal_token() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,14}".prop_map(|s| s)
}

proptest! {
    /// The durable image a crash would leave is a legal flush subset of
    /// the page cache after any sequence of appends, positional writes
    /// and syncs: per block, either the durable bytes or the cached
    /// bytes, never a blend, and the durable prefix always survives.
    #[test]
    fn crash_image_is_block_granular_durable_or_cached(
        ops in proptest::collection::vec(disk_op(), 0..24),
        seed in any::<u64>(),
    ) {
        let fs = SimFs::new();
        let f = fs.open_or_create("prop");
        for op in &ops {
            match op {
                DiskOp::Append(b) => f.append(b),
                DiskOp::WriteAt(o, b) => f.write_at(*o, b),
                DiskOp::Sync => f.sync_all(),
            }
        }
        let cached = f.read_all();
        let durable = f.durable_snapshot();
        let img = f.crash_image(seed);
        prop_assert_eq!(&img, &f.crash_image(seed), "image must be pure per seed");
        prop_assert!(img.len() >= durable.len());
        prop_assert!(img.len() <= cached.len().max(durable.len()));
        let dirty = f.dirty_blocks();
        for b in 0..img.len().div_ceil(BLOCK_BYTES) {
            let s = b * BLOCK_BYTES;
            let e = ((b + 1) * BLOCK_BYTES).min(img.len());
            let pad = |src: &[u8]| -> Vec<u8> {
                let mut v = vec![0u8; e - s];
                if src.len() > s {
                    let ce = src.len().min(e);
                    v[..ce - s].copy_from_slice(&src[s..ce]);
                }
                v
            };
            if dirty.contains(&b) {
                prop_assert!(
                    img[s..e] == pad(&durable)[..] || img[s..e] == pad(&cached)[..],
                    "dirty block {} blends durable and cached content", b
                );
            } else {
                prop_assert!(
                    img[s..e] == pad(&durable)[..],
                    "clean block {} may only hold durable content", b
                );
            }
        }
    }

    /// Recovering twice is the same as recovering once: for any log made
    /// of committed batches plus arbitrary torn garbage at the tail,
    /// `recover_and_compact` reaches a fixpoint in one step.
    #[test]
    fn recovery_and_compaction_are_idempotent(
        batches in proptest::collection::vec(
            proptest::collection::vec((wal_token(), wal_token()), 1..4),
            0..5,
        ),
        garbage in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let fs = SimFs::new();
        let wal = Wal::open(&fs, "wal", WalVariant::Fixed);
        for (i, batch) in batches.iter().enumerate() {
            atomic(|txn| wal.x_log_txn(txn, i as u64 + 1, batch));
        }
        // A crash-torn tail: raw bytes that may or may not parse.
        wal.file().file().append(&garbage);

        let once = recover_and_compact(wal.file().file());
        let bytes_once = wal.file().file().read_all();
        let twice = recover_and_compact(wal.file().file());
        let bytes_twice = wal.file().file().read_all();

        prop_assert_eq!(&once.map, &twice.map, "map must be stable across recoveries");
        prop_assert_eq!(&bytes_once, &bytes_twice, "compacted log must be a fixpoint");
        prop_assert_eq!(
            bytes_twice,
            wal.file().file().durable_snapshot(),
            "compaction must leave the log fully durable"
        );
        prop_assert_eq!(twice.skipped_lines, 0, "a compacted log has no garbage");
        // And the compacted log replays to the same map a third time.
        prop_assert_eq!(&recover(wal.file().file()).map, &once.map);
    }
}
