//! A cooperative deterministic scheduler for systematic schedule
//! exploration (`txfix explore`).
//!
//! When a *run* is active (see [`begin_run`]) and the calling thread is
//! [`register`]ed, every synchronization layer in the workspace — this
//! STM's `TVar` reads/writes and commits, `txfix-txlock`'s acquire and
//! release paths, `txfix-tmsync`'s condition variables and serial domains,
//! and the chaos injection points — funnels through [`yield_point`] before
//! performing its operation. Exactly one registered thread runs at a time;
//! at each yield the scheduler consults a pluggable *picker* (installed by
//! the `txfix-explore` strategies: exhaustive DFS with sleep sets, or
//! PCT-style random priorities) to decide which thread's next operation
//! executes. The full decision sequence is recorded, so any execution —
//! in particular a failing one — replays bit-for-bit by feeding the same
//! decisions back through a replay picker.
//!
//! Like the [`trace`](crate::trace) recorder and the
//! [`chaos`](crate::chaos) layer, the scheduler is **off by default and
//! zero-cost when disabled**: every hook starts with one relaxed atomic
//! load, and threads that never registered (every thread in a normal test
//! or production run) are never touched even while a run is active.
//!
//! # Blocking model
//!
//! Controlled threads never block on OS primitives. A lock acquisition
//! that would block calls [`block_on`] with the lock's resource id; the
//! releasing thread calls [`signal`], which makes the waiters runnable
//! again (they re-try their acquisition when next scheduled, so lock
//! handoff order remains a scheduling decision). Condition variables work
//! the same way — and a notify that finds no registered waiter wakes
//! nobody, which is exactly the lost-wakeup semantics the explorer needs
//! to observe. When every registered thread is blocked the scheduler
//! declares a deadlock, stops the run, and reports the blocked operations.
//!
//! # Granularity
//!
//! Yield points sit *before* their operation, outside the runtime's
//! internal critical sections: a commit validates-and-publishes as one
//! atomic step at scheduler granularity (TL2 commits are linearizable, so
//! this loses no behaviour), and an irrevocable transaction — which holds
//! the global serialization lock — never yields at all, which both models
//! serial-mode semantics and guarantees no thread is ever parked while
//! holding a lock another controlled thread might need through an OS wait.

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Resource-id tag for `TVar` ids (see [`SyncOp::resource`]). `TVar`,
/// lock and traced-object counters are independent, so raw ids collide;
/// tags keep the dependence relation honest. Direct (non-transactional)
/// `TVar` accesses pass `id | VAR_TAG` through `Shared*` themselves so
/// they conflict with transactional accesses of the same variable.
pub(crate) const VAR_TAG: u64 = 1 << 61;
/// Resource-id tag for `txfix-txlock` lock ids.
const LOCK_TAG: u64 = 1 << 62;

/// The resource id [`block_on`] uses for the STM retry notifier: a
/// `Txn::retry` parks here and every writing commit signals it.
pub const RES_NOTIFIER: u64 = (1 << 60) | 1;

/// One schedulable operation, as announced at a [`yield_point`].
///
/// The payload identifies the resource the operation touches, which is
/// what the explorer's partial-order reduction keys on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SyncOp {
    /// A transaction attempt begins.
    TxnBegin,
    /// A transactional read of the `TVar` with this id.
    TxnRead(u64),
    /// A transactional write of the `TVar` with this id.
    TxnWrite(u64),
    /// A transaction validates and publishes (one atomic step).
    TxnCommit,
    /// An acquisition attempt on the lock with this id.
    LockAcquire(u64),
    /// A release of the lock with this id.
    LockRelease(u64),
    /// Parking on the condition variable with this id.
    CvWait(u64),
    /// Signalling the condition variable with this id.
    CvNotify(u64),
    /// A non-transactional shared read (traced cell, direct `TVar` load).
    SharedRead(u64),
    /// A non-transactional shared write.
    SharedWrite(u64),
    /// An armed chaos injection point (the discriminant of
    /// [`chaos::InjectionPoint`](crate::chaos::InjectionPoint)).
    ChaosPoint(u32),
    /// Parked on a runtime rendezvous (retry notifier, wait point).
    Park(u64),
    /// Entry into a serial-domain critical section or atomic region. The
    /// body executes suppressed (one scheduler step) with a footprint the
    /// scheduler cannot see, so the op has no resource and is
    /// conservatively dependent on everything.
    SerialSection(u64),
}

impl SyncOp {
    /// The resource this operation touches, in a tagged namespace shared
    /// by all layers; `None` means "potentially anything" (conservative).
    pub fn resource(self) -> Option<u64> {
        match self {
            SyncOp::TxnRead(v) | SyncOp::TxnWrite(v) => Some(v | VAR_TAG),
            SyncOp::LockAcquire(l) | SyncOp::LockRelease(l) => Some(l | LOCK_TAG),
            SyncOp::CvWait(c) | SyncOp::CvNotify(c) => Some(c),
            SyncOp::SharedRead(o) | SyncOp::SharedWrite(o) => Some(o),
            SyncOp::Park(r) => Some(r),
            SyncOp::TxnBegin
            | SyncOp::TxnCommit
            | SyncOp::ChaosPoint(_)
            | SyncOp::SerialSection(_) => None,
        }
    }

    /// Whether the operation can change the state of its resource.
    pub fn writes(self) -> bool {
        match self {
            SyncOp::TxnWrite(_)
            | SyncOp::SharedWrite(_)
            | SyncOp::LockAcquire(_)
            | SyncOp::LockRelease(_)
            | SyncOp::CvNotify(_)
            | SyncOp::SerialSection(_) => true,
            SyncOp::TxnRead(_)
            | SyncOp::SharedRead(_)
            | SyncOp::CvWait(_)
            | SyncOp::Park(_)
            | SyncOp::TxnBegin
            | SyncOp::TxnCommit
            | SyncOp::ChaosPoint(_) => false,
        }
    }

    /// Whether two operations are *dependent*: executing them in either
    /// order can lead to different states. Conservative — operations with
    /// no resource (begin, commit, chaos) depend on everything — which
    /// keeps the sleep-set reduction sound at the cost of some pruning.
    pub fn dependent(self, other: SyncOp) -> bool {
        match (self.resource(), other.resource()) {
            (Some(a), Some(b)) => a == b && (self.writes() || other.writes()),
            _ => true,
        }
    }
}

impl fmt::Display for SyncOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Strip the namespace tag bits: the kind word already names the
        // namespace, and small numbers read better in decision dumps.
        let id = |r: u64| r & !(0xF << 60);
        match *self {
            SyncOp::TxnBegin => write!(f, "txn-begin"),
            SyncOp::TxnRead(v) => write!(f, "txn-read(tvar#{})", id(v)),
            SyncOp::TxnWrite(v) => write!(f, "txn-write(tvar#{})", id(v)),
            SyncOp::TxnCommit => write!(f, "txn-commit"),
            SyncOp::LockAcquire(l) => write!(f, "lock-acquire(lock#{})", id(l)),
            SyncOp::LockRelease(l) => write!(f, "lock-release(lock#{})", id(l)),
            SyncOp::CvWait(c) => write!(f, "cv-wait(cv#{})", id(c)),
            SyncOp::CvNotify(c) => write!(f, "cv-notify(cv#{})", id(c)),
            SyncOp::SharedRead(o) => write!(f, "read(obj#{})", id(o)),
            SyncOp::SharedWrite(o) => write!(f, "write(obj#{})", id(o)),
            SyncOp::ChaosPoint(p) => write!(f, "chaos({p})"),
            SyncOp::Park(r) => write!(f, "park(res#{})", id(r)),
            SyncOp::SerialSection(o) => write!(f, "serial-section(obj#{})", id(o)),
        }
    }
}

/// What the picker wants done with a decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pick {
    /// Run the candidate at this index (into the candidates slice).
    Choose(usize),
    /// Abandon the execution: every continuation from here is already
    /// covered (the sleep-set "all candidates asleep" case). The run stops
    /// and is reported as pruned, not as a pass or failure.
    Prune,
}

/// The scheduling policy: given the runnable candidates (thread slot and
/// the operation each wants to execute, sorted by slot), choose one. The
/// picker is invoked for *every* decision, including forced ones with a
/// single candidate, so replay pickers stay in step with their trace.
pub type Picker = Box<dyn FnMut(&[(usize, SyncOp)]) -> Pick + Send>;

/// One recorded scheduling decision.
#[derive(Clone, Debug)]
pub struct Decision {
    /// The runnable candidates at this point (slot, pending op), sorted
    /// by slot.
    pub candidates: Vec<(usize, SyncOp)>,
    /// Index into `candidates` of the thread that ran.
    pub chosen: usize,
}

/// Why a run stopped before every thread finished.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every live thread was blocked: a deadlock (or lost wakeup). The
    /// payload describes each blocked thread's pending operation.
    Deadlock(Vec<String>),
    /// The per-schedule step bound was exceeded (a livelock, or a bound
    /// set too low for the program).
    StepLimit,
    /// The picker abandoned the execution as redundant.
    Pruned,
    /// A controlled thread panicked; the payload is the panic message.
    Panic(String),
}

/// The complete record of one scheduled execution.
#[derive(Clone, Debug, Default)]
pub struct RunLog {
    /// Every scheduling decision, in order.
    pub decisions: Vec<Decision>,
    /// The executed operations `(slot, op)`, in order — the sequence
    /// replay determinism is judged on.
    pub events: Vec<(usize, SyncOp)>,
    /// Scheduling steps taken.
    pub steps: u64,
    /// Why the run stopped early, if it did.
    pub stop: Option<StopReason>,
}

impl RunLog {
    /// The chosen-candidate-index sequence: together with the strategy
    /// seed this is the `(seed, trace)` pair that replays the execution.
    pub fn trace(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.chosen).collect()
    }

    /// Context switches: adjacent decisions that moved to a different
    /// thread (the "preemptions" a minimizer drives down).
    pub fn preemptions(&self) -> u64 {
        self.events.windows(2).filter(|w| w[0].0 != w[1].0).count() as u64
    }

    /// Turnstile integrity: every executed operation must be the candidate
    /// the matching decision record announced. A healthy scheduler can
    /// never diverge — the two are written under one lock — so any
    /// divergence means an operation ran out of turnstile order and the
    /// recorded schedule no longer describes the execution. Returns the
    /// first divergence as a fixed-format diagnostic.
    pub fn turnstile_breach(&self) -> Option<String> {
        for (i, (d, executed)) in self.decisions.iter().zip(self.events.iter()).enumerate() {
            let announced = d.candidates[d.chosen];
            if announced != *executed {
                return Some(format!(
                    "turnstile breach at step {i}: announced thread {} ({}), executed thread {} ({})",
                    announced.0, announced.1, executed.0, executed.1
                ));
            }
        }
        None
    }
}

/// Render a decision trace in the compact `a.b.c` form printed on failure
/// and accepted back by replay.
pub fn format_trace(trace: &[usize]) -> String {
    trace.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(".")
}

/// The unwind payload a stopped run throws through controlled threads.
/// Runner harnesses `catch_unwind` their thread bodies and treat this
/// payload as "the schedule ended here", not as a test failure.
pub struct SchedStop;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    /// Spawned, has not reached its first yield point yet.
    NotStarted,
    /// Parked at a yield point, wants to execute the operation.
    Ready(SyncOp),
    /// Executing between yield points (exactly one thread at a time).
    Running,
    /// Parked on a resource until someone signals it.
    Blocked(u64, SyncOp),
    /// Finished.
    Done,
}

struct Inner {
    phase: Vec<Phase>,
    picker: Picker,
    decisions: Vec<Decision>,
    events: Vec<(usize, SyncOp)>,
    steps: u64,
    max_steps: u64,
    stop: Option<StopReason>,
    /// Per-run canonical resource ids, keyed by the raw (process-global)
    /// id. Raw ids come from global counters, so a scenario rebuilt for
    /// re-execution gets fresh ones; canonical ids are assigned inside
    /// [`schedule`] in slot order, which makes the operation stream a
    /// pure function of the schedule — what stateless DFS re-execution
    /// and bit-for-bit replay both require. (Assigning at the
    /// announcement point instead would order ids by worker startup, an
    /// OS artifact: before the start gate opens, threads announce their
    /// first ops in whatever order the OS ran them.)
    canon: std::collections::HashMap<u64, u64>,
}

impl Inner {
    fn canon_id(&mut self, raw: u64) -> u64 {
        if let Some(&c) = self.canon.get(&raw) {
            return c;
        }
        // Keep the namespace tag bits so canonical ids stay distinct
        // across layers and readable in decision dumps.
        let c = (raw & TAG_MASK) | (self.canon.len() as u64 + 1);
        self.canon.insert(raw, c);
        c
    }

    fn canon_op(&mut self, op: SyncOp) -> SyncOp {
        use SyncOp::*;
        match op {
            TxnRead(r) => TxnRead(self.canon_id(r)),
            TxnWrite(r) => TxnWrite(self.canon_id(r)),
            LockAcquire(r) => LockAcquire(self.canon_id(r)),
            LockRelease(r) => LockRelease(self.canon_id(r)),
            CvWait(r) => CvWait(self.canon_id(r)),
            CvNotify(r) => CvNotify(self.canon_id(r)),
            SharedRead(r) => SharedRead(self.canon_id(r)),
            SharedWrite(r) => SharedWrite(self.canon_id(r)),
            Park(r) => Park(self.canon_id(r)),
            SerialSection(r) => SerialSection(self.canon_id(r)),
            TxnBegin | TxnCommit | ChaosPoint(_) => op,
        }
    }
}

/// The namespace tag bits of a resource id (see `VAR_TAG` & friends).
const TAG_MASK: u64 = 0xF << 60;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Inner>> = Mutex::new(None);
static TURNSTILE: Condvar = Condvar::new();

thread_local! {
    /// This thread's slot in the active run, if registered.
    static SLOT: Cell<Option<usize>> = const { Cell::new(None) };
    /// Depth of atomic sections (yields suppressed while > 0).
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

/// Whether the calling thread is currently under scheduler control.
/// Instrumented blocking paths branch on this to decide between
/// [`block_on`] and their OS wait. One relaxed load when no run is active.
#[inline]
pub fn is_controlled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
        && SLOT.with(|s| s.get().is_some())
        && SUPPRESS.with(|s| s.get() == 0)
}

/// Scheduling steps taken so far in the active run, or 0 when no run is
/// active. Harnesses use this as a deterministic virtual clock: elapsed
/// steps across an operation are a pure function of the schedule, so
/// latency measured in steps survives byte-compare across machines.
pub fn current_steps() -> u64 {
    STATE.lock().as_ref().map(|i| i.steps).unwrap_or(0)
}

#[inline]
fn controlled_slot() -> Option<usize> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    if SUPPRESS.with(|s| s.get() != 0) {
        return None;
    }
    SLOT.with(|s| s.get())
}

/// RAII guard for a section that must execute without yields (serial
/// domains, irrevocable bodies). While any such guard is alive on a
/// thread, the thread behaves as uncontrolled: hooks no-op and blocking
/// paths use their OS waits.
pub struct AtomicSection(());

impl AtomicSection {
    fn new() -> AtomicSection {
        SUPPRESS.with(|s| s.set(s.get() + 1));
        AtomicSection(())
    }
}

impl Drop for AtomicSection {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(s.get() - 1));
    }
}

/// Enter a no-yield section (see [`AtomicSection`]).
pub fn atomic_section() -> AtomicSection {
    AtomicSection::new()
}

/// Install a new run: `threads` worker slots, a per-schedule step bound,
/// and the scheduling policy. Call from the harness thread (which stays
/// uncontrolled), then spawn the workers, have each call [`register`]
/// with its slot, and collect the record with [`end_run`] after joining.
///
/// # Panics
///
/// Panics if a run is already active (runs are process-global; harnesses
/// serialize on [`run_exclusively`]).
pub fn begin_run(threads: usize, max_steps: u64, picker: Picker) {
    let mut g = STATE.lock();
    assert!(g.is_none(), "a scheduler run is already active");
    *g = Some(Inner {
        phase: vec![Phase::NotStarted; threads],
        picker,
        decisions: Vec::new(),
        events: Vec::new(),
        steps: 0,
        max_steps,
        stop: None,
        canon: std::collections::HashMap::new(),
    });
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Tear down the active run and return its record. Idempotent with
/// respect to worker state: workers must have been joined first.
pub fn end_run() -> RunLog {
    ACTIVE.store(false, Ordering::SeqCst);
    let inner = STATE.lock().take().expect("end_run without begin_run");
    RunLog {
        decisions: inner.decisions,
        events: inner.events,
        steps: inner.steps,
        stop: inner.stop,
    }
}

/// The process-global lock harnesses hold while driving scheduled runs,
/// so concurrent tests (and the CLI) serialize instead of tripping the
/// one-run-at-a-time assertion.
pub fn run_exclusively<T>(f: impl FnOnce() -> T) -> T {
    static GATE: Mutex<()> = Mutex::new(());
    let _g = GATE.lock();
    f()
}

/// Adopt `slot` for the calling worker thread. The thread then runs
/// freely until its first [`yield_point`], where the scheduler takes
/// over; the first decision is made only after every slot has arrived
/// (or finished), so startup order is not a hidden schedule dimension.
pub fn register(slot: usize) {
    SLOT.with(|s| s.set(Some(slot)));
    // Worker threads may be reused across runs; a stale GV5 read epoch
    // must not leak clock state into a recorded schedule.
    crate::clock::reset_thread_epoch();
}

/// Mark the calling worker finished and hand the token to the next
/// thread. Also safe to call while the run is stopping.
pub fn finish() {
    let Some(me) = controlled_slot() else {
        return;
    };
    SLOT.with(|s| s.set(None));
    let mut g = STATE.lock();
    let Some(inner) = g.as_mut() else {
        return;
    };
    inner.phase[me] = Phase::Done;
    if inner.stop.is_none() {
        schedule(inner);
    }
    TURNSTILE.notify_all();
}

/// Stop the run because a controlled thread panicked with `message`;
/// every other thread unwinds with [`SchedStop`] at its next hook.
pub fn abort_run(message: String) {
    let mut g = STATE.lock();
    if let Some(inner) = g.as_mut() {
        if inner.stop.is_none() {
            inner.stop = Some(StopReason::Panic(message));
        }
    }
    TURNSTILE.notify_all();
}

/// Announce the next operation and wait for this thread's turn to run it.
/// No-op for uncontrolled threads. Unwinds with [`SchedStop`] if the run
/// stops while parked.
pub fn yield_point(op: SyncOp) {
    let Some(me) = controlled_slot() else {
        return;
    };
    let mut g = STATE.lock();
    let Some(inner) = g.as_mut() else {
        return;
    };
    if inner.stop.is_some() {
        drop(g);
        stop_unwind();
    }
    inner.phase[me] = Phase::Ready(op);
    schedule(inner);
    wait_for_turn(g, me);
}

/// Park the calling thread on `res` until a [`signal`] makes it runnable
/// and the scheduler picks it again. `op` labels what the thread will do
/// when it resumes (e.g. retry a lock acquisition). Returns normally when
/// rescheduled — the caller re-checks its condition — or unwinds with
/// [`SchedStop`] if the run stops (deadlock, budget, panic).
pub fn block_on(res: u64, op: SyncOp) {
    let Some(me) = controlled_slot() else {
        return;
    };
    let mut g = STATE.lock();
    let Some(inner) = g.as_mut() else {
        return;
    };
    if inner.stop.is_some() {
        drop(g);
        stop_unwind();
    }
    inner.phase[me] = Phase::Blocked(res, op);
    schedule(inner);
    wait_for_turn(g, me);
}

/// Make every thread parked on `res` runnable again. Callable from any
/// thread (controlled or not); a no-op when no run is active.
pub fn signal(res: u64) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let mut g = STATE.lock();
    let Some(inner) = g.as_mut() else {
        return;
    };
    for phase in inner.phase.iter_mut() {
        if let Phase::Blocked(r, op) = *phase {
            if r == res {
                *phase = Phase::Ready(op);
            }
        }
    }
    // If the signaller is uncontrolled there may be no Running thread;
    // give the newly runnable ones a chance immediately.
    if inner.stop.is_none() && !inner.phase.iter().any(|p| matches!(p, Phase::Running)) {
        schedule(inner);
    }
    TURNSTILE.notify_all();
}

/// Make *every* blocked thread runnable (used by revocation paths, where
/// a kill must wake its victim regardless of what it is parked on).
pub fn wake_all() {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let mut g = STATE.lock();
    let Some(inner) = g.as_mut() else {
        return;
    };
    for phase in inner.phase.iter_mut() {
        if let Phase::Blocked(_, op) = *phase {
            *phase = Phase::Ready(op);
        }
    }
    if inner.stop.is_none() && !inner.phase.iter().any(|p| matches!(p, Phase::Running)) {
        schedule(inner);
    }
    TURNSTILE.notify_all();
}

/// Park until it is `me`'s turn (or the run stops). Consumes the guard.
fn wait_for_turn(mut g: parking_lot::MutexGuard<'_, Option<Inner>>, me: usize) {
    loop {
        let Some(inner) = g.as_mut() else {
            return;
        };
        if inner.stop.is_some() {
            drop(g);
            stop_unwind();
        }
        if matches!(inner.phase[me], Phase::Running) {
            return;
        }
        TURNSTILE.wait(&mut g);
    }
}

/// Leave scheduler control and unwind. The slot is cleared *first* so
/// hooks reached during the unwind (RAII lock releases and transaction
/// rollbacks) fall through to their normal uncontrolled behaviour instead
/// of re-entering the scheduler mid-unwind.
fn stop_unwind() -> ! {
    SLOT.with(|s| s.set(None));
    std::panic::resume_unwind(Box::new(SchedStop));
}

/// Pick the next thread to run. Caller holds the state lock; there must
/// be no `Running` thread. No-op until every slot has started (the start
/// gate) and after a stop.
fn schedule(inner: &mut Inner) {
    if inner.stop.is_some() {
        return;
    }
    if inner.phase.iter().any(|p| matches!(p, Phase::NotStarted)) {
        return; // start gate: wait for every worker's first yield
    }
    // Phases hold *raw* resource ids; canonicalize here, in slot order,
    // so id assignment is a pure function of the schedule (announcement
    // order races with worker startup — see `Inner::canon`).
    let mut candidates: Vec<(usize, SyncOp)> = Vec::new();
    for i in 0..inner.phase.len() {
        if let Phase::Ready(op) = inner.phase[i] {
            candidates.push((i, inner.canon_op(op)));
        }
    }
    if candidates.is_empty() {
        let mut blocked: Vec<String> = Vec::new();
        for i in 0..inner.phase.len() {
            if let Phase::Blocked(_, op) = inner.phase[i] {
                let op = inner.canon_op(op);
                blocked.push(format!("thread {i} blocked at {op}"));
            }
        }
        if !blocked.is_empty() {
            // Live threads exist but none can run: deadlock / lost wakeup.
            inner.stop = Some(StopReason::Deadlock(blocked));
            TURNSTILE.notify_all();
        }
        return; // all Done: the run is over
    }
    inner.steps += 1;
    if inner.steps > inner.max_steps {
        inner.stop = Some(StopReason::StepLimit);
        TURNSTILE.notify_all();
        return;
    }
    let chosen = match (inner.picker)(&candidates) {
        Pick::Choose(i) => {
            assert!(i < candidates.len(), "picker chose candidate {i} of {}", candidates.len());
            i
        }
        Pick::Prune => {
            inner.stop = Some(StopReason::Pruned);
            TURNSTILE.notify_all();
            return;
        }
    };
    #[cfg(not(feature = "canary-sched"))]
    let run_index = chosen;
    // Canary: execute a different ready candidate than the one the
    // decision record announces — one op runs out of turnstile order.
    // The record keeps the picker's choice, so the executed event stream
    // silently diverges from the announced schedule.
    #[cfg(feature = "canary-sched")]
    let run_index =
        if candidates.len() > 1 && crate::canary::fire(crate::canary::Canary::SchedOutOfTurn) {
            (chosen + 1) % candidates.len()
        } else {
            chosen
        };
    let (slot, op) = candidates[run_index];
    inner.decisions.push(Decision { candidates, chosen });
    inner.events.push((slot, op));
    inner.phase[slot] = Phase::Running;
    TURNSTILE.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependence_is_resource_keyed() {
        assert!(SyncOp::SharedWrite(1).dependent(SyncOp::SharedRead(1)));
        assert!(!SyncOp::SharedWrite(1).dependent(SyncOp::SharedRead(2)));
        assert!(!SyncOp::SharedRead(1).dependent(SyncOp::SharedRead(1)));
        // Tagged namespaces: tvar#1 and lock#1 are different resources.
        assert!(!SyncOp::TxnWrite(1).dependent(SyncOp::LockAcquire(1)));
        // No-resource ops conservatively depend on everything.
        assert!(SyncOp::TxnCommit.dependent(SyncOp::SharedRead(7)));
    }

    #[test]
    fn hooks_are_noops_off_run() {
        // Must not deadlock or panic on an unregistered thread.
        yield_point(SyncOp::TxnBegin);
        block_on(1, SyncOp::Park(1));
        signal(1);
        wake_all();
        finish();
        assert!(!is_controlled());
    }
}
