//! Instrumentation-cost model.
//!
//! The paper's performance results are driven by the *relative* cost of
//! synchronization mechanisms: Intel's software TM instruments every
//! transactional load/store and slows critical sections down by 3–5×, while
//! the simulated hardware TM (LogTM-SE) tracks accesses at near-zero cost.
//! Running this reproduction on stock hardware, the barrier costs of a real
//! STM compiler are not present, so benchmarks opt into an explicit cost
//! model: a calibrated busy-wait charged per transactional read, write,
//! begin and commit. Tests and ordinary users leave the model at
//! [`OverheadModel::NONE`] (zero cost).

use std::time::Instant;

/// Per-operation costs, in nanoseconds, charged inside the STM runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OverheadModel {
    /// Charged when a transaction begins.
    pub begin_ns: u64,
    /// Charged on every transactional read (the read barrier).
    pub read_ns: u64,
    /// Charged on every transactional write (the write barrier).
    pub write_ns: u64,
    /// Fixed cost charged at commit.
    pub commit_ns: u64,
    /// Cost charged at commit per read-set plus write-set entry
    /// (validation and write-back work).
    pub commit_per_entry_ns: u64,
}

impl OverheadModel {
    /// No modelled overhead: the runtime's native cost only.
    pub const NONE: OverheadModel = OverheadModel {
        begin_ns: 0,
        read_ns: 0,
        write_ns: 0,
        commit_ns: 0,
        commit_per_entry_ns: 0,
    };

    /// A software-TM profile: heavyweight read/write barriers. Calibrated so
    /// that short critical sections slow down by roughly 3–5× relative to an
    /// uncontended lock, matching the paper's characterization of Intel's
    /// STM (§3.2).
    pub const SOFTWARE_TM: OverheadModel = OverheadModel {
        begin_ns: 120,
        read_ns: 45,
        write_ns: 70,
        commit_ns: 150,
        commit_per_entry_ns: 25,
    };

    /// A hardware-TM profile: accesses tracked by hardware at almost no
    /// cost, small fixed begin/commit cost (LogTM-SE-like, §5.4.1).
    pub const HARDWARE_TM: OverheadModel = OverheadModel {
        begin_ns: 30,
        read_ns: 0,
        write_ns: 0,
        commit_ns: 40,
        commit_per_entry_ns: 0,
    };

    /// Whether every cost in the model is zero.
    pub fn is_free(&self) -> bool {
        *self == OverheadModel::NONE
    }
}

/// Busy-wait for approximately `ns` nanoseconds.
///
/// Used to charge modelled instrumentation costs. Spinning (rather than
/// sleeping) matches what an instrumented barrier does: it consumes CPU on
/// the critical path.
#[inline]
pub(crate) fn charge(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_free() {
        assert!(OverheadModel::NONE.is_free());
        assert!(!OverheadModel::SOFTWARE_TM.is_free());
        assert!(!OverheadModel::HARDWARE_TM.is_free());
    }

    #[test]
    fn default_is_none() {
        assert_eq!(OverheadModel::default(), OverheadModel::NONE);
    }

    #[test]
    fn charge_zero_returns_immediately() {
        let start = Instant::now();
        charge(0);
        assert!(start.elapsed().as_millis() < 50);
    }

    #[test]
    fn charge_waits_roughly_the_requested_time() {
        let start = Instant::now();
        charge(2_000_000); // 2 ms
        let elapsed = start.elapsed();
        assert!(elapsed.as_nanos() >= 2_000_000);
    }

    #[test]
    fn software_profile_is_heavier_than_hardware() {
        let s = OverheadModel::SOFTWARE_TM;
        let h = OverheadModel::HARDWARE_TM;
        assert!(s.read_ns > h.read_ns);
        assert!(s.write_ns > h.write_ns);
        assert!(s.commit_ns > h.commit_ns);
    }
}
