//! The transaction entry points: the [`TxnBuilder`] (and its [`atomic`] /
//! [`atomic_relaxed`] convenience wrappers) execute a transaction body
//! until it commits, handling conflicts, explicit aborts, blocking retry,
//! commit-before-wait and capacity overflow. The migration table from the
//! pre-builder entry points lives in the crate docs.

use crate::chaos;
use crate::contention::Backoff;
use crate::error::{Abort, ConflictKind, StmResult, TxnError};
use crate::notifier;
use crate::obs;
use crate::obs::SiteId;
use crate::overhead::OverheadModel;
use crate::sched;
use crate::stats;
use crate::txn::{Txn, TxnKind, TxnOptions, WritePolicy};
use std::time::{Duration, Instant};

/// Diagnostic information about one completed `atomic` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnReport {
    /// Total body executions, including the committing one.
    pub attempts: u64,
    /// Whether the committing attempt was irrevocable.
    pub committed_irrevocably: bool,
    /// Times the transaction blocked in `retry`.
    pub blocked_retries: u64,
    /// Times the transaction committed-and-waited on a wait point.
    pub waits: u64,
    /// Aborts caused by deadlock victimization or external kills.
    pub preemptions: u64,
    /// The degradation rung the committing attempt ran on.
    pub committed_rung: EscalationRung,
    /// Rung promotions taken before the commit (0 when the first rung won).
    pub escalations: u64,
}

/// One rung of the graceful-degradation ladder: how much optimism a
/// transaction attempt still has.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EscalationRung {
    /// Plain speculation under the configured backoff policy.
    #[default]
    Optimistic,
    /// Still speculating, but under
    /// [`BackoffPolicy::escalated`](crate::BackoffPolicy::escalated) — wider
    /// windows drain the contention that is defeating optimism.
    StrongerBackoff,
    /// Give up on concurrency: the attempt becomes irrevocable at begin,
    /// holding the global serialization lock exclusively, so it cannot
    /// conflict and commits exactly once.
    Serial,
}

impl EscalationRung {
    /// Stable machine-readable name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            EscalationRung::Optimistic => "optimistic",
            EscalationRung::StrongerBackoff => "stronger_backoff",
            EscalationRung::Serial => "serial",
        }
    }

    /// The next rung up; [`Serial`](EscalationRung::Serial) is absorbing.
    pub fn next(self) -> EscalationRung {
        match self {
            EscalationRung::Optimistic => EscalationRung::StrongerBackoff,
            EscalationRung::StrongerBackoff | EscalationRung::Serial => EscalationRung::Serial,
        }
    }
}

/// When to climb the degradation ladder ("On the Cost of Concurrency in
/// Transactional Memory": knowing when to stop paying for optimism).
///
/// A transaction with a policy starts on
/// [`Optimistic`](EscalationRung::Optimistic); after `backoff_after` failed
/// attempts it re-runs under the escalated backoff policy, after
/// `serial_after` failed attempts — or as soon as `deadline` has elapsed
/// since the `atomic` call began — it takes the serial rung, where the
/// commit is unconditional. The ladder guarantees *eventual commit within
/// the attempt budget* for bodies that do not themselves fail terminally
/// (`cancel`, capacity, `max_attempts`): the serial rung cannot conflict,
/// and injected faults never target irrevocable attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EscalationPolicy {
    /// Failed attempts before moving to stronger backoff.
    pub backoff_after: u64,
    /// Failed attempts before moving to serial mode (the attempt budget).
    pub serial_after: u64,
    /// Wall-clock bound; when it elapses the next attempt jumps straight to
    /// serial regardless of the attempt counters.
    pub deadline: Option<Duration>,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        EscalationPolicy { backoff_after: 4, serial_after: 16, deadline: None }
    }
}

/// Fluent configuration for a transaction, obtained from [`Txn::build`].
///
/// The builder is the single way to configure a transaction; terminal
/// methods [`run`](TxnBuilder::run) and [`try_run`](TxnBuilder::try_run)
/// execute a body under the accumulated options. It is `Clone` and can be
/// stored and reused — every `run` from the same builder starts a fresh
/// transaction.
///
/// # Examples
///
/// ```
/// use txfix_stm::{Txn, TVar};
///
/// let hits = TVar::new(0u64);
/// let (value, report) = Txn::build()
///     .site("docs_example")
///     .run(|txn| hits.modify(txn, |h| h + 1).map(|()| 1u64));
/// assert_eq!(value, 1);
/// assert!(report.attempts >= 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TxnBuilder {
    opts: TxnOptions,
}

impl Txn {
    /// Start configuring a transaction.
    pub fn build() -> TxnBuilder {
        TxnBuilder::default()
    }
}

impl TxnBuilder {
    /// Make the transaction *relaxed*: it may contain unsafe operations via
    /// [`Txn::unsafe_op`] at the cost of becoming irrevocable.
    pub fn relaxed(mut self) -> Self {
        self.opts.kind = TxnKind::Relaxed;
        self
    }

    /// Set the write policy (lazy write-back vs. eager in-place).
    pub fn write_policy(mut self, policy: WritePolicy) -> Self {
        self.opts.write_policy = policy;
        self
    }

    /// Give up with [`TxnError::RetryLimit`] after `n` attempts.
    pub fn max_attempts(mut self, n: u64) -> Self {
        self.opts.max_attempts = Some(n);
        self
    }

    /// Set the inter-attempt contention management policy.
    pub fn backoff(mut self, policy: crate::BackoffPolicy) -> Self {
        self.opts.backoff = policy;
        self
    }

    /// Bound the read and write sets (hardware TM model).
    pub fn capacity(mut self, reads: usize, writes: usize) -> Self {
        self.opts.read_capacity = Some(reads);
        self.opts.write_capacity = Some(writes);
        self
    }

    /// Set the modelled instrumentation cost (see [`OverheadModel`]).
    pub fn overhead(mut self, model: OverheadModel) -> Self {
        self.opts.overhead = model;
        self
    }

    /// Upper bound on one blocking interval of [`Txn::retry`]; on timeout
    /// the transaction re-executes anyway.
    pub fn retry_timeout(mut self, timeout: Duration) -> Self {
        self.opts.retry_timeout = timeout;
        self
    }

    /// Install a graceful-degradation ladder (see [`EscalationPolicy`]).
    pub fn escalation(mut self, policy: EscalationPolicy) -> Self {
        self.opts.escalation = Some(policy);
        self
    }

    /// Shorthand for an attempt budget: after `n` failed attempts the
    /// transaction runs serially (and irrevocably) and therefore commits.
    /// Installs a default ladder with `serial_after = n` and stronger
    /// backoff from halfway there; composes with
    /// [`deadline`](TxnBuilder::deadline).
    pub fn attempt_budget(mut self, n: u64) -> Self {
        let mut policy = self.opts.escalation.unwrap_or_default();
        let n = n.max(1);
        policy.serial_after = n;
        policy.backoff_after = (n / 2).max(1);
        self.opts.escalation = Some(policy);
        self
    }

    /// Wall-clock bound on optimism: once `d` has elapsed since the
    /// `atomic` call began, the next attempt jumps straight to the serial
    /// rung. Installs a default [`EscalationPolicy`] if none is set.
    pub fn deadline(mut self, d: Duration) -> Self {
        let mut policy = self.opts.escalation.unwrap_or_default();
        policy.deadline = Some(d);
        self.opts.escalation = Some(policy);
        self
    }

    /// Label transactions from this builder for per-site metrics
    /// attribution (see [`crate::obs`]). Interns `name` on first use.
    pub fn site(mut self, name: &'static str) -> Self {
        self.opts.site = obs::intern(name);
        self
    }

    /// The builder's metrics site (the unattributed site unless
    /// [`site`](TxnBuilder::site) was called).
    pub fn site_id(&self) -> SiteId {
        self.opts.site
    }

    /// Execute `body` as a transaction, retrying until it commits, and
    /// return its result together with a [`TxnReport`].
    ///
    /// # Panics
    ///
    /// Panics on terminal failure — the body cancelled, the attempt bound
    /// was exceeded, or a capacity bound was hit. Use
    /// [`try_run`](TxnBuilder::try_run) to observe those as errors.
    pub fn run<T>(&self, body: impl FnMut(&mut Txn) -> StmResult<T>) -> (T, TxnReport) {
        self.try_run(body).expect("transaction failed terminally; use try_run to handle this")
    }

    /// Execute `body` as a transaction, retrying until it commits or fails
    /// terminally.
    ///
    /// # Errors
    ///
    /// - [`TxnError::Cancelled`] if the body cancelled;
    /// - [`TxnError::RetryLimit`] if `max_attempts` was exceeded;
    /// - [`TxnError::Capacity`] if a capacity bound was exceeded.
    pub fn try_run<T>(
        &self,
        body: impl FnMut(&mut Txn) -> StmResult<T>,
    ) -> Result<(T, TxnReport), TxnError> {
        atomic_report(&self.opts, body)
    }
}

/// Execute `body` as an atomic transaction, retrying until it commits, and
/// return its result.
///
/// This is the reproduction of the paper's `atomic { ... }` language
/// construct, and a thin wrapper over [`Txn::build`]. The body may be
/// re-executed many times; it must confine its side effects to
/// transactional operations (reads/writes of [`TVar`](crate::TVar)s,
/// revocable locks, x-calls, hooks).
///
/// # Examples
///
/// ```
/// use txfix_stm::{atomic, TVar};
///
/// let a = TVar::new(1u32);
/// let b = TVar::new(2u32);
/// let sum = atomic(|txn| {
///     let x = a.read(txn)?;
///     let y = b.read(txn)?;
///     b.write(txn, x + y)?;
///     Ok(x + y)
/// });
/// assert_eq!(sum, 3);
/// assert_eq!(b.load(), 3);
/// ```
///
/// # Panics
///
/// Panics if the body calls [`Txn::cancel`]; use
/// [`TxnBuilder::try_run`] to observe cancellation as an error.
pub fn atomic<T>(body: impl FnMut(&mut Txn) -> StmResult<T>) -> T {
    Txn::build().run(body).0
}

/// Execute `body` as a *relaxed* transaction, which may perform unsafe
/// operations via [`Txn::unsafe_op`] at the cost of irrevocability. A thin
/// wrapper over [`Txn::build`]`.relaxed()`.
///
/// # Panics
///
/// Panics if the body calls [`Txn::cancel`].
pub fn atomic_relaxed<T>(body: impl FnMut(&mut Txn) -> StmResult<T>) -> T {
    Txn::build().relaxed().run(body).0
}

/// The retry loop shared by every entry point.
pub(crate) fn atomic_report<T>(
    opts: &TxnOptions,
    mut body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> Result<(T, TxnReport), TxnError> {
    let mut backoff = Backoff::new(opts.backoff);
    let mut report = TxnReport::default();
    let mut rung = EscalationRung::Optimistic;
    // One relaxed load when metrics are off; the timestamp and the
    // current-site scope exist only on the enabled path. A second timestamp
    // exists only when a wall-clock deadline is configured.
    let started = if obs::is_enabled() { Some(Instant::now()) } else { None };
    let deadline_from = opts.escalation.and_then(|e| e.deadline.map(|d| (Instant::now(), d)));
    let _site_scope = obs::enter_site(opts.site);

    loop {
        report.attempts += 1;
        if let Some(max) = opts.max_attempts {
            if report.attempts > max {
                return Err(TxnError::RetryLimit { attempts: report.attempts - 1 });
            }
        }

        if let Some(policy) = opts.escalation {
            let failed = report.attempts - 1;
            let deadline_hit = matches!(deadline_from, Some((t0, d)) if t0.elapsed() >= d);
            let target = if failed >= policy.serial_after || deadline_hit {
                EscalationRung::Serial
            } else if failed >= policy.backoff_after {
                EscalationRung::StrongerBackoff
            } else {
                EscalationRung::Optimistic
            };
            while rung < target {
                rung = rung.next();
                report.escalations += 1;
                stats::bump_escalations();
                obs::note_escalation(opts.site);
                if rung == EscalationRung::StrongerBackoff {
                    backoff = Backoff::new(opts.backoff.escalated());
                }
            }
        }

        // Chaos: a forced conflict before the body runs. The serial rung is
        // exempt so the ladder's eventual-commit guarantee holds even under
        // a plan that fails every begin.
        if rung != EscalationRung::Serial && chaos::should_inject(chaos::InjectionPoint::TxnBegin) {
            handle_abort(
                Abort::Conflict(ConflictKind::ReadValidation),
                &mut backoff,
                &mut report,
                opts.site,
            )?;
            continue;
        }

        let mut txn = Txn::begin(opts, report.attempts);
        if rung == EscalationRung::Serial {
            // At begin the read set is empty, so the irrevocability switch
            // cannot fail validation.
            txn.become_irrevocable().expect("irrevocable switch at begin cannot fail validation");
        }
        let outcome = body(&mut txn);

        match outcome {
            Ok(value) => match txn.commit() {
                Ok(()) => {
                    report.committed_irrevocably = txn.was_irrevocable();
                    report.committed_rung = rung;
                    if let Some(started) = started {
                        obs::note_commit(
                            opts.site,
                            report.attempts,
                            started.elapsed().as_nanos() as u64,
                        );
                    }
                    return Ok((value, report));
                }
                Err(abort) => {
                    txn.abort();
                    handle_abort(abort, &mut backoff, &mut report, opts.site)?;
                }
            },
            Err(Abort::Wait(wp)) => {
                // Commit-before-wait: publish the work done so far, then
                // block, then re-execute the body as a fresh transaction.
                let ticket = wp.prepare();
                match txn.commit() {
                    Ok(()) => {
                        stats::bump_waits();
                        obs::note_wait(opts.site);
                        report.waits += 1;
                        // The commit succeeded, so contention pressure is
                        // gone: the next attempt starts with fresh backoff.
                        backoff.reset();
                        wp.wait(ticket);
                    }
                    Err(abort) => {
                        txn.abort();
                        handle_abort(abort, &mut backoff, &mut report, opts.site)?;
                    }
                }
            }
            Err(Abort::Retry) => {
                stats::bump_retries();
                obs::note_retry_blocked(opts.site);
                report.blocked_retries += 1;
                let seen = notifier::global().epoch();
                let snapshot = txn.take_read_snapshot();
                txn.abort();
                if snapshot.is_empty() {
                    // Retrying with an empty read set would block forever;
                    // treat as plain backoff so the caller's loop progresses.
                    backoff_wait(&mut backoff, opts.site);
                } else if sched::is_controlled() {
                    // Scheduled run: park on the scheduler instead of the
                    // OS notifier. If no explored commit ever changes the
                    // read set, the scheduler reports the stuck retry as a
                    // deadlock instead of spinning on timeouts.
                    while !snapshot.changed() {
                        sched::block_on(
                            sched::RES_NOTIFIER,
                            sched::SyncOp::Park(sched::RES_NOTIFIER),
                        );
                    }
                } else {
                    while !snapshot.changed() {
                        if !notifier::global().wait_past(seen, opts.retry_timeout) {
                            break; // timeout: re-execute anyway
                        }
                    }
                }
            }
            Err(abort) => {
                txn.abort();
                handle_abort(abort, &mut backoff, &mut report, opts.site)?;
            }
        }
    }
}

fn handle_abort(
    abort: Abort,
    backoff: &mut Backoff,
    report: &mut TxnReport,
    site: SiteId,
) -> Result<(), TxnError> {
    match abort {
        Abort::Conflict(kind) => {
            match kind {
                ConflictKind::ReadValidation => stats::bump_conflicts_validation(),
                ConflictKind::OrecBusy => stats::bump_conflicts_orec(),
            }
            obs::note_conflict(site, kind);
            backoff_wait(backoff, site);
            Ok(())
        }
        Abort::Restart => {
            stats::bump_explicit_restarts();
            obs::note_restart(site);
            Ok(())
        }
        Abort::Deadlock => {
            stats::bump_deadlock_aborts();
            obs::note_deadlock(site);
            report.preemptions += 1;
            backoff_wait(backoff, site);
            Ok(())
        }
        Abort::Killed => {
            stats::bump_kills();
            obs::note_killed(site);
            report.preemptions += 1;
            backoff_wait(backoff, site);
            Ok(())
        }
        Abort::Cancel => Err(TxnError::Cancelled),
        Abort::Capacity(kind) => {
            stats::bump_capacity();
            obs::note_capacity(site);
            Err(TxnError::Capacity { kind, attempts: report.attempts })
        }
        Abort::Retry | Abort::Wait(_) => {
            unreachable!("retry/wait are handled before generic abort handling")
        }
    }
}

/// Back off between attempts, attributing the time to `site` when metrics
/// are on (disabled cost: one relaxed load).
fn backoff_wait(backoff: &mut Backoff, site: SiteId) {
    if sched::is_controlled() {
        // Wall-clock backoff is meaningless under a deterministic
        // scheduler (and would stall the whole run); the next attempt's
        // begin yield is the contention-ordering decision instead.
        return;
    }
    if obs::is_enabled() {
        let started = Instant::now();
        backoff.wait();
        obs::note_backoff(site, started.elapsed().as_nanos() as u64);
    } else {
        backoff.wait();
    }
}
