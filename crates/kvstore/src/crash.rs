//! The store-level crash-recovery checker behind `txfix crash kvstore`.
//!
//! Same discipline as `txfix_wal::checker`, pointed at the full store: a
//! record pass runs a scripted workload (puts, deletes, atomic groups,
//! checkpoints with and without log truncation) and learns every crash
//! point the script crosses — the WAL append path (`xfile_apply`,
//! `wal_after_commit_write`, the simos syscall points) *and* the
//! buffer-pool flush path ([`KV_POOL_FLUSH`][crate::page::KV_POOL_FLUSH],
//! `simos_file_truncate`). Then, for every `(label, hit)` × image seed,
//! an armed pass crashes there, takes a seeded crash image, recovers
//! with [`KvStore::open`], and checks the per-shard prefix invariant:
//!
//! * **atomicity** — the recovered shard equals the oracle state after
//!   some whole number of batches (no torn batch, no torn group);
//! * **durability** — that number covers every batch acknowledged before
//!   the crash;
//! * **no resurrection** — a prefix state can never exhibit a deleted
//!   key's old value or a pre-checkpoint record replayed over a newer
//!   one (stale redo records are fenced by the checkpoint's `next_txid`).
//!
//! The store always runs the fixed WAL protocol, so *every* mode must be
//! clean at *every* crash point — unlike the WAL sweep, there is no
//! planted bug here, and a single flagged label fails the sweep.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::store::{shard_placement, KvConfig, KvStore, Mode};
use txfix_core::json::{Json, ToJson};
use txfix_stm::chaos::{self, splitmix64, FaultPlan, InjectionPoint, Trigger};
use txfix_wal::WalOp;
use txfix_xcall::{crashpoint, SimFs, BLOCK_BYTES};

/// Artifact schema marker.
pub const SCHEMA: &str = "txfix-crash-kv-v1";

/// Default sweep seed.
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// Crash point crossed once after the script completes, so the sweep
/// also proves the quiescent store recovers completely.
pub const KV_QUIESCE: &str = "kv_quiesce";

const SHARDS: usize = 2;

/// The fault backdrop a cell runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// No injected faults: crashes only.
    Clean,
    /// Transient x-call I/O faults during the workload — ops retry
    /// through them, and the crash sweep proves retries don't widen any
    /// crash window.
    XcallFaults,
}

impl Schedule {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Clean => "clean",
            Schedule::XcallFaults => "xcall_faults",
        }
    }
}

fn plan_for(schedule: Schedule, seed: u64) -> Option<FaultPlan> {
    match schedule {
        Schedule::Clean => None,
        Schedule::XcallFaults => Some(
            FaultPlan::new(splitmix64(seed ^ 0xFA01_7AB1E))
                .with(InjectionPoint::XcallFile, Trigger::EveryNth(7)),
        ),
    }
}

/// Sweep configuration.
pub struct KvCrashConfig {
    /// Seed for fault plans and crash images.
    pub seed: u64,
    /// Crash images drawn per `(label, hit)`.
    pub images_per_point: u64,
    /// Store modes to sweep.
    pub modes: Vec<Mode>,
    /// Fault backdrops to sweep.
    pub schedules: Vec<Schedule>,
}

impl KvCrashConfig {
    /// Every mode × every schedule.
    pub fn full(seed: u64) -> KvCrashConfig {
        KvCrashConfig {
            seed,
            images_per_point: 2,
            modes: Mode::ALL.to_vec(),
            schedules: vec![Schedule::Clean, Schedule::XcallFaults],
        }
    }
}

/// One scripted store transaction and whether the client saw it commit
/// before the crash froze the world.
struct BatchFact {
    shard: usize,
    ops: Vec<WalOp>,
    acked: bool,
}

fn put(k: &str, v: &str) -> Vec<WalOp> {
    vec![WalOp::Put(k.to_string(), v.to_string())]
}

fn del(k: &str) -> Vec<WalOp> {
    vec![WalOp::Delete(k.to_string())]
}

/// First `n` probe keys that hash to `shard`.
fn keys_for(shard: usize, n: usize) -> Vec<String> {
    (0..).map(|i| format!("c{i}")).filter(|k| shard_placement(k, SHARDS) == shard).take(n).collect()
}

fn config(mode: Mode) -> KvConfig {
    // A deliberately tiny pool so checkpoints exercise eviction
    // write-backs, not just the final flush.
    KvConfig { shards: SHARDS, buckets_per_shard: 4, mode, pool_pages: 2 }
}

/// Run the scripted workload against a fresh store. Deterministic: the
/// same mode (and fault plan) produces the same syscall and crash-point
/// sequence on every run, which is what makes `(label, hit)` a
/// replayable coordinate.
fn execute_workload(mode: Mode) -> (Arc<SimFs>, Vec<BatchFact>) {
    let fs = SimFs::new();
    let mut kv = KvStore::open(&fs, config(mode));
    let a = keys_for(0, 4);
    let b = keys_for(1, 4);
    // Values long enough to span several simos blocks and more than one
    // buffer-pool page, so torn records and torn checkpoint pages are
    // both reachable.
    let long = "L".repeat(3 * BLOCK_BYTES);
    let mut facts: Vec<BatchFact> = Vec::new();
    let mut exec = |kv: &KvStore, ops: Vec<WalOp>| {
        kv.apply_group(&ops).expect("script ops are valid single-shard tokens");
        let shard = match &ops[0] {
            WalOp::Put(k, _) | WalOp::Delete(k) => shard_placement(k, SHARDS),
        };
        facts.push(BatchFact { shard, ops, acked: !crashpoint::is_frozen() });
    };
    exec(&kv, put(&a[0], "alpha"));
    exec(&kv, put(&b[0], "beta"));
    exec(&kv, put(&a[1], &long));
    exec(
        &kv,
        vec![
            WalOp::Put(a[2].clone(), "g1".to_string()),
            WalOp::Delete(a[0].clone()),
            WalOp::Put(a[3].clone(), "g2".to_string()),
        ],
    );
    kv.checkpoint(0);
    exec(&kv, put(&b[1], &long));
    kv.checkpoint_and_truncate(1);
    exec(&kv, del(&b[0]));
    exec(&kv, put(&a[0], "back"));
    exec(
        &kv,
        vec![
            WalOp::Put(b[2].clone(), "h1".to_string()),
            WalOp::Put(b[0].clone(), "h2".to_string()),
        ],
    );
    kv.checkpoint_and_truncate(0);
    exec(&kv, put(&a[1], "rewritten"));
    exec(&kv, del(&a[3]));
    kv.checkpoint(1);
    exec(&kv, put(&b[3], "tail"));
    crashpoint::crash_point(KV_QUIESCE);
    (fs, facts)
}

/// The per-shard prefix invariant (see module docs).
fn check(facts: &[BatchFact], recovered: &[BTreeMap<String, String>]) -> Vec<String> {
    let mut violations = Vec::new();
    for (shard, recovered_shard) in recovered.iter().enumerate().take(SHARDS) {
        let shard_facts: Vec<&BatchFact> = facts.iter().filter(|f| f.shard == shard).collect();
        // Acked batches must form a prefix: once the world froze, no
        // later batch can have been acknowledged.
        let acked = shard_facts.iter().take_while(|f| f.acked).count();
        if shard_facts.iter().skip(acked).any(|f| f.acked) {
            violations.push(format!("harness: shard {shard} acked a batch after a crash froze"));
            continue;
        }
        let mut states: Vec<BTreeMap<String, String>> = vec![BTreeMap::new()];
        for f in &shard_facts {
            let mut next = states.last().unwrap().clone();
            for op in &f.ops {
                match op {
                    WalOp::Put(k, v) => {
                        next.insert(k.clone(), v.clone());
                    }
                    WalOp::Delete(k) => {
                        next.remove(k);
                    }
                }
            }
            states.push(next);
        }
        // The highest matching prefix decides: torn or reordered batches
        // match nothing, a lost acked batch matches only a too-short one.
        match states.iter().rposition(|s| s == recovered_shard) {
            None => violations.push(format!(
                "atomicity: shard {shard} recovered to a state that is no batch prefix \
                 (torn batch, torn group, or resurrected value): {recovered_shard:?}"
            )),
            Some(j) if j < acked => violations.push(format!(
                "durability: shard {shard} recovered only {j} of {acked} acknowledged batches"
            )),
            Some(_) => {}
        }
    }
    violations
}

fn run_armed(
    mode: Mode,
    plan: Option<&FaultPlan>,
    label: &str,
    hit: u64,
    seed: u64,
    image: u64,
) -> Vec<String> {
    let _chaos = plan.map(chaos::scoped);
    let session = crashpoint::arm(label, seed, Trigger::Nth(hit));
    let (fs, facts) = execute_workload(mode);
    let fired = crashpoint::fired();
    let image_seed = splitmix64(
        seed ^ crashpoint::label_hash(label) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ image,
    );
    fs.crash(image_seed);
    drop(session); // thaw: recovery is post-crash code and runs unfrozen
    let kv = KvStore::open(&fs, config(mode));
    let recovered: Vec<BTreeMap<String, String>> =
        (0..SHARDS).map(|s| kv.shard_snapshot(s)).collect();
    let mut violations = check(&facts, &recovered);
    // Recovery must be idempotent: opening the crashed image again (no
    // writes happened in between) reconstructs the same state.
    drop(kv);
    let again = KvStore::open(&fs, config(mode));
    for (s, rec) in recovered.iter().enumerate().take(SHARDS) {
        if &again.shard_snapshot(s) != rec {
            violations.push(format!("recovery of shard {s} is not idempotent"));
        }
    }
    if fired.is_none() {
        violations.push(format!(
            "harness: crash point {label} hit {hit} did not fire (nondeterministic workload?)"
        ));
    }
    violations
}

// ---- report ---------------------------------------------------------------

/// One `(hit, image)` draw that violated an invariant.
pub struct Failure {
    /// Which hit ordinal of the label crashed.
    pub hit: u64,
    /// Which crash-image draw.
    pub image: u64,
    /// The invariant violations recovery exhibited.
    pub violations: Vec<String>,
}

/// All draws for one crash-point label.
pub struct PointOutcome {
    /// The crash-point label.
    pub label: String,
    /// Hits the label received in the record pass.
    pub hits: u64,
    /// The draws that violated an invariant (empty = clean label).
    pub failures: Vec<Failure>,
}

/// One mode × schedule cell of the sweep.
pub struct ScheduleOutcome {
    /// The fault backdrop.
    pub schedule: Schedule,
    /// Total armed crash runs executed.
    pub runs: u64,
    /// Per-label outcomes, in first-seen order.
    pub points: Vec<PointOutcome>,
    /// Labels with at least one failing draw.
    pub flagged: Vec<String>,
    /// Verdict: the store must be clean at every crash point.
    pub ok: bool,
}

/// One store mode's outcomes across the schedules.
pub struct ModeOutcome {
    /// The concurrency mode driven.
    pub mode: Mode,
    /// One outcome per schedule.
    pub schedules: Vec<ScheduleOutcome>,
    /// All schedules were clean.
    pub ok: bool,
}

/// The `txfix-crash-kv-v1` report.
pub struct KvCrashReport {
    /// Run seed.
    pub seed: u64,
    /// Crash images drawn per `(label, hit)`.
    pub images_per_point: u64,
    /// Shards the scripted store runs with.
    pub shards: u64,
    /// Per-mode outcomes.
    pub modes: Vec<ModeOutcome>,
    /// Every mode was clean everywhere.
    pub ok: bool,
}

impl ToJson for KvCrashReport {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("seed", Json::int(self.seed)),
            ("block_bytes", Json::int(BLOCK_BYTES as u64)),
            ("images_per_point", Json::int(self.images_per_point)),
            ("shards", Json::int(self.shards)),
            (
                "modes",
                Json::list(self.modes.iter().map(|m| {
                    Json::obj([
                        ("mode", Json::str(m.mode.name())),
                        ("expected_clean", Json::Bool(true)),
                        (
                            "schedules",
                            Json::list(m.schedules.iter().map(|s| {
                                Json::obj([
                                    ("schedule", Json::str(s.schedule.name())),
                                    ("runs", Json::int(s.runs)),
                                    (
                                        "points",
                                        Json::list(s.points.iter().map(|p| {
                                            Json::obj([
                                                ("label", Json::str(&p.label)),
                                                ("hits", Json::int(p.hits)),
                                                (
                                                    "failures",
                                                    Json::list(p.failures.iter().map(|f| {
                                                        Json::obj([
                                                            ("hit", Json::int(f.hit)),
                                                            ("image", Json::int(f.image)),
                                                            (
                                                                "violations",
                                                                Json::strings(&f.violations),
                                                            ),
                                                        ])
                                                    })),
                                                ),
                                            ])
                                        })),
                                    ),
                                    ("flagged", Json::strings(&s.flagged)),
                                    ("ok", Json::Bool(s.ok)),
                                ])
                            })),
                        ),
                        ("ok", Json::Bool(m.ok)),
                    ])
                })),
            ),
            ("ok", Json::Bool(self.ok)),
        ])
    }
}

impl KvCrashReport {
    /// Human-readable table, one row per mode × schedule.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:<13} {:>6} {:>6} {:>8}  {}\n",
            "mode", "schedule", "points", "runs", "failures", "verdict"
        ));
        for m in &self.modes {
            for s in &m.schedules {
                let failures: usize = s.points.iter().map(|p| p.failures.len()).sum();
                let verdict = if s.ok {
                    "ok (clean at every crash point)".to_owned()
                } else {
                    format!("FAIL (flagged: {})", s.flagged.join(", "))
                };
                out.push_str(&format!(
                    "{:<8} {:<13} {:>6} {:>6} {:>8}  {}\n",
                    m.mode.name(),
                    s.schedule.name(),
                    s.points.len(),
                    s.runs,
                    failures,
                    verdict
                ));
            }
        }
        out.push_str(&format!("\nkv crash sweep: {}", if self.ok { "ok" } else { "FAILED" }));
        out
    }
}

/// Run the store crash-recovery sweep. Takes process-global crash-point
/// and chaos state; callers must not run it concurrently with other
/// armed harnesses.
pub fn run_kv_crash_check(cfg: &KvCrashConfig) -> KvCrashReport {
    let mut modes = Vec::new();
    for &mode in &cfg.modes {
        let mut schedules = Vec::new();
        for &schedule in &cfg.schedules {
            let plan = plan_for(schedule, cfg.seed);
            // Record pass: learn the crash-point universe of this cell.
            let universe = {
                let _chaos = plan.as_ref().map(chaos::scoped);
                let session = crashpoint::record();
                let _ = execute_workload(mode);
                let u = crashpoint::recording();
                drop(session);
                u
            };
            let mut points = Vec::new();
            let mut runs = 0u64;
            for (label, hits) in &universe {
                let mut failures = Vec::new();
                for hit in 1..=*hits {
                    for image in 0..cfg.images_per_point {
                        runs += 1;
                        let violations =
                            run_armed(mode, plan.as_ref(), label, hit, cfg.seed, image);
                        if !violations.is_empty() {
                            failures.push(Failure { hit, image, violations });
                        }
                    }
                }
                points.push(PointOutcome { label: label.clone(), hits: *hits, failures });
            }
            let flagged: Vec<String> =
                points.iter().filter(|p| !p.failures.is_empty()).map(|p| p.label.clone()).collect();
            let ok = flagged.is_empty();
            schedules.push(ScheduleOutcome { schedule, runs, points, flagged, ok });
        }
        let ok = schedules.iter().all(|s| s.ok);
        modes.push(ModeOutcome { mode, schedules, ok });
    }
    let ok = modes.iter().all(|m| m.ok);
    KvCrashReport {
        seed: cfg.seed,
        images_per_point: cfg.images_per_point,
        shards: SHARDS as u64,
        modes,
        ok,
    }
}
