//! CS3: Apache-II (§5.4.3) — request loop with one buffered-log write per
//! request. Paper shape: Recipe 2 within ~4% of the developers' per-log
//! locks, with equal cross-log concurrency.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};
use txfix_apps::apache::buffered_log::{make_record, RECORD_LEN};
use txfix_apps::apache::{LockedBufferedLog, LogWriter, TmBufferedLog};
use txfix_stm::OverheadModel;
use txfix_xcall::SimFs;

const THREADS: usize = 4;
const REQUESTS: u64 = 500;

fn busy(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

fn serve(log: &dyn LogWriter) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..REQUESTS {
                    busy(Duration::from_micros(8));
                    log.write_record(&make_record(t, i));
                }
            });
        }
    });
    log.flush();
}

fn bench_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("apache_ii");
    g.sample_size(10);

    let fs = SimFs::new();
    let dev = LockedBufferedLog::new(&fs, "dev.log", 64 * RECORD_LEN);
    g.bench_function("developer_fix_per_log_lock", |b| b.iter(|| serve(&dev)));

    let tm =
        TmBufferedLog::with_overhead(&fs, "tm.log", 64 * RECORD_LEN, OverheadModel::SOFTWARE_TM);
    g.bench_function("recipe2_atomic_xcall", |b| b.iter(|| serve(&tm)));

    // Cross-log concurrency check: two independent logs, two threads each.
    let dev_a = LockedBufferedLog::new(&fs, "a.log", 64 * RECORD_LEN);
    let dev_b = LockedBufferedLog::new(&fs, "b.log", 64 * RECORD_LEN);
    g.bench_function("developer_fix_two_logs", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                s.spawn(|| serve_one(&dev_a, 0));
                s.spawn(|| serve_one(&dev_b, 1));
            })
        })
    });
    let tm_a =
        TmBufferedLog::with_overhead(&fs, "ta.log", 64 * RECORD_LEN, OverheadModel::SOFTWARE_TM);
    let tm_b =
        TmBufferedLog::with_overhead(&fs, "tb.log", 64 * RECORD_LEN, OverheadModel::SOFTWARE_TM);
    g.bench_function("recipe2_two_logs", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                s.spawn(|| serve_one(&tm_a, 0));
                s.spawn(|| serve_one(&tm_b, 1));
            })
        })
    });

    g.finish();
}

fn serve_one(log: &dyn LogWriter, t: usize) {
    for i in 0..REQUESTS {
        busy(Duration::from_micros(8));
        log.write_record(&make_record(t, i));
    }
    log.flush();
}

criterion_group!(benches, bench_log);
criterion_main!(benches);
