//! Recipe-applicability analysis: the decision procedure of paper §5.3,
//! extracted from its prose into executable rules.
//!
//! Given a [`BugRecord`], [`analyze`] decides whether TM can fix the bug,
//! with which primary recipe, which sophisticated recipe (3 or 4) can
//! *simplify* the fix, and — when TM cannot help — why.

use crate::bug::{BugChars, BugKind, BugRecord, MissingSync};
use std::fmt;

/// The paper's four fix recipes (§4.2–§4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Recipe {
    /// Recipe 1: replace deadlock-prone locks with atomic regions.
    ReplaceLocks,
    /// Recipe 2: wrap all conflicting code regions in atomic regions.
    WrapAll,
    /// Recipe 3: asymmetric deadlock preemption with revocable resources.
    DeadlockPreemption,
    /// Recipe 4: wrap only the unprotected region, serialized against all
    /// lock critical sections.
    WrapUnprotected,
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Recipe::ReplaceLocks => write!(f, "recipe 1 (replace deadlock-prone locks)"),
            Recipe::WrapAll => write!(f, "recipe 2 (wrap all)"),
            Recipe::DeadlockPreemption => write!(f, "recipe 3 (deadlock preemption)"),
            Recipe::WrapUnprotected => write!(f, "recipe 4 (wrap unprotected)"),
        }
    }
}

impl Recipe {
    /// Stable machine-readable identifier, used by the JSON report
    /// formats (`txfix analyze --json`, `txfix lint --json`).
    pub fn slug(self) -> &'static str {
        match self {
            Recipe::ReplaceLocks => "replace-locks",
            Recipe::WrapAll => "wrap-all",
            Recipe::DeadlockPreemption => "deadlock-preemption",
            Recipe::WrapUnprotected => "wrap-unprotected",
        }
    }

    /// Parse a [`Recipe::slug`] back.
    ///
    /// # Errors
    ///
    /// When `s` is not one of the four slugs.
    pub fn from_slug(s: &str) -> Result<Recipe, String> {
        match s {
            "replace-locks" => Ok(Recipe::ReplaceLocks),
            "wrap-all" => Ok(Recipe::WrapAll),
            "deadlock-preemption" => Ok(Recipe::DeadlockPreemption),
            "wrap-unprotected" => Ok(Recipe::WrapUnprotected),
            other => Err(format!("unknown recipe {other:?}")),
        }
    }
}

/// The coarse hazard classes the detectors (dynamic and static) report,
/// used to map a finding onto the recipe that addresses it and to match
/// static findings against dynamic ones. Data races and atomicity
/// violations share one class: both are unserialized access to shared
/// data, and the same wrap fixes both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HazardClass {
    /// A cycle in the lock-order graph (potential deadlock).
    LockCycle,
    /// A condition-variable wait that keeps a lock a notifier needs.
    WaitCycle,
    /// Shared data reachable without common serialization (a data race
    /// or a torn read-modify-write / multi-location invariant).
    SharedData,
    /// A notification that can fire before its waiter is ready.
    LostWakeup,
}

impl fmt::Display for HazardClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HazardClass::LockCycle => write!(f, "lock-order cycle"),
            HazardClass::WaitCycle => write!(f, "wait-with-held-lock cycle"),
            HazardClass::SharedData => write!(f, "unserialized shared data"),
            HazardClass::LostWakeup => write!(f, "lost wakeup"),
        }
    }
}

/// The recipe a finding of `class` gets when no corpus record ties it to
/// the §5.3 decision procedure: the simple recipe of the matching bug
/// kind (1 for lock cycles, 2 for data), and preemption for CV hazards,
/// which atomic regions alone cannot express.
pub fn fallback_recipe(class: HazardClass) -> Recipe {
    match class {
        HazardClass::LockCycle => Recipe::ReplaceLocks,
        HazardClass::WaitCycle => Recipe::DeadlockPreemption,
        HazardClass::SharedData => Recipe::WrapAll,
        HazardClass::LostWakeup => Recipe::WrapAll,
    }
}

/// The candidate recipes a linter should synthesize for a finding of
/// `class`: the §5.3 plan (primary first, then the simplifying recipe)
/// when the finding is tied to an analyzed corpus bug, the per-class
/// default otherwise, and nothing when the analysis says TM cannot fix
/// the bug.
pub fn recipe_candidates(analysis: Option<&Analysis>, class: HazardClass) -> Vec<Recipe> {
    match analysis {
        Some(Analysis::Fixable(plan)) => {
            let mut out = vec![plan.primary];
            out.extend(plan.simplified_by);
            out
        }
        Some(Analysis::Unfixable(_)) => Vec::new(),
        None => vec![fallback_recipe(class)],
    }
}

/// Why TM cannot fix a bug (§5.3.1 / §5.3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnfixableReason {
    /// Nested monitor lockout: the deadlock requires two-way communication
    /// that preemption/retry cannot untangle.
    TwoWayCommunication,
    /// Non-preemptible code spanning multiple modules — fixing would mean
    /// rewriting every module (and some, like third-party plugins, cannot
    /// be changed).
    MultiModuleNonPreemptible,
    /// A design error (e.g. waiting on a destroyed component), not a
    /// mutual-exclusion problem.
    DesignFlaw,
    /// The region must hold atomicity across a long-latency operation and
    /// its completion callback; an (inevitable) transaction would block
    /// the whole process.
    LongLatencyCallback,
    /// Exactly-once execution semantics are required, beyond TM's
    /// guarantees.
    ExactlyOnce,
    /// The violated atomicity is of I/O across process boundaries, which
    /// process-local TM cannot cover.
    CrossProcessIo,
}

impl fmt::Display for UnfixableReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfixableReason::TwoWayCommunication => {
                write!(f, "two-way communication (nested monitor lockout)")
            }
            UnfixableReason::MultiModuleNonPreemptible => {
                write!(f, "non-preemptible code across multiple modules")
            }
            UnfixableReason::DesignFlaw => write!(f, "design flaw, not a mutual-exclusion problem"),
            UnfixableReason::LongLatencyCallback => {
                write!(f, "atomicity across a long-latency operation and its callback")
            }
            UnfixableReason::ExactlyOnce => write!(f, "requires exactly-once semantics beyond TM"),
            UnfixableReason::CrossProcessIo => write!(f, "atomicity of cross-process I/O"),
        }
    }
}

/// Result of analyzing one bug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Analysis {
    /// TM can fix the bug.
    Fixable(FixPlan),
    /// TM cannot fix the bug.
    Unfixable(UnfixableReason),
}

/// How TM fixes a fixable bug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixPlan {
    /// The recipe that fixes the bug with the fewest ingredients
    /// (straightforward recipes preferred, matching the paper's "Recipes 1
    /// and 2 are sufficient to tackle 40 of the 43").
    pub primary: Recipe,
    /// A sophisticated recipe that *also* works and reduces the fix's
    /// implementation effort (Recipe 3 localizes lock replacement; Recipe
    /// 4 avoids duplicating existing locking effort).
    pub simplified_by: Option<Recipe>,
}

impl Analysis {
    /// Whether TM can fix the bug.
    pub fn is_fixable(&self) -> bool {
        matches!(self, Analysis::Fixable(_))
    }

    /// The fix plan, if fixable.
    pub fn plan(&self) -> Option<&FixPlan> {
        match self {
            Analysis::Fixable(p) => Some(p),
            Analysis::Unfixable(_) => None,
        }
    }
}

/// Decide whether and how TM can fix `bug`.
pub fn analyze(bug: &BugRecord) -> Analysis {
    match bug.kind {
        BugKind::Deadlock => analyze_deadlock(&bug.chars),
        BugKind::AtomicityViolation => analyze_atomicity(&bug.chars),
    }
}

fn analyze_deadlock(c: &BugChars) -> Analysis {
    // §5.3.1, "When TM does not work".
    if c.two_way_communication {
        return Analysis::Unfixable(UnfixableReason::TwoWayCommunication);
    }
    if c.design_flaw {
        return Analysis::Unfixable(UnfixableReason::DesignFlaw);
    }
    if c.multi_module && c.non_preemptible {
        return Analysis::Unfixable(UnfixableReason::MultiModuleNonPreemptible);
    }

    if c.cv_wait {
        // Deadlocks through condition-variable waits: atomic regions alone
        // (Recipe 1) cannot express them; only preemption + retry works,
        // and only if the waiting thread can be rolled back.
        if c.non_preemptible {
            return Analysis::Unfixable(UnfixableReason::MultiModuleNonPreemptible);
        }
        return Analysis::Fixable(FixPlan {
            primary: Recipe::DeadlockPreemption,
            simplified_by: None,
        });
    }

    debug_assert!(c.lock_cycle, "a TM-relevant deadlock is a lock cycle or a CV wait");
    // Pure lock-order inversions: Recipe 1 always applies (inevitability
    // handles non-preemptible sections). Recipe 3 additionally applies —
    // and localizes the fix — when at least one participant can be rolled
    // back.
    Analysis::Fixable(FixPlan {
        primary: Recipe::ReplaceLocks,
        simplified_by: if c.non_preemptible { None } else { Some(Recipe::DeadlockPreemption) },
    })
}

fn analyze_atomicity(c: &BugChars) -> Analysis {
    // §5.3.2, "When TM does not work".
    if c.long_latency_callback {
        return Analysis::Unfixable(UnfixableReason::LongLatencyCallback);
    }
    if c.exactly_once {
        return Analysis::Unfixable(UnfixableReason::ExactlyOnce);
    }
    if c.cross_process_io {
        return Analysis::Unfixable(UnfixableReason::CrossProcessIo);
    }

    let missing = c
        .missing_sync
        .expect("atomicity-violation records must classify their missing synchronization");

    // Recipe 2 fixes every remaining AV; Recipe 4 additionally applies —
    // and saves re-doing the existing synchronization work — whenever the
    // violation is asymmetric: some regions already express their
    // atomicity objective (with the intended lock, the wrong lock, or an
    // ad hoc mechanism) and only the buggy region needs wrapping.
    let simplified_by = match missing {
        MissingSync::Partial | MissingSync::WrongLock | MissingSync::AdHoc => {
            Some(Recipe::WrapUnprotected)
        }
        MissingSync::Complete => None,
    };
    Analysis::Fixable(FixPlan { primary: Recipe::WrapAll, simplified_by })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bug::{App, DevFix, Difficulty, Downcalls};

    fn record(kind: BugKind, chars: BugChars) -> BugRecord {
        BugRecord {
            id: "Test#1",
            app: App::Mozilla,
            kind,
            synthetic_id: true,
            summary: "test",
            chars,
            dev_fix: DevFix { difficulty: Difficulty::Medium, loc: 10, attempts: 1 },
            scenario: None,
        }
    }

    #[test]
    fn lock_cycle_is_recipe1_with_recipe3_simplification() {
        let a = analyze(&record(
            BugKind::Deadlock,
            BugChars { lock_cycle: true, fix_sites: 4, ..Default::default() },
        ));
        let plan = a.plan().expect("fixable");
        assert_eq!(plan.primary, Recipe::ReplaceLocks);
        assert_eq!(plan.simplified_by, Some(Recipe::DeadlockPreemption));
    }

    #[test]
    fn non_preemptible_lock_cycle_is_recipe1_only() {
        let a = analyze(&record(
            BugKind::Deadlock,
            BugChars { lock_cycle: true, non_preemptible: true, ..Default::default() },
        ));
        let plan = a.plan().expect("fixable");
        assert_eq!(plan.primary, Recipe::ReplaceLocks);
        assert_eq!(plan.simplified_by, None);
    }

    #[test]
    fn cv_wait_deadlock_needs_recipe3() {
        let a = analyze(&record(
            BugKind::Deadlock,
            BugChars {
                cv_wait: true,
                downcalls: Downcalls { retry: true, ..Downcalls::NONE },
                ..Default::default()
            },
        ));
        assert_eq!(a.plan().unwrap().primary, Recipe::DeadlockPreemption);
    }

    #[test]
    fn nested_monitor_lockout_is_unfixable() {
        let a = analyze(&record(
            BugKind::Deadlock,
            BugChars { cv_wait: true, two_way_communication: true, ..Default::default() },
        ));
        assert_eq!(a, Analysis::Unfixable(UnfixableReason::TwoWayCommunication));
    }

    #[test]
    fn multi_module_non_preemptible_is_unfixable() {
        let a = analyze(&record(
            BugKind::Deadlock,
            BugChars {
                lock_cycle: true,
                multi_module: true,
                non_preemptible: true,
                ..Default::default()
            },
        ));
        assert_eq!(a, Analysis::Unfixable(UnfixableReason::MultiModuleNonPreemptible));
    }

    #[test]
    fn design_flaw_is_unfixable() {
        let a = analyze(&record(
            BugKind::Deadlock,
            BugChars { design_flaw: true, ..Default::default() },
        ));
        assert_eq!(a, Analysis::Unfixable(UnfixableReason::DesignFlaw));
    }

    #[test]
    fn complete_missing_sync_is_recipe2() {
        let a = analyze(&record(
            BugKind::AtomicityViolation,
            BugChars {
                missing_sync: Some(MissingSync::Complete),
                single_atomic_block: true,
                ..Default::default()
            },
        ));
        let plan = a.plan().unwrap();
        assert_eq!(plan.primary, Recipe::WrapAll);
        assert_eq!(plan.simplified_by, None);
    }

    #[test]
    fn partial_missing_sync_is_simplified_by_recipe4() {
        let a = analyze(&record(
            BugKind::AtomicityViolation,
            BugChars { missing_sync: Some(MissingSync::Partial), ..Default::default() },
        ));
        let plan = a.plan().unwrap();
        assert_eq!(plan.primary, Recipe::WrapAll);
        assert_eq!(plan.simplified_by, Some(Recipe::WrapUnprotected));
    }

    #[test]
    fn unfixable_av_reasons() {
        for (chars, reason) in [
            (
                BugChars {
                    missing_sync: Some(MissingSync::Complete),
                    long_latency_callback: true,
                    ..Default::default()
                },
                UnfixableReason::LongLatencyCallback,
            ),
            (
                BugChars {
                    missing_sync: Some(MissingSync::Complete),
                    exactly_once: true,
                    ..Default::default()
                },
                UnfixableReason::ExactlyOnce,
            ),
            (
                BugChars {
                    missing_sync: Some(MissingSync::Partial),
                    cross_process_io: true,
                    ..Default::default()
                },
                UnfixableReason::CrossProcessIo,
            ),
        ] {
            let a = analyze(&record(BugKind::AtomicityViolation, chars));
            assert_eq!(a, Analysis::Unfixable(reason));
        }
    }

    #[test]
    fn recipe_slugs_round_trip() {
        for recipe in [
            Recipe::ReplaceLocks,
            Recipe::WrapAll,
            Recipe::DeadlockPreemption,
            Recipe::WrapUnprotected,
        ] {
            assert_eq!(Recipe::from_slug(recipe.slug()), Ok(recipe));
        }
        assert!(Recipe::from_slug("recipe-5").is_err());
    }

    #[test]
    fn recipe_candidates_follow_the_plan_when_there_is_one() {
        let plan = Analysis::Fixable(FixPlan {
            primary: Recipe::WrapAll,
            simplified_by: Some(Recipe::WrapUnprotected),
        });
        assert_eq!(
            recipe_candidates(Some(&plan), HazardClass::SharedData),
            vec![Recipe::WrapAll, Recipe::WrapUnprotected]
        );
        let unfixable = Analysis::Unfixable(UnfixableReason::DesignFlaw);
        assert!(recipe_candidates(Some(&unfixable), HazardClass::LockCycle).is_empty());
        assert_eq!(recipe_candidates(None, HazardClass::LockCycle), vec![Recipe::ReplaceLocks]);
        assert_eq!(
            recipe_candidates(None, HazardClass::WaitCycle),
            vec![Recipe::DeadlockPreemption]
        );
    }

    #[test]
    fn recipe_display_mentions_number() {
        assert!(Recipe::ReplaceLocks.to_string().contains("recipe 1"));
        assert!(Recipe::WrapAll.to_string().contains("recipe 2"));
        assert!(Recipe::DeadlockPreemption.to_string().contains("recipe 3"));
        assert!(Recipe::WrapUnprotected.to_string().contains("recipe 4"));
    }
}
