//! A small durable KV map on top of the WAL — the crash sweep's test
//! subject.

use crate::redo::{recover, Wal, WalVariant};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use txfix_stm::{Txn, TxnError};
use txfix_xcall::SimFs;

/// A durable string map: every `put_many` is one WAL transaction, and
/// reopening the store replays the log.
pub struct DurableKv {
    wal: Wal,
    mem: Mutex<BTreeMap<String, String>>,
    next_txid: AtomicU64,
}

impl DurableKv {
    /// Open the store at `path`, replaying whatever the log holds.
    pub fn open(fs: &SimFs, path: &str, variant: WalVariant) -> DurableKv {
        let wal = Wal::open(fs, path, variant);
        let rec = recover(wal.file().file());
        DurableKv { wal, mem: Mutex::new(rec.map), next_txid: AtomicU64::new(rec.next_txid.max(1)) }
    }

    /// The underlying log.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Apply `puts` atomically and durably; the returned txid is the
    /// acknowledgement that the batch is committed.
    ///
    /// # Errors
    ///
    /// [`TxnError`] when the logging transaction fails terminally.
    pub fn put_many(&self, puts: &[(String, String)]) -> Result<u64, TxnError> {
        let txid = self.next_txid.fetch_add(1, Ordering::SeqCst);
        Txn::build().try_run(|txn| self.wal.x_log_txn(txn, txid, puts))?;
        let mut mem = self.mem.lock().unwrap();
        for (k, v) in puts {
            mem.insert(k.clone(), v.clone());
        }
        Ok(txid)
    }

    /// Start logging `puts`, then cancel the transaction — a client that
    /// changed its mind mid-batch. Nothing may reach the log or the map;
    /// the returned txid is what the crash checker's no-resurrection
    /// invariant watches for.
    pub fn put_many_cancelled(&self, puts: &[(String, String)]) -> u64 {
        let txid = self.next_txid.fetch_add(1, Ordering::SeqCst);
        let res = Txn::build().try_run(|txn| {
            self.wal.x_log_txn(txn, txid, puts)?;
            txn.cancel::<()>()
        });
        debug_assert!(matches!(res, Err(TxnError::Cancelled)));
        txid
    }

    /// Read one key from the in-memory image.
    pub fn get(&self, key: &str) -> Option<String> {
        self.mem.lock().unwrap().get(key).cloned()
    }

    /// Snapshot of the in-memory image.
    pub fn snapshot(&self) -> BTreeMap<String, String> {
        self.mem.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn puts(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect()
    }

    #[test]
    fn reopen_replays_the_log() {
        let fs = SimFs::new();
        {
            let kv = DurableKv::open(&fs, "kv", WalVariant::Fixed);
            kv.put_many(&puts(&[("a", "a1"), ("b", "b1")])).unwrap();
            kv.put_many(&puts(&[("a", "a2")])).unwrap();
        }
        let kv = DurableKv::open(&fs, "kv", WalVariant::Fixed);
        assert_eq!(kv.get("a").as_deref(), Some("a2"));
        assert_eq!(kv.get("b").as_deref(), Some("b1"));
        // Txids keep advancing across reopen.
        assert_eq!(kv.put_many(&puts(&[("c", "c3")])).unwrap(), 3);
    }

    #[test]
    fn cancelled_batches_leave_no_trace() {
        let fs = SimFs::new();
        let kv = DurableKv::open(&fs, "kv", WalVariant::Fixed);
        kv.put_many(&puts(&[("a", "a1")])).unwrap();
        let cancelled = kv.put_many_cancelled(&puts(&[("a", "poison")]));
        assert_eq!(kv.get("a").as_deref(), Some("a1"));
        let rec = recover(kv.wal().file().file());
        assert!(!rec.committed.contains(&cancelled));
        assert!(!rec.records.contains_key(&cancelled), "no record bytes at all");
    }
}
