//! The happens-before race detector.
//!
//! Replays a recorded trace with vector clocks. The trace's append order is
//! a valid linearization (every hook emits its event while the
//! synchronization it models is still in force), so replay is a single
//! forward pass:
//!
//! - each lock carries a clock; `LockAcquired` joins it into the thread,
//!   `LockReleased` joins the thread into it — the release→acquire edge;
//! - committed transactions are critical sections of one **virtual global
//!   STM lock**: their buffered accesses take effect at the commit event,
//!   mutually serialized, exactly the atomicity the runtime guarantees;
//!   aborted attempts are discarded;
//! - two accesses **race** when they touch the same object, at least one
//!   writes, they are unordered by the clocks, and at least one of them is
//!   not hardware-atomic. Atomic/atomic conflicts (and transactional
//!   accesses, which the virtual lock orders) are synchronization, not
//!   races.
//!
//! Per object the detector keeps only the *latest* access per
//! (thread, writes, atomic) class: program order makes an earlier access of
//! the same class ordered whenever the latest one is, so the compression is
//! lossless for detection.

use crate::vc::VectorClock;
use std::collections::HashMap;
use txfix_stm::trace::{AccessKind, EventKind, TraceEvent};

/// One detected data race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    /// Trace identity of the racing object.
    pub object: u64,
    /// The object's diagnostic name.
    pub name: String,
    /// Recorder ids of the two racing threads.
    pub threads: (u64, u64),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct AccessClass {
    thread: u64,
    writes: bool,
    atomic: bool,
}

#[derive(Default)]
struct ObjectState {
    name: String,
    /// Latest access epoch (the accessor's own clock component at access
    /// time) per access class.
    last: HashMap<AccessClass, u64>,
    raced: bool,
}

/// Serial number of the virtual lock that orders transaction commits. Real
/// lock ids come from small counters (txlock) or carry the object tag
/// (trace ids), so `u64::MAX` is free.
const STM_LOCK: u64 = u64::MAX;

/// Detect data races in `events` (first race per object reported).
pub fn detect_races(events: &[TraceEvent]) -> Vec<Race> {
    let mut threads: HashMap<u64, VectorClock> = HashMap::new();
    let mut locks: HashMap<u64, VectorClock> = HashMap::new();
    let mut pending: HashMap<u64, Vec<(u64, AccessKind)>> = HashMap::new();
    let mut objects: HashMap<u64, ObjectState> = HashMap::new();
    let mut races = Vec::new();

    for ev in events {
        let t = ev.thread;
        let clock = threads.entry(t).or_default();
        clock.tick(t);
        match &ev.kind {
            EventKind::LockAcquired { lock, .. } => {
                if let Some(l) = locks.get(lock) {
                    clock.join(l);
                }
            }
            EventKind::LockReleased { lock } => {
                locks.entry(*lock).or_default().join(clock);
            }
            EventKind::TxnAccess { serial, var, kind } => {
                pending.entry(*serial).or_default().push((*var, *kind));
            }
            EventKind::TxnAbort { serial } => {
                pending.remove(serial);
            }
            EventKind::TxnCommit { serial } => {
                if let Some(l) = locks.get(&STM_LOCK) {
                    clock.join(l);
                }
                let clock_snapshot = clock.clone();
                for (var, kind) in pending.remove(serial).unwrap_or_default() {
                    record(
                        &mut objects,
                        &mut races,
                        var,
                        format!("tvar#{var}"),
                        t,
                        kind.writes(),
                        true,
                        &clock_snapshot,
                    );
                }
                locks.entry(STM_LOCK).or_default().join(threads.entry(t).or_default());
            }
            EventKind::SharedAccess { object, name, kind, atomic } => {
                let clock_snapshot = threads.entry(t).or_default().clone();
                record(
                    &mut objects,
                    &mut races,
                    *object,
                    name.clone(),
                    t,
                    kind.writes(),
                    *atomic,
                    &clock_snapshot,
                );
            }
            // Attempts, begins and condvar traffic carry no inter-thread
            // ordering the passes rely on.
            EventKind::LockAttempt { .. }
            | EventKind::TxnBegin { .. }
            | EventKind::CvWait { .. }
            | EventKind::CvNotify { .. }
            | EventKind::RetryNotify => {}
        }
    }
    races
}

#[allow(clippy::too_many_arguments)]
fn record(
    objects: &mut HashMap<u64, ObjectState>,
    races: &mut Vec<Race>,
    object: u64,
    name: String,
    thread: u64,
    writes: bool,
    atomic: bool,
    clock: &VectorClock,
) {
    let state = objects.entry(object).or_default();
    if state.name.is_empty() {
        state.name = name;
    }
    if !state.raced {
        for (class, &epoch) in &state.last {
            let conflicting = class.thread != thread && (class.writes || writes);
            let unordered = epoch > clock.get(class.thread);
            let plain = !class.atomic || !atomic;
            if conflicting && unordered && plain {
                races.push(Race {
                    object,
                    name: state.name.clone(),
                    threads: (class.thread, thread),
                });
                state.raced = true;
                break;
            }
        }
    }
    state.last.insert(AccessClass { thread, writes, atomic }, clock.get(thread));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { thread, kind }
    }

    fn access(thread: u64, object: u64, kind: AccessKind, atomic: bool) -> TraceEvent {
        ev(thread, EventKind::SharedAccess { object, name: format!("obj#{object}"), kind, atomic })
    }

    #[test]
    fn unordered_write_write_is_a_race() {
        let races = detect_races(&[
            access(1, 7, AccessKind::Write, false),
            access(2, 7, AccessKind::Write, false),
        ]);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].object, 7);
    }

    #[test]
    fn reads_never_race() {
        let races = detect_races(&[
            access(1, 7, AccessKind::Read, false),
            access(2, 7, AccessKind::Read, false),
        ]);
        assert!(races.is_empty());
    }

    #[test]
    fn atomic_accesses_never_race() {
        let races = detect_races(&[
            access(1, 7, AccessKind::Rmw, true),
            access(2, 7, AccessKind::Rmw, true),
        ]);
        assert!(races.is_empty());
    }

    #[test]
    fn lock_ordering_suppresses_the_race() {
        let races = detect_races(&[
            ev(1, EventKind::LockAcquired { lock: 1, name: "m".into() }),
            access(1, 7, AccessKind::Write, false),
            ev(1, EventKind::LockReleased { lock: 1 }),
            ev(2, EventKind::LockAcquired { lock: 1, name: "m".into() }),
            access(2, 7, AccessKind::Write, false),
            ev(2, EventKind::LockReleased { lock: 1 }),
        ]);
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn different_locks_do_not_order() {
        let races = detect_races(&[
            ev(1, EventKind::LockAcquired { lock: 1, name: "a".into() }),
            access(1, 7, AccessKind::Write, false),
            ev(1, EventKind::LockReleased { lock: 1 }),
            ev(2, EventKind::LockAcquired { lock: 2, name: "b".into() }),
            access(2, 7, AccessKind::Write, false),
            ev(2, EventKind::LockReleased { lock: 2 }),
        ]);
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn committed_transactions_are_mutually_ordered() {
        let races = detect_races(&[
            ev(1, EventKind::TxnBegin { serial: 10 }),
            ev(1, EventKind::TxnAccess { serial: 10, var: 7, kind: AccessKind::Write }),
            ev(1, EventKind::TxnCommit { serial: 10 }),
            ev(2, EventKind::TxnBegin { serial: 11 }),
            ev(2, EventKind::TxnAccess { serial: 11, var: 7, kind: AccessKind::Write }),
            ev(2, EventKind::TxnCommit { serial: 11 }),
        ]);
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn aborted_accesses_are_discarded() {
        let races = detect_races(&[
            ev(1, EventKind::TxnBegin { serial: 10 }),
            ev(1, EventKind::TxnAccess { serial: 10, var: 7, kind: AccessKind::Write }),
            ev(1, EventKind::TxnAbort { serial: 10 }),
            access(2, 7, AccessKind::Write, false),
        ]);
        assert!(races.is_empty());
    }

    #[test]
    fn one_race_per_object() {
        let races = detect_races(&[
            access(1, 7, AccessKind::Write, false),
            access(2, 7, AccessKind::Write, false),
            access(1, 7, AccessKind::Write, false),
            access(2, 7, AccessKind::Write, false),
        ]);
        assert_eq!(races.len(), 1);
    }
}
