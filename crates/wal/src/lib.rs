//! # txfix-wal: a write-ahead log over transactional files, plus the
//! crash-recovery checker
//!
//! The xCall layer exists so transactions can defer and compensate
//! system effects — but the question that motivates all of that is *what
//! survives a crash?* This crate closes the loop. It provides:
//!
//! * [`Wal`] — a redo log written through [`XFile`] with a commit-marker
//!   protocol: per transaction, append the `P`ut records, `fsync`, append
//!   the `C`ommit marker, `fsync` again. A recovery replayer applies
//!   exactly the transactions whose commit marker is durable.
//! * [`WalVariant::CommitBeforeFsync`] — the intentionally buggy protocol
//!   from the FIRST reference-WAL case study (SNIPPETS §2): the commit
//!   marker is appended *before* the records are synced, so a crash can
//!   persist the marker without its records and recovery replays a torn
//!   transaction.
//! * [`DurableKv`] — a small durable KV map on top of the log, the test
//!   subject the crash sweep drives.
//! * [`checker`] — the recovery checker behind `txfix crash`: for every
//!   crash point × hit × image seed it freezes the world, takes a seeded
//!   crash image, recovers, and asserts atomicity, durability and
//!   no-resurrection.
//!
//! ## Record format
//!
//! One record per line, space-separated tokens from `[A-Za-z0-9_]`,
//! closed by a `;` terminator token:
//!
//! ```text
//! P <txid> <key> <value> ;
//! D <txid> <key> ;
//! C <txid> ;
//! ```
//!
//! The strict charset plus the explicit terminator make torn writes
//! detectable without checksums: a crash hole (zero bytes) or a missing
//! tail never parses as a valid record, so recovery can skip garbage
//! lines deterministically.

#![warn(missing_docs)]

pub mod checker;
mod kv;
mod redo;

pub use kv::DurableKv;
pub use redo::{
    is_token, recover, recover_and_compact, Recovery, Wal, WalOp, WalVariant, AFTER_COMMIT_WRITE,
};
