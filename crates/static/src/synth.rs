//! Recipe synthesis and static fix verification.
//!
//! For a finding, [`apply`] transforms the summary IR the way the
//! paper's recipe would transform the code:
//!
//! - **Recipe 1** (replace locks): every acquire/release of a cycle
//!   lock becomes atomic-region entry/exit.
//! - **Recipe 2** (wrap all): every path touching the affected
//!   locations gets its touching span wrapped in a plain atomic region
//!   (spans grow to respect lock and region nesting). For lost
//!   wakeups, the wait/notify pair is replaced by wrapping the monitor
//!   regions — the TM retry idiom.
//! - **Recipe 3** (deadlock preemption): one participant of the cycle
//!   becomes a preemptible transaction — wrapped in an atomic region
//!   with its cycle-lock acquisitions revocable; a condition wait is
//!   replaced by transactional retry.
//! - **Recipe 4** (wrap unprotected): only the under-protected paths
//!   are wrapped, in an atomic region serialized against every lock the
//!   location is elsewhere protected by; lock critical sections the
//!   wrap subsumes are dropped, as the serialization replaces them.
//!
//! [`synthesize`] then re-runs every static pass on the transformed
//! summary and reports whether the fix **clears the finding** (no
//! residual hazard overlapping it) **without introducing new hazards**
//! (every remaining finding was already in the baseline) — the
//! VeriFix-style check that a proposed fix does not trade a race for a
//! deadlock.

use crate::facts::accesses;
use crate::ir::{Op, PathSummary, ScenarioSummary};
use crate::report::{Finding, Hazard};
use std::collections::BTreeSet;
use txfix_core::Recipe;

/// The result of statically verifying one synthesized fix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verification {
    /// The recipe that was applied.
    pub recipe: Recipe,
    /// Whether the transformed summaries pass both checks.
    pub verified: bool,
    /// Hazards still overlapping the target finding after the fix.
    pub residual: Vec<String>,
    /// Hazards present after the fix that the baseline did not have.
    pub introduced: Vec<String>,
}

/// Transform `summary` as `recipe` would to address `hazard`, or `None`
/// when the recipe does not apply to that hazard class.
pub fn apply(
    summary: &ScenarioSummary,
    hazard: &Hazard,
    recipe: Recipe,
) -> Option<ScenarioSummary> {
    match (recipe, hazard) {
        (Recipe::ReplaceLocks, Hazard::LockCycle { locks }) => Some(replace_locks(summary, locks)),
        (Recipe::DeadlockPreemption, Hazard::LockCycle { locks }) => preempt_cycle(summary, locks),
        (Recipe::DeadlockPreemption, Hazard::WaitCycle { cv, .. }) => {
            Some(preempt_wait(summary, cv))
        }
        (Recipe::WrapAll, Hazard::Race { loc }) => {
            Some(wrap_all(summary, std::slice::from_ref(loc)))
        }
        (Recipe::WrapAll, Hazard::Atomicity { locs }) => Some(wrap_all(summary, locs)),
        (Recipe::WrapAll, Hazard::LostWakeup { cv, .. }) => {
            Some(retire_monitor(summary, cv, false))
        }
        (Recipe::WrapUnprotected, Hazard::Race { loc }) => {
            Some(wrap_unprotected(summary, std::slice::from_ref(loc)))
        }
        (Recipe::WrapUnprotected, Hazard::Atomicity { locs }) => {
            Some(wrap_unprotected(summary, locs))
        }
        (Recipe::WrapUnprotected, Hazard::LostWakeup { cv, .. }) => {
            Some(retire_monitor(summary, cv, true))
        }
        _ => None,
    }
}

/// Apply `recipe` to `summary` for `target` and statically re-verify:
/// the target hazard must be gone and nothing new may appear relative to
/// `baseline` (the findings on the untransformed summary).
pub fn synthesize(
    summary: &ScenarioSummary,
    baseline: &[Finding],
    target: &Hazard,
    recipe: Recipe,
) -> Verification {
    let Some(transformed) = apply(summary, target, recipe) else {
        return Verification {
            recipe,
            verified: false,
            residual: vec![format!("{recipe} does not address a {}", target.class())],
            introduced: Vec::new(),
        };
    };
    debug_assert_eq!(transformed.validate(), Ok(()), "transform broke summary structure");
    let after = crate::check(&transformed);
    let residual: Vec<String> =
        after.iter().filter(|f| f.hazard.overlaps(target)).map(|f| f.hazard.to_string()).collect();
    let introduced: Vec<String> = after
        .iter()
        .filter(|f| !baseline.iter().any(|b| b.hazard.overlaps(&f.hazard)))
        .map(|f| f.hazard.to_string())
        .collect();
    Verification {
        recipe,
        verified: residual.is_empty() && introduced.is_empty(),
        residual,
        introduced,
    }
}

/// Recipe 1: every acquire/release of a cycle lock becomes atomic-region
/// entry/exit, in every path.
pub(crate) fn replace_locks(summary: &ScenarioSummary, locks: &[String]) -> ScenarioSummary {
    let set: BTreeSet<&str> = locks.iter().map(String::as_str).collect();
    map_paths(summary, |path| {
        path.ops
            .iter()
            .map(|op| match op {
                Op::Acquire { lock, .. } if set.contains(lock.as_str()) => {
                    Op::AtomicBegin { serialized_with: Vec::new() }
                }
                Op::Release { lock } if set.contains(lock.as_str()) => Op::AtomicEnd,
                other => other.clone(),
            })
            .collect()
    })
}

/// Recipe 3 on a lock cycle: the first path that closes the cycle (it
/// acquires a cycle lock while holding another) becomes a preemptible
/// transaction — whole path wrapped, its cycle-lock acquisitions
/// revocable.
pub(crate) fn preempt_cycle(
    summary: &ScenarioSummary,
    locks: &[String],
) -> Option<ScenarioSummary> {
    let set: BTreeSet<&str> = locks.iter().map(String::as_str).collect();
    let participant = summary.paths.iter().position(|path| {
        let mut held: Vec<&str> = Vec::new();
        path.ops.iter().any(|op| match op {
            Op::Acquire { lock, .. } => {
                let closes = set.contains(lock.as_str()) && held.iter().any(|h| set.contains(h));
                held.push(lock);
                closes
            }
            Op::Release { lock } => {
                if let Some(pos) = held.iter().rposition(|h| h == lock) {
                    held.remove(pos);
                }
                false
            }
            _ => false,
        })
    })?;
    let mut out = summary.clone();
    let path = &mut out.paths[participant];
    let mut ops = vec![Op::AtomicBegin { serialized_with: Vec::new() }];
    ops.extend(path.ops.iter().map(|op| match op {
        Op::Acquire { lock, .. } if set.contains(lock.as_str()) => {
            Op::Acquire { lock: lock.clone(), revocable: true }
        }
        other => other.clone(),
    }));
    ops.push(Op::AtomicEnd);
    path.ops = ops;
    Some(out)
}

/// Recipe 3 on a wait cycle: every path that waits on `cv` becomes a
/// preemptible transaction — the wait turns into transactional retry
/// (modeled as re-running the wrapped region), and every lock the
/// transaction still takes becomes revocable.
pub(crate) fn preempt_wait(summary: &ScenarioSummary, cv: &str) -> ScenarioSummary {
    map_paths(summary, |path| {
        let waits_here = path.ops.iter().any(|op| matches!(op, Op::Wait { cv: c, .. } if c == cv));
        if !waits_here {
            return path.ops.clone();
        }
        let mut ops = vec![Op::AtomicBegin { serialized_with: Vec::new() }];
        ops.extend(path.ops.iter().filter_map(|op| match op {
            Op::Wait { cv: c, .. } if c == cv => None,
            Op::Acquire { lock, .. } => Some(Op::Acquire { lock: lock.clone(), revocable: true }),
            other => Some(other.clone()),
        }));
        ops.push(Op::AtomicEnd);
        ops
    })
}

/// Close `locs` over the summary's invariant groups: a wrap that covers
/// one member of a group must cover them all, or the group's atomicity
/// hazard survives the fix.
pub(crate) fn expand_groups(summary: &ScenarioSummary, locs: &[String]) -> Vec<String> {
    let mut set: BTreeSet<String> = locs.iter().cloned().collect();
    loop {
        let before = set.len();
        for group in &summary.groups {
            if group.iter().any(|l| set.contains(l)) {
                set.extend(group.iter().cloned());
            }
        }
        if set.len() == before {
            return set.into_iter().collect();
        }
    }
}

/// Recipe 2 on data: wrap every path's span of accesses to `locs` in a
/// plain atomic region.
fn wrap_all(summary: &ScenarioSummary, locs: &[String]) -> ScenarioSummary {
    let locs = expand_groups(summary, locs);
    let paths: BTreeSet<usize> = (0..summary.paths.len()).collect();
    wrap_spans(summary, &locs, &paths, &[])
}

/// Recipe 4 on data: wrap only the under-protected paths, serialized
/// against every lock the locations are protected by elsewhere. When no
/// path is fully unprotected (a wrong-lock bug), the least-protected one
/// is wrapped.
fn wrap_unprotected(summary: &ScenarioSummary, locs: &[String]) -> ScenarioSummary {
    let locs = expand_groups(summary, locs);
    let (unprotected, serialized) = wrap_seed(summary, &locs);
    wrap_spans(summary, &locs, &unprotected, &serialized)
}

/// The Recipe 4 seed computation: which paths need wrapping (the fully
/// unprotected ones, or — for a wrong-lock bug — the weakest-protected
/// one, ties to the later path, the usual "other" client of the data),
/// and which locks the region must serialize against (every lock the
/// locations are protected by elsewhere; when nothing anywhere protects
/// them, the scenario's locks — possibly none, degenerating to Recipe
/// 2's plain region, which is correct).
pub(crate) fn wrap_seed(
    summary: &ScenarioSummary,
    locs: &[String],
) -> (BTreeSet<usize>, Vec<String>) {
    let subjects: BTreeSet<&str> = locs.iter().map(String::as_str).collect();
    let accs = accesses(summary);
    let subject_accs: Vec<_> = accs.iter().filter(|a| subjects.contains(a.loc.as_str())).collect();

    let mut unprotected: BTreeSet<usize> =
        subject_accs.iter().filter(|a| a.locks_held.is_empty()).map(|a| a.path).collect();
    if unprotected.is_empty() {
        let weakest = subject_accs
            .iter()
            .map(|a| (a.locks_held.len(), usize::MAX - a.path))
            .min()
            .map(|(_, inv)| usize::MAX - inv);
        unprotected.extend(weakest);
    }

    let mut serialized: BTreeSet<String> =
        subject_accs.iter().flat_map(|a| a.locks_held.iter().cloned()).collect();
    if serialized.is_empty() {
        serialized = summary.lock_names();
    }
    (unprotected, serialized.into_iter().collect())
}

/// Recipe 2/4 on a lost wakeup: drop the wait/notify pair on `cv` and
/// turn the monitor's critical sections (in the paths that used the cv)
/// into atomic regions — TM's retry idiom subsumes the condition
/// variable. With `serialize`, the regions are serialized against
/// remaining users of the monitor locks (Recipe 4); otherwise they are
/// plain (Recipe 2).
pub(crate) fn retire_monitor(
    summary: &ScenarioSummary,
    cv: &str,
    serialize: bool,
) -> ScenarioSummary {
    let monitors: BTreeSet<String> = summary
        .paths
        .iter()
        .flat_map(|p| p.ops.iter())
        .filter_map(|op| match op {
            Op::Wait { cv: c, monitor, .. } if c == cv => Some(monitor.clone()),
            _ => None,
        })
        .collect();
    map_paths(summary, |path| {
        let uses_cv = path
            .ops
            .iter()
            .any(|op| matches!(op, Op::Wait { cv: c, .. } | Op::Notify { cv: c } if c == cv));
        if !uses_cv {
            return path.ops.clone();
        }
        path.ops
            .iter()
            .filter_map(|op| match op {
                Op::Wait { cv: c, .. } | Op::Notify { cv: c } if c == cv => None,
                Op::Acquire { lock, .. } if monitors.contains(lock) => Some(Op::AtomicBegin {
                    serialized_with: if serialize { vec![lock.clone()] } else { Vec::new() },
                }),
                Op::Release { lock } if monitors.contains(lock) => Some(Op::AtomicEnd),
                other => Some(other.clone()),
            })
            .collect()
    })
}

fn map_paths(
    summary: &ScenarioSummary,
    mut f: impl FnMut(&PathSummary) -> Vec<Op>,
) -> ScenarioSummary {
    let mut out = summary.clone();
    for path in &mut out.paths {
        path.ops = f(path);
    }
    out
}

/// Wrap, in each selected path, the span of ops touching `locs` in an
/// atomic region serialized with `serialized`. Spans are extended until
/// they cut no lock pair and no existing atomic region; critical
/// sections of locks in `serialized` that end up fully inside the span
/// are dropped — the region's serialization replaces them.
pub(crate) fn wrap_spans(
    summary: &ScenarioSummary,
    locs: &[String],
    paths: &BTreeSet<usize>,
    serialized: &[String],
) -> ScenarioSummary {
    let subjects: BTreeSet<&str> = locs.iter().map(String::as_str).collect();
    let mut out = summary.clone();
    for (pi, path) in out.paths.iter_mut().enumerate() {
        if !paths.contains(&pi) {
            continue;
        }
        let touching: Vec<usize> = path
            .ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| op.loc().filter(|l| subjects.contains(l)).map(|_| i))
            .collect();
        let (Some(&lo), Some(&hi)) = (touching.first(), touching.last()) else {
            continue;
        };
        let (lo, hi) = balance(&path.ops, lo, hi, serialized);
        let mut ops: Vec<Op> = path.ops[..lo].to_vec();
        ops.push(Op::AtomicBegin { serialized_with: serialized.to_vec() });
        ops.extend(
            path.ops[lo..=hi]
                .iter()
                .filter(|op| match op {
                    Op::Acquire { lock, .. } | Op::Release { lock } => !serialized.contains(lock),
                    _ => true,
                })
                .cloned(),
        );
        ops.push(Op::AtomicEnd);
        ops.extend(path.ops[hi + 1..].iter().cloned());
        path.ops = ops;
    }
    out
}

/// Grow `[lo, hi]` until it cuts no acquire/release pair and no atomic
/// begin/end pair. Critical sections of `serialized` locks additionally
/// pull the span out to their boundaries whenever they enclose it: the
/// new region replaces those sections, so they must be wholly inside it.
fn balance(ops: &[Op], mut lo: usize, mut hi: usize, serialized: &[String]) -> (usize, usize) {
    // Matched (start, end) index pairs; lock pairs remember their name.
    let mut pairs: Vec<(usize, usize, Option<&str>)> = Vec::new();
    let mut lock_stack: Vec<(&str, usize)> = Vec::new();
    let mut region_stack: Vec<usize> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Acquire { lock, .. } => lock_stack.push((lock, i)),
            Op::Release { lock } => {
                if let Some(pos) = lock_stack.iter().rposition(|(h, _)| h == lock) {
                    pairs.push((lock_stack.remove(pos).1, i, Some(lock)));
                }
            }
            Op::AtomicBegin { .. } => region_stack.push(i),
            Op::AtomicEnd => {
                if let Some(start) = region_stack.pop() {
                    pairs.push((start, i, None));
                }
            }
            _ => {}
        }
    }
    loop {
        let (prev_lo, prev_hi) = (lo, hi);
        for &(a, b, lock) in &pairs {
            let a_inside = a >= lo && a <= hi;
            let b_inside = b >= lo && b <= hi;
            let cut = a_inside != b_inside;
            let encloses_serialized =
                a < lo && b > hi && lock.is_some_and(|l| serialized.iter().any(|s| s == l));
            if cut || encloses_serialized {
                lo = lo.min(a);
                hi = hi.max(b);
            }
        }
        if (lo, hi) == (prev_lo, prev_hi) {
            return (lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Path, Summary};
    use crate::report::Hazard;

    fn lock_cycle_summary() -> ScenarioSummary {
        Summary::new("t", "buggy")
            .path(
                Path::new("p0")
                    .acquire("a")
                    .write("x")
                    .acquire("b")
                    .write("y")
                    .release("b")
                    .release("a"),
            )
            .path(
                Path::new("p1")
                    .acquire("b")
                    .write("y")
                    .acquire("a")
                    .write("x")
                    .release("a")
                    .release("b"),
            )
            .build()
    }

    fn cycle() -> Hazard {
        Hazard::LockCycle { locks: vec!["a".into(), "b".into()] }
    }

    #[test]
    fn recipe1_clears_a_lock_cycle() {
        let s = lock_cycle_summary();
        let baseline = crate::check(&s);
        let v = synthesize(&s, &baseline, &cycle(), Recipe::ReplaceLocks);
        assert!(v.verified, "{v:?}");
        // The transform really removed the locks.
        let t = apply(&s, &cycle(), Recipe::ReplaceLocks).unwrap();
        assert!(t.lock_names().is_empty());
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn recipe3_preempts_one_side_of_the_cycle() {
        let s = lock_cycle_summary();
        let baseline = crate::check(&s);
        let v = synthesize(&s, &baseline, &cycle(), Recipe::DeadlockPreemption);
        assert!(v.verified, "{v:?}");
        let t = apply(&s, &cycle(), Recipe::DeadlockPreemption).unwrap();
        // Only the first path becomes a transaction; the second is
        // untouched — that is the recipe's asymmetry.
        assert!(matches!(t.paths[0].ops.first(), Some(Op::AtomicBegin { .. })));
        assert_eq!(t.paths[1], s.paths[1]);
        assert!(t.paths[0]
            .ops
            .iter()
            .all(|op| !matches!(op, Op::Acquire { revocable: false, .. })));
    }

    #[test]
    fn recipe2_wraps_every_racing_path() {
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").read("x").write("x"))
            .path(Path::new("p1").write("x"))
            .build();
        let baseline = crate::check(&s);
        assert!(!baseline.is_empty());
        for f in &baseline {
            let v = synthesize(&s, &baseline, &f.hazard, Recipe::WrapAll);
            assert!(v.verified, "{:?}: {v:?}", f.hazard);
        }
    }

    #[test]
    fn recipe4_serializes_the_wrong_lock_path() {
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").acquire("right").read("x").write("x").release("right"))
            .path(Path::new("p1").acquire("wrong").read("x").write("x").release("wrong"))
            .build();
        let baseline = crate::check(&s);
        let race = Hazard::Race { loc: "x".into() };
        let v = synthesize(&s, &baseline, &race, Recipe::WrapUnprotected);
        assert!(v.verified, "{v:?}");
        let t = apply(&s, &race, Recipe::WrapUnprotected).unwrap();
        // p0 (the "right lock" side) is untouched; p1 was wrapped and
        // serialized against both locks, its own (subsumed) lock dropped.
        assert_eq!(t.paths[0], s.paths[0]);
        assert!(t.paths[1].ops.iter().any(|op| matches!(
            op,
            Op::AtomicBegin { serialized_with } if serialized_with.contains(&"right".to_string())
        )));
        assert!(!t.paths[1].ops.iter().any(|op| matches!(op, Op::Acquire { .. })));
    }

    #[test]
    fn recipe4_on_wholly_unprotected_data_degenerates_to_a_plain_wrap() {
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").read("x").write("x"))
            .path(Path::new("p1").read("x").write("x"))
            .build();
        let race = Hazard::Race { loc: "x".into() };
        let v = synthesize(&s, &crate::check(&s), &race, Recipe::WrapUnprotected);
        assert!(v.verified, "{v:?}");
    }

    #[test]
    fn wrapping_one_group_member_wraps_the_whole_invariant() {
        // Fixing the race on `x` alone would leave the {x, y} invariant
        // torn (a residual hazard overlapping the race, since both are
        // SharedData on x): the wrap must grow to the declared group.
        let s = Summary::new("t", "buggy")
            .group(&["x", "y"])
            .path(Path::new("p0").write("x").write("y"))
            .path(Path::new("p1").read("x").read("y"))
            .build();
        let baseline = crate::check(&s);
        let race = Hazard::Race { loc: "x".into() };
        assert!(baseline.iter().any(|f| f.hazard == race), "{baseline:?}");
        for recipe in [Recipe::WrapAll, Recipe::WrapUnprotected] {
            let v = synthesize(&s, &baseline, &race, recipe);
            assert!(v.verified, "{recipe:?}: {v:?}");
        }
        let t = apply(&s, &race, Recipe::WrapAll).unwrap();
        assert!(
            matches!(t.paths[0].ops.as_slice(), [Op::AtomicBegin { .. }, .., Op::AtomicEnd]),
            "{:?}",
            t.paths[0].ops
        );
    }

    #[test]
    fn wrap_spans_grow_over_cut_lock_pairs() {
        // The span starts before a critical section and ends inside it:
        // wrapping must pull the whole section in to stay balanced.
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").write("x").acquire("l").write("other").write("x").release("l"))
            .path(Path::new("p1").write("x"))
            .build();
        let t = wrap_all(&s, &["x".to_string()]);
        assert_eq!(t.validate(), Ok(()));
        assert!(
            matches!(t.paths[0].ops.first(), Some(Op::AtomicBegin { .. }))
                && matches!(t.paths[0].ops.last(), Some(Op::AtomicEnd)),
            "{:?}",
            t.paths[0].ops
        );
    }

    #[test]
    fn wrap_spans_nest_inside_uninvolved_lock_sections() {
        // The span is strictly inside a critical section of a lock the
        // wrap is NOT serialized against: the region nests inside it.
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").acquire("l").write("other").write("x").release("l"))
            .path(Path::new("p1").write("x"))
            .build();
        let t = wrap_all(&s, &["x".to_string()]);
        assert_eq!(t.validate(), Ok(()));
        assert!(matches!(t.paths[0].ops.first(), Some(Op::Acquire { .. })), "{:?}", t.paths[0].ops);
    }

    #[test]
    fn retiring_a_monitor_removes_the_cv_and_keeps_exclusion() {
        let s = Summary::new("t", "buggy")
            .path(
                Path::new("consumer")
                    .acquire("m")
                    .read("q")
                    .wait("cv", "m", "q")
                    .read("q")
                    .write("q")
                    .release("m"),
            )
            .path(Path::new("producer").notify("cv").acquire("m").write("q").release("m"))
            .build();
        let baseline = crate::check(&s);
        let lost = Hazard::LostWakeup { cv: "cv".into(), loc: "q".into() };
        assert!(baseline.iter().any(|f| f.hazard == lost), "{baseline:?}");
        for recipe in [Recipe::WrapAll, Recipe::WrapUnprotected] {
            let v = synthesize(&s, &baseline, &lost, recipe);
            assert!(v.verified, "{recipe:?}: {v:?}");
        }
        let t = apply(&s, &lost, Recipe::WrapAll).unwrap();
        assert!(t.lock_names().is_empty(), "the monitor became atomic regions");
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn inapplicable_recipes_fail_verification_loudly() {
        let s = lock_cycle_summary();
        let v = synthesize(&s, &crate::check(&s), &cycle(), Recipe::WrapAll);
        assert!(!v.verified);
        assert!(!v.residual.is_empty());
    }

    #[test]
    fn an_incomplete_fix_leaves_residual_hazards() {
        // "Fix" only the x race and then ask whether it cleared the y
        // race: it must not.
        let s = Summary::new("t", "buggy")
            .path(Path::new("p0").write("x").write("y"))
            .path(Path::new("p1").write("x").write("y"))
            .build();
        let baseline = crate::check(&s);
        let y = Hazard::Race { loc: "y".into() };
        // wrap_all over x only, checked against the y target.
        let t = wrap_all(&s, &["x".to_string()]);
        let after = crate::check(&t);
        assert!(after.iter().any(|f| f.hazard.overlaps(&y)), "y still racy");
        // The real synthesize on the y target wraps y and verifies.
        let v = synthesize(&s, &baseline, &y, Recipe::WrapAll);
        assert!(v.verified, "{v:?}");
    }
}
