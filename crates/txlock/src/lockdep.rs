//! A lock-order validator (lockdep-style).
//!
//! The paper's §3.1 pins the cost of lock-based fixes on *non-local
//! reasoning*: "adding a new lock requires considering whether it can
//! introduce deadlock with all existing locks". This module mechanizes
//! that reasoning: when enabled, every [`TxMutex`](crate::TxMutex)
//! acquisition *attempt* records ordering edges between the locks a
//! thread holds and the lock it is acquiring; a cycle through those edges
//! is a **potential deadlock** (a lock-order inversion), reported even if
//! no actual deadlock ever strikes — and still reported when one does,
//! because the edge is on record before the acquisition blocks. The
//! corpus uses it to show that the buggy lock disciplines are detectably
//! wrong before the first hang, and that the developers' reordered fixes
//! validate cleanly. Edges witnessed only by revocable
//! [`lock_tx`](crate::TxMutex::lock_tx) acquisitions are *benign*: a
//! cycle through them is resolved by preempting the transaction (paper
//! Recipe 3), so such cycles are suppressed and the paper's Recipe 3
//! fixes validate clean despite keeping their inverted acquisition order.
//!
//! Validation is process-global and off by default (zero cost beyond one
//! atomic load per acquisition); enable it around the region of interest:
//!
//! ```
//! use txfix_txlock::{lockdep, TxMutex};
//!
//! lockdep::reset();
//! lockdep::enable();
//! let a = TxMutex::new("order.a", ());
//! let b = TxMutex::new("order.b", ());
//! {
//!     let _ga = a.lock().unwrap();
//!     let _gb = b.lock().unwrap(); // records a -> b
//! }
//! {
//!     let _gb = b.lock().unwrap();
//!     let _ga = a.lock().unwrap(); // records b -> a: inversion!
//! }
//! lockdep::disable();
//! assert_eq!(lockdep::inversions().len(), 1);
//! ```

use crate::graph::LockId;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// What the validator knows about one "held `a` while acquiring `b`" edge.
#[derive(Default, Clone, Copy)]
struct EdgeInfo {
    /// The edge was witnessed by at least one *non-preemptible* (plain
    /// `lock()`) acquisition. Edges seen only through revocable `lock_tx`
    /// acquisitions never complete a reportable cycle: a deadlock through
    /// them is resolved by preempting the transaction (paper Recipe 3),
    /// so the discipline is benign by construction.
    non_preemptible: bool,
}

#[derive(Default)]
struct OrderState {
    /// Observed "held `a` while acquiring `b`" order graph, with lock
    /// names. A cycle in this graph — of any length — through edges with
    /// a non-preemptible witness is a potential deadlock.
    edges: HashMap<LockId, HashMap<LockId, EdgeInfo>>,
    names: HashMap<LockId, String>,
    inversions: Vec<Inversion>,
}

impl OrderState {
    /// Whether `to` is reachable from `from` over non-preemptible edges.
    fn reaches_non_preemptible(&self, from: LockId, to: LockId) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(&n) {
                stack.extend(next.iter().filter(|(_, e)| e.non_preemptible).map(|(l, _)| *l));
            }
        }
        false
    }
}

static ORDER: Mutex<Option<OrderState>> = Mutex::new(None);

thread_local! {
    static HELD: RefCell<Vec<LockId>> = const { RefCell::new(Vec::new()) };
}

/// A detected lock-order hazard: the recorded order graph contains a
/// cycle through `first` and `second` (for two locks, both acquisition
/// orders were observed; longer cycles are reported by the edge that
/// closed them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inversion {
    /// Name of one lock in the inverted pair.
    pub first: String,
    /// Name of the other lock.
    pub second: String,
}

impl fmt::Display for Inversion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock-order inversion: \"{}\" and \"{}\" are acquired in both orders",
            self.first, self.second
        )
    }
}

/// Start recording acquisition orders.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop recording (already-recorded state is kept until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clear all recorded edges and inversions.
pub fn reset() {
    let mut g = ORDER.lock();
    *g = Some(OrderState::default());
}

/// Inversions observed since the last [`reset`], deduplicated per lock
/// pair.
pub fn inversions() -> Vec<Inversion> {
    ORDER.lock().as_ref().map(|s| s.inversions.clone()).unwrap_or_default()
}

/// Number of distinct ordering edges recorded (diagnostic).
pub fn edge_count() -> usize {
    ORDER.lock().as_ref().map(|s| s.edges.values().map(HashMap::len).sum()).unwrap_or(0)
}

/// The recorded order edges as sorted, deduplicated `(held, acquiring)`
/// name pairs. This is the validator's ground truth in auditable form:
/// `txfix analyze` cross-checks it against the edges independently
/// derivable from the recorded trace, so a validator that silently drops
/// an edge (a lockdep bug, or a planted canary) is caught by disagreement
/// rather than trusted blindly.
pub fn edges() -> Vec<(String, String)> {
    let g = ORDER.lock();
    let Some(s) = g.as_ref() else { return Vec::new() };
    let name = |id: &LockId| s.names.get(id).cloned().unwrap_or_else(|| "?".into());
    let mut pairs: Vec<(String, String)> = s
        .edges
        .iter()
        .flat_map(|(from, tos)| tos.keys().map(move |to| (name(from), name(to))))
        .collect();
    pairs.sort();
    pairs.dedup();
    pairs
}

/// Record the order edges of an acquisition *attempt*: the thread holds
/// its current lock set and is about to block on (or test) `id`. Recording
/// at attempt time — before the acquisition can succeed — means a
/// discipline whose demonstration ends in an actual deadlock still leaves
/// the inverted edge on record; acquisition-time recording would lose
/// exactly the edge that completes the cycle.
pub(crate) fn note_attempt(id: LockId, name: &str, preemptible: bool) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    // Canary: drop this attempt's order edges on the floor. The execution
    // is unchanged — only the validator's graph goes quietly incomplete,
    // which is exactly the failure mode the trace cross-check exists for.
    #[cfg(feature = "canary-txlock")]
    if txfix_stm::canary::fire(txfix_stm::canary::Canary::LockSkipLockdep) {
        return;
    }
    HELD.with(|h| {
        let held = h.borrow();
        let mut g = ORDER.lock();
        let s = g.get_or_insert_with(OrderState::default);
        s.names.insert(id, name.to_owned());
        for &prior in held.iter() {
            if prior == id {
                continue;
            }
            let edge = s.edges.entry(prior).or_default().entry(id).or_default();
            let newly_non_preemptible = !preemptible && !edge.non_preemptible;
            edge.non_preemptible |= !preemptible;
            // An edge prior→id completes a reportable cycle iff id already
            // reaches prior over non-preemptible edges and this edge has a
            // non-preemptible witness too. Check whenever the witness is
            // new: every cycle is caught when its chronologically last
            // non-preemptible edge lands.
            if newly_non_preemptible && s.reaches_non_preemptible(id, prior) {
                let first = s.names.get(&prior).cloned().unwrap_or_else(|| "?".into());
                let second = s.names.get(&id).cloned().unwrap_or_else(|| "?".into());
                let (a, b) = if first <= second { (first, second) } else { (second, first) };
                let inv = Inversion { first: a, second: b };
                if !s.inversions.contains(&inv) {
                    s.inversions.push(inv);
                }
            }
        }
    });
}

pub(crate) fn note_acquired(id: LockId) {
    HELD.with(|h| h.borrow_mut().push(id));
}

pub(crate) fn note_released(id: LockId) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&l| l == id) {
            held.remove(pos);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxMutex;

    // Lockdep state is process-global; serialize these tests.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn inversion_detected_without_an_actual_deadlock() {
        let _g = TEST_GATE.lock();
        reset();
        enable();
        let a = TxMutex::new("ld.a", ());
        let b = TxMutex::new("ld.b", ());
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        disable();
        let inv = inversions();
        assert_eq!(inv.len(), 1, "{inv:?}");
        assert!(inv[0].to_string().contains("ld.a"));
        assert!(inv[0].to_string().contains("ld.b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let _g = TEST_GATE.lock();
        reset();
        enable();
        let a = TxMutex::new("ld.c1", ());
        let b = TxMutex::new("ld.c2", ());
        for _ in 0..3 {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        disable();
        assert!(inversions().is_empty());
        assert!(edge_count() >= 1);
    }

    #[test]
    fn cross_thread_inversion_is_detected() {
        let _g = TEST_GATE.lock();
        reset();
        enable();
        let a = std::sync::Arc::new(TxMutex::new("ld.x", ()));
        let b = std::sync::Arc::new(TxMutex::new("ld.y", ()));
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        let (a2, b2) = (a.clone(), b.clone());
        std::thread::spawn(move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        })
        .join()
        .unwrap();
        disable();
        assert_eq!(inversions().len(), 1);
    }

    #[test]
    fn disabled_validator_records_nothing() {
        let _g = TEST_GATE.lock();
        reset();
        let a = TxMutex::new("ld.off1", ());
        let b = TxMutex::new("ld.off2", ());
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        assert!(inversions().is_empty());
        assert_eq!(edge_count(), 0);
    }

    #[test]
    fn preemptible_cycles_are_benign() {
        let _g = TEST_GATE.lock();
        reset();
        enable();
        let a = std::sync::Arc::new(TxMutex::new("ld.p1", 0u32));
        let b = std::sync::Arc::new(TxMutex::new("ld.p2", 0u32));
        // Recipe 3 shape: both orders occur, but revocably, inside
        // preemptible transactions.
        for swap in [false, true] {
            let (a2, b2) = (a.clone(), b.clone());
            txfix_stm::atomic(move |txn| {
                let (first, second) = if swap { (&b2, &a2) } else { (&a2, &b2) };
                first.lock_tx(txn)?;
                second.lock_tx(txn)?;
                Ok(())
            });
        }
        disable();
        assert!(edge_count() >= 2, "revocable attempts still record edges");
        assert!(
            inversions().is_empty(),
            "a cycle carried entirely by revocable acquisitions is preemptible, not a hazard"
        );
    }

    #[test]
    fn failed_attempt_still_records_the_inversion() {
        let _g = TEST_GATE.lock();
        reset();
        enable();
        let a = std::sync::Arc::new(TxMutex::new("ld.f1", ()));
        let b = std::sync::Arc::new(TxMutex::new("ld.f2", ()));
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let (a2, b2) = (a.clone(), b.clone());
                let barrier = &barrier;
                s.spawn(move || {
                    let (first, second) = if t == 0 { (&*a2, &*b2) } else { (&*b2, &*a2) };
                    let g = first.lock().unwrap();
                    barrier.wait();
                    // One of the two second acquisitions fails with a
                    // detected deadlock; its order edge must survive.
                    let _ = second.lock();
                    drop(g);
                });
            }
        });
        disable();
        assert_eq!(inversions().len(), 1, "{:?}", inversions());
    }

    #[test]
    fn duplicate_inversions_are_deduplicated() {
        let _g = TEST_GATE.lock();
        reset();
        enable();
        let a = TxMutex::new("ld.d1", ());
        let b = TxMutex::new("ld.d2", ());
        for _ in 0..4 {
            {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            }
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
        }
        disable();
        assert_eq!(inversions().len(), 1);
    }
}
