//! The version clock behind every commit (TL2 style), as a pluggable API.
//!
//! Every committed writing transaction obtains a *write stamp* and stamps
//! the ownership records it wrote. Readers obtain a *read stamp* (`rv`)
//! when they begin and use it to decide whether an observed version is
//! consistent with their linearization point. The two operations are the
//! STM's hottest shared-memory touch points, so their implementation is
//! behind the sealed [`VersionClock`] trait with two schemes:
//!
//! - [`Gv1`] — the reference scheme: one global `AtomicU64`, advanced by a
//!   `fetch_add` on every writing commit. Write stamps are globally unique
//!   and totally ordered, which makes every detector replay bit-for-bit;
//!   this is the scheme the deterministic layers (`txfix explore`,
//!   `chaos`, `canary`) pin.
//! - [`Gv5`] — the scalable scheme (after TL2's GV5 variant): writers stamp
//!   with `G + 1` *without* advancing `G`, and readers start from a
//!   thread-local epoch, so a read-only transaction touches no shared
//!   cache line at all. The clock only moves when a reader actually needs
//!   it to — a *lazy snapshot extension* `fetch_max`es `G` up to the
//!   observed version and revalidates.
//!
//! ## Safety contract (what makes shared stamps sound)
//!
//! Three rules, enforced by the commit path in `txn.rs`/`orec.rs`:
//!
//! 1. **Lock before stamping.** A writer acquires every ownership record it
//!    will write *before* loading `G` to compute its stamp. Any reader
//!    whose `rv` was obtained before those locks therefore has
//!    `rv <= G-at-lock < stamp`, so the writer's values can never be
//!    mistaken for part of that reader's snapshot.
//! 2. **Per-record monotonicity.** A record is stamped with
//!    `max(stamp, old_version + 1)` ([`crate::orec::Orec::stamp_release`]),
//!    so two commits can share a global stamp but never reuse a version on
//!    the *same* record — exact-match validation stays sound.
//! 3. **Read stamps never lead the clock.** `rv` is only ever set to a
//!    value `<= G` at the time it is set ([`VersionClock::advance_to`]
//!    raises `G` first, then reads it back). Combined with rule 1 this
//!    gives opacity: a version `<= rv` was committed by a writer whose
//!    locks predate the reader's `rv`, so accepting it without
//!    revalidation is safe.
//!
//! A committing GV5 writer leaves its thread epoch at a value `<= G`
//! rather than adopting its own stamp (rule 3). Its next transaction
//! re-reading those writes triggers exactly one lazy extension, which
//! publishes the stamp into `G` — that is the "lazy" in lazy snapshot
//! extension.
//!
//! ## Determinism contract
//!
//! Under the cooperative scheduler ([`crate::sched`]) a GV5 read stamp
//! comes from `G` directly instead of the thread epoch: thread-local
//! staleness would otherwise make abort points a function of scheduling
//! history outside the recorded decision trace, breaking bit-for-bit
//! replay. Schedule-controlled runs pay nothing for this — they are
//! single-stepped anyway.

use crate::sched;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The one process-global clock word. Shared by both schemes so the mode
/// can change between benchmark runs without version stamps going
/// backwards: GV1 advances it eagerly, GV5 lazily.
static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(1);

/// Selected [`ClockMode`] as a `u8` (0 = GV1, 1 = GV5).
static MODE: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// GV5: the last clock value this thread is known to be allowed to
    /// read at (always `<=` the global clock at the time it was stored).
    static THREAD_EPOCH: Cell<u64> = const { Cell::new(0) };
}

mod sealed {
    pub trait Sealed {}
}

/// A version-clock scheme: how read stamps and write stamps are produced.
///
/// Sealed — the STM's safety argument depends on the contract in the
/// module docs, so the two implementations ([`Gv1`], [`Gv5`]) are the only
/// ones; external code selects between them with [`set_mode`].
pub trait VersionClock: sealed::Sealed {
    /// Read stamp for a transaction beginning now. Every version `<=` this
    /// value is safe to read without revalidation.
    fn begin_stamp(&self) -> u64;
    /// Write stamp for a commit. Must be called with the write set's
    /// ownership records already locked (rule 1 of the safety contract).
    fn commit_stamp(&self) -> u64;
    /// Lazy snapshot extension: raise the clock to at least `target` and
    /// return a fresh read stamp `>= target`. The caller must revalidate
    /// its entire read set before adopting the returned stamp.
    fn advance_to(&self, target: u64) -> u64;
    /// Current clock value (diagnostic; not a linearization point).
    fn observe(&self) -> u64;
}

/// Reference scheme: a single global counter, `fetch_add` per writing
/// commit. Unique, totally ordered stamps; the deterministic mode.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gv1;

/// Scalable scheme: shared stamps (`G + 1` without advancing `G`) and
/// thread-local read epochs with lazy extension. Read-only transactions
/// never write a shared cache line.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gv5;

impl sealed::Sealed for Gv1 {}
impl sealed::Sealed for Gv5 {}

impl VersionClock for Gv1 {
    #[inline]
    fn begin_stamp(&self) -> u64 {
        GLOBAL_CLOCK.load(Ordering::Acquire)
    }

    #[inline]
    fn commit_stamp(&self) -> u64 {
        GLOBAL_CLOCK.fetch_add(1, Ordering::AcqRel) + 1
    }

    #[inline]
    fn advance_to(&self, _target: u64) -> u64 {
        // GV1 advances eagerly, so the clock is already past every
        // published stamp; the extension just re-reads it.
        GLOBAL_CLOCK.load(Ordering::Acquire)
    }

    #[inline]
    fn observe(&self) -> u64 {
        GLOBAL_CLOCK.load(Ordering::Acquire)
    }
}

impl VersionClock for Gv5 {
    #[inline]
    fn begin_stamp(&self) -> u64 {
        if sched::is_controlled() {
            // Determinism contract (module docs): no thread-local staleness
            // under the cooperative scheduler.
            return GLOBAL_CLOCK.load(Ordering::Acquire);
        }
        THREAD_EPOCH.with(|e| e.get())
    }

    #[inline]
    fn commit_stamp(&self) -> u64 {
        // Shared stamp: G + 1 without the fetch_add. Sound because the
        // caller holds its write-set locks (rule 1) and records bump
        // per-location (rule 2).
        GLOBAL_CLOCK.load(Ordering::Acquire) + 1
    }

    #[inline]
    fn advance_to(&self, target: u64) -> u64 {
        // Raise G first, then read it back: the returned rv is `<= G`
        // at the moment it is adopted (rule 3).
        GLOBAL_CLOCK.fetch_max(target, Ordering::AcqRel);
        let rv = GLOBAL_CLOCK.load(Ordering::Acquire);
        THREAD_EPOCH.with(|e| e.set(rv));
        rv
    }

    #[inline]
    fn observe(&self) -> u64 {
        GLOBAL_CLOCK.load(Ordering::Acquire)
    }
}

/// Which [`VersionClock`] scheme the runtime is using.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ClockMode {
    /// The [`Gv1`] reference scheme (deterministic; the default).
    #[default]
    Gv1,
    /// The [`Gv5`] scalable scheme.
    Gv5,
}

impl ClockMode {
    /// Stable lower-case name (`"gv1"` / `"gv5"`), as used by the stress
    /// schema and CLI.
    pub fn name(self) -> &'static str {
        match self {
            ClockMode::Gv1 => "gv1",
            ClockMode::Gv5 => "gv5",
        }
    }

    /// Parse a [`ClockMode`] from its [`name`](ClockMode::name).
    pub fn parse(s: &str) -> Option<ClockMode> {
        match s {
            "gv1" => Some(ClockMode::Gv1),
            "gv5" => Some(ClockMode::Gv5),
            _ => None,
        }
    }
}

/// Select the clock scheme process-wide.
///
/// Safe at any point — in-flight transactions finish under whichever rules
/// they observe, and both schemes share the one monotone clock word — but
/// intended for quiescent points between benchmark runs. The deterministic
/// sweeps (`explore`/`chaos`/`canary`) assume the default [`ClockMode::Gv1`].
pub fn set_mode(mode: ClockMode) {
    MODE.store(mode as u8, Ordering::SeqCst);
}

/// The currently selected clock scheme.
pub fn mode() -> ClockMode {
    match MODE.load(Ordering::Relaxed) {
        0 => ClockMode::Gv1,
        _ => ClockMode::Gv5,
    }
}

/// Reset the calling thread's GV5 epoch. Called when a thread registers
/// with the deterministic scheduler so cross-run thread reuse cannot leak
/// clock state into a schedule (belt and braces on top of the
/// scheduler-mode bypass in [`Gv5::begin_stamp`]).
pub(crate) fn reset_thread_epoch() {
    THREAD_EPOCH.with(|e| e.set(0));
}

macro_rules! dispatch {
    ($method:ident($($arg:expr),*)) => {
        match MODE.load(Ordering::Relaxed) {
            0 => Gv1.$method($($arg),*),
            _ => Gv5.$method($($arg),*),
        }
    };
}

/// Read stamp for a transaction beginning now (mode-dispatched).
#[inline]
pub(crate) fn begin_stamp() -> u64 {
    dispatch!(begin_stamp())
}

/// Write stamp for a commit whose orecs are already locked.
#[inline]
pub(crate) fn commit_stamp() -> u64 {
    dispatch!(commit_stamp())
}

/// Lazy snapshot extension to at least `target`; caller revalidates.
#[inline]
pub(crate) fn advance_to(target: u64) -> u64 {
    dispatch!(advance_to(target))
}

/// Current clock value (diagnostic).
#[inline]
pub(crate) fn now() -> u64 {
    dispatch!(observe())
}

#[cfg(test)]
mod tests {
    // The clock word is process-global and the unit-test binary runs tests
    // concurrently, so every assertion here is relative (monotonicity,
    // bounds) rather than an exact equality on global state.
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn gv1_commit_stamp_is_strictly_greater_than_previous_begin() {
        let before = Gv1.begin_stamp();
        let t = Gv1.commit_stamp();
        assert!(t > before);
        assert!(Gv1.observe() >= t);
    }

    #[test]
    fn gv1_concurrent_stamps_are_unique() {
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    for _ in 0..1000 {
                        local.push(Gv1.commit_stamp());
                    }
                    let mut g = seen.lock().unwrap();
                    for v in local {
                        assert!(g.insert(v), "duplicate version {v}");
                    }
                });
            }
        });
    }

    #[test]
    fn gv5_commit_stamp_leads_every_prior_observation() {
        let g0 = Gv5.observe();
        let s = Gv5.commit_stamp();
        assert!(s > g0);
    }

    #[test]
    fn gv5_extension_reaches_target_and_never_leads_clock() {
        let s = Gv5.commit_stamp();
        let rv = Gv5.advance_to(s);
        assert!(rv >= s, "extension must reach the target");
        assert!(rv <= Gv5.observe(), "rv must not lead the clock (rule 3)");
        // The thread epoch was updated: a fresh begin stamp on this thread
        // now sees at least the extension target.
        assert!(Gv5.begin_stamp() >= s);
    }

    #[test]
    fn gv5_begin_stamp_never_leads_clock() {
        let _ = Gv5.advance_to(Gv5.commit_stamp());
        for _ in 0..100 {
            assert!(Gv5.begin_stamp() <= Gv5.observe());
        }
    }

    #[test]
    fn thread_epoch_reset_drops_begin_stamp_to_zero() {
        let _ = Gv5.advance_to(Gv5.commit_stamp());
        assert!(Gv5.begin_stamp() > 0);
        reset_thread_epoch();
        assert_eq!(THREAD_EPOCH.with(|e| e.get()), 0);
    }

    #[test]
    fn mode_names_roundtrip() {
        for m in [ClockMode::Gv1, ClockMode::Gv5] {
            assert_eq!(ClockMode::parse(m.name()), Some(m));
        }
        assert_eq!(ClockMode::parse("gv7"), None);
        assert_eq!(ClockMode::default().name(), "gv1");
    }
}
