//! # txfix-stm: a software transactional memory runtime
//!
//! This crate reproduces the TM substrate of *Applying Transactional Memory
//! to Concurrency Bugs* (Volos, Tack, Swift, Lu — ASPLOS 2012): a word-based
//! software transactional memory in the style of TL2 / Intel's STM runtime,
//! providing the `atomic { ... }` construct the paper's four fix recipes are
//! built on.
//!
//! ## Features
//!
//! - **Atomic regions**: [`atomic`] executes a closure as a memory
//!   transaction over [`TVar`]s, with commit-time validation against a
//!   global version clock and automatic re-execution on conflict.
//! - **Atomic vs. relaxed transactions** (paper §5.1): [`atomic_relaxed`]
//!   transactions may contain unsafe operations through
//!   [`Txn::unsafe_op`], which makes them irrevocable (the runtime falls
//!   back to a global lock, like Intel's STM).
//! - **Explicit rollback**: [`Txn::restart`] reproduces the paper's `abort`
//!   statement; [`Txn::retry`] aborts and blocks until a variable in the
//!   read set changes.
//! - **Commit-before-wait**: [`Txn::wait_on`] commits the work done so far
//!   and blocks on a [`WaitPoint`] (the hook used by transactional
//!   condition variables in `txfix-tmsync`).
//! - **External resources**: revocable locks and transactional I/O enlist
//!   in a transaction via [`Txn::enlist`], [`Txn::on_commit`] and
//!   [`Txn::on_abort`], and deadlock detectors can preempt a transaction
//!   through its [`KillHandle`].
//! - **Cost modelling**: [`OverheadModel`] charges calibrated
//!   per-read/write/commit costs so benchmarks reproduce the 3–5×
//!   instrumentation overhead of software TM and the near-zero overhead of
//!   the simulated hardware TM.
//! - **Capacity bounds**: [`TxnOptions::capacity`] models bounded hardware
//!   read/write sets (used by `txfix-htm`).
//!
//! ## Example
//!
//! ```
//! use txfix_stm::{atomic, TVar};
//!
//! let checking = TVar::new(100i64);
//! let savings = TVar::new(0i64);
//!
//! // Move 40 between accounts; no interleaving ever observes money
//! // created or destroyed.
//! atomic(|txn| {
//!     let c = checking.read(txn)?;
//!     let s = savings.read(txn)?;
//!     checking.write(txn, c - 40)?;
//!     savings.write(txn, s + 40)
//! });
//!
//! assert_eq!(checking.load() + savings.load(), 100);
//! ```

#![warn(missing_docs)]

mod clock;
mod contention;
mod error;
mod notifier;
mod overhead;
mod runtime;
mod serial;
mod stats;
pub mod trace;
mod tvar;
mod txn;

pub use contention::BackoffPolicy;
pub use error::{Abort, CapacityKind, ConflictKind, StmResult, TxnError, WaitPoint};
pub use overhead::OverheadModel;
pub use runtime::{atomic, atomic_relaxed, atomic_report, atomic_with, TxnReport};
pub use stats::{stats, StatsSnapshot};
pub use tvar::{TVar, VarId};
pub use txn::{KillHandle, TxResource, Txn, TxnKind, TxnOptions, WritePolicy};

/// Current value of the global version clock (diagnostic).
pub fn clock_now() -> u64 {
    clock::now()
}
