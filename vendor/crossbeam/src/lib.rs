//! Minimal std-backed reimplementation of the `crossbeam` API surface that
//! txfix uses (multi-producer *multi-consumer* channels). Vendored because
//! the build environment has no network access to crates.io.

pub mod channel {
    //! MPMC channel compatible with `crossbeam::channel`'s unbounded API.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable for multiple producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable for multiple consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("receiving on an empty and disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing only if every receiver has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.items.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking while the channel is empty; fails once
        /// the channel is empty *and* every sender has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.items.pop_front() {
                Some(v) => Ok(v),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.senders -= 1;
            let drained = q.senders == 0;
            drop(q);
            if drained {
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn multi_consumer_partitions_items() {
            let (tx, rx) = unbounded();
            let total = 100u32;
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for i in 0..total {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..total).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(3), Err(SendError(3)));
        }
    }
}
