//! Execute one scheduled run of a corpus scenario under a picker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use txfix_corpus::{Outcome, ScheduledRun};
use txfix_stm::sched::{self, Picker, RunLog, SchedStop, StopReason};

/// What one explored schedule amounted to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunResult {
    /// Every thread finished and the invariant held.
    Pass,
    /// The bug manifested: a broken invariant, a deadlock (every live
    /// thread blocked), or a panic in scenario code.
    Bug(String),
    /// The picker abandoned the schedule as redundant (sleep sets).
    Pruned,
    /// The per-schedule step bound was exceeded — inconclusive.
    StepLimit,
}

/// One executed schedule: the scheduler's record plus the verdict.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// The decision/event record (replayable via [`RunLog::trace`]).
    pub log: RunLog,
    /// The verdict.
    pub result: RunResult,
}

/// Default per-schedule step bound; corpus scenarios take well under a
/// hundred steps, so hitting this means a livelock.
pub const DEFAULT_MAX_STEPS: u64 = 20_000;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one schedule of `run` under `picker`.
///
/// Must be called with the scheduler's exclusivity gate held (strategies
/// wrap whole explorations in [`sched::run_exclusively`]); runs are
/// process-global.
pub fn run_schedule(run: ScheduledRun, max_steps: u64, picker: Picker) -> ScheduleOutcome {
    let ScheduledRun { threads, check } = run;
    sched::begin_run(threads.len(), max_steps, picker);
    std::thread::scope(|s| {
        for (slot, body) in threads.into_iter().enumerate() {
            s.spawn(move || {
                sched::register(slot);
                match catch_unwind(AssertUnwindSafe(body)) {
                    Ok(()) => sched::finish(),
                    Err(payload) => {
                        // `SchedStop` is the scheduler tearing the run
                        // down (deadlock/prune/abort), not a failure of
                        // the scenario itself.
                        if payload.downcast_ref::<SchedStop>().is_none() {
                            sched::abort_run(panic_message(payload.as_ref()));
                        }
                    }
                }
            });
        }
    });
    let log = sched::end_run();
    let result = match &log.stop {
        Some(StopReason::Deadlock(blocked)) => {
            RunResult::Bug(format!("deadlock: {}", blocked.join("; ")))
        }
        Some(StopReason::Panic(msg)) => RunResult::Bug(format!("panic: {msg}")),
        Some(StopReason::Pruned) => RunResult::Pruned,
        Some(StopReason::StepLimit) => RunResult::StepLimit,
        None => match check() {
            Outcome::Correct => RunResult::Pass,
            Outcome::BugObserved(msg) => RunResult::Bug(msg),
        },
    };
    // Turnstile integrity: the executed events must match the announced
    // decisions one-for-one. A divergence means an operation ran out of
    // turnstile order — the record no longer describes the execution, so
    // replay and minimization would both lie. It outranks every verdict
    // except an already-detected bug.
    let result = match (log.turnstile_breach(), result) {
        (Some(_), bug @ RunResult::Bug(_)) => bug,
        (Some(msg), _) => RunResult::Bug(msg),
        (None, result) => result,
    };
    ScheduleOutcome { log, result }
}

/// A picker that replays a recorded decision trace (candidate indices)
/// bit-for-bit. Past the end of the trace — or if the run diverges and an
/// index is out of range — it falls back to the lowest-slot candidate,
/// which keeps replay total (a diverged replay then simply runs some
/// schedule instead of crashing the harness).
pub fn replay_picker(trace: Vec<usize>) -> Picker {
    let mut next = 0usize;
    Box::new(move |cands| {
        let i = trace.get(next).copied().unwrap_or(0);
        next += 1;
        sched::Pick::Choose(if i < cands.len() { i } else { 0 })
    })
}
