//! A miniature in-memory operating system.
//!
//! The paper's xCalls library wraps real POSIX system calls. This
//! reproduction has no kernel to wrap, so it provides the smallest OS
//! surface the studied bugs touch: a filesystem with appendable files
//! (Apache's access/error logs, MySQL's binlog), bounded pipes (the
//! Apache#7617 cross-process pipe race, Mozilla's lost I/O notifications)
//! and loopback socket pairs (request/response traffic for the simulated
//! servers). Everything is plain, non-transactional state — exactly like a
//! kernel — and the transactional semantics are layered on top by the
//! [`crate`] root's x-call wrappers.

//!
//! ## Durability
//!
//! Each [`SimFile`] keeps *two* images: the **page cache** (what reads
//! see) and the **durable** contents (what survives a crash), plus the
//! set of dirty blocks in between. [`SimFile::sync_all`] is `fsync`:
//! it promotes the cache to the durable image. [`SimFs::crash`] builds
//! the post-crash state from the durable image plus a seeded,
//! splitmix64-chosen subset of the dirty blocks — the kernel was free to
//! write back any unflushed block at any time, so a crash may persist an
//! arbitrary subset of them, and the seed makes that subset reproducible.
//! Pipe and socket buffers are volatile and do not survive.

use crate::crashpoint;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use txfix_stm::chaos::splitmix64;

/// Writeback granularity of the simulated page cache, in bytes. A crash
/// persists or drops unflushed data in units of this size.
pub const BLOCK_BYTES: usize = 32;

/// Errors from the simulated OS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OsError {
    /// Path not present in the filesystem.
    NotFound(String),
    /// Path already present on exclusive create.
    AlreadyExists(String),
    /// Reading from or writing to a closed pipe/socket.
    Closed,
    /// A blocking read timed out.
    TimedOut,
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NotFound(p) => write!(f, "no such file: {p}"),
            OsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            OsError::Closed => write!(f, "endpoint closed"),
            OsError::TimedOut => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for OsError {}

/// Page-cache vs durable split of one file's bytes.
struct FileState {
    /// What reads observe: every write lands here immediately.
    cached: Vec<u8>,
    /// What a crash preserves unconditionally: the last synced image.
    durable: Vec<u8>,
    /// Cache blocks not yet flushed; a crash keeps a seeded subset.
    dirty: BTreeSet<usize>,
}

impl FileState {
    /// Mark every block overlapping `[from, to)` dirty.
    fn mark_dirty(&mut self, from: usize, to: usize) {
        if from >= to {
            return;
        }
        for b in (from / BLOCK_BYTES)..=((to - 1) / BLOCK_BYTES) {
            self.dirty.insert(b);
        }
    }

    /// The post-crash contents under `seed`: the durable image overlaid
    /// with each dirty block whose per-block coin says the kernel wrote
    /// it back before the crash. `salt` distinguishes files under one
    /// seed.
    fn crash_image(&self, salt: u64, seed: u64) -> Vec<u8> {
        let mut img = self.durable.clone();
        for &b in &self.dirty {
            let coin = splitmix64(seed ^ salt ^ splitmix64(b as u64 ^ 0x5851_F42D_4C95_7F2D));
            if coin & 1 != 0 {
                continue; // this block never reached the disk
            }
            let start = b * BLOCK_BYTES;
            let end = ((b + 1) * BLOCK_BYTES).min(self.cached.len());
            if start >= end {
                continue;
            }
            if img.len() < end {
                img.resize(end, 0);
            }
            img[start..end].copy_from_slice(&self.cached[start..end]);
        }
        img
    }
}

/// An in-memory file: a growable byte array with append/truncate/read,
/// split into a page cache and a durable image (see the module docs).
pub struct SimFile {
    name: String,
    /// Per-file crash-image salt, derived from the name, so one crash
    /// seed draws independent block coins in every file.
    salt: u64,
    state: Mutex<FileState>,
}

impl fmt::Debug for SimFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFile").field("name", &self.name).field("len", &self.len()).finish()
    }
}

impl SimFile {
    fn new(name: &str) -> Arc<SimFile> {
        Arc::new(SimFile {
            name: name.to_owned(),
            salt: crashpoint::label_hash(name),
            state: Mutex::new(FileState {
                cached: Vec::new(),
                durable: Vec::new(),
                dirty: BTreeSet::new(),
            }),
        })
    }

    /// The file's path within its filesystem.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append raw bytes (the non-transactional "system call").
    pub fn append(&self, bytes: &[u8]) {
        crashpoint::crash_point("simos_file_append");
        if crashpoint::is_frozen() {
            return;
        }
        let mut st = self.state.lock();
        let from = st.cached.len();
        st.cached.extend_from_slice(bytes);
        let to = st.cached.len();
        st.mark_dirty(from, to);
    }

    /// Write at an absolute offset, growing the file if needed.
    pub fn write_at(&self, offset: usize, bytes: &[u8]) {
        crashpoint::crash_point("simos_file_write_at");
        if crashpoint::is_frozen() {
            return;
        }
        let mut st = self.state.lock();
        let old_len = st.cached.len();
        if old_len < offset + bytes.len() {
            st.cached.resize(offset + bytes.len(), 0);
        }
        st.cached[offset..offset + bytes.len()].copy_from_slice(bytes);
        // The zero-fill between the old end and `offset` changed too.
        st.mark_dirty(old_len.min(offset), offset + bytes.len());
    }

    /// Snapshot of the whole contents, as reads see them (page cache).
    pub fn read_all(&self) -> Vec<u8> {
        self.state.lock().cached.clone()
    }

    /// Current length in bytes (page cache).
    pub fn len(&self) -> usize {
        self.state.lock().cached.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Truncate to `len` bytes (no-op if already shorter). Used by x-call
    /// compensation to undo appends. Like data writes, an unsynced
    /// truncation is not durable: the discarded tail's blocks stay dirty,
    /// and a crash may resurrect them from the durable image.
    pub fn truncate(&self, len: usize) {
        crashpoint::crash_point("simos_file_truncate");
        if crashpoint::is_frozen() {
            return;
        }
        let mut st = self.state.lock();
        let old = st.cached.len();
        if len < old {
            st.cached.truncate(len);
            st.mark_dirty(len, old);
        }
    }

    /// `fsync(2)`: promote the page cache to the durable image.
    pub fn sync_all(&self) {
        crashpoint::crash_point("simos_file_sync");
        if crashpoint::is_frozen() {
            return;
        }
        let mut st = self.state.lock();
        st.durable = st.cached.clone();
        st.dirty.clear();
    }

    /// Snapshot of the durable (crash-surviving) image.
    pub fn durable_snapshot(&self) -> Vec<u8> {
        self.state.lock().durable.clone()
    }

    /// Indices of cache blocks not yet flushed, ascending.
    pub fn dirty_blocks(&self) -> Vec<usize> {
        self.state.lock().dirty.iter().copied().collect()
    }

    /// The contents a crash under `seed` would leave behind, without
    /// crashing. Pure: same state and seed, same image.
    pub fn crash_image(&self, seed: u64) -> Vec<u8> {
        self.state.lock().crash_image(self.salt, seed)
    }

    /// Crash this file: replace both images with [`SimFile::crash_image`]
    /// and clear the dirty set. Deliberately ignores the crash-point
    /// freeze — taking the image *is* the crash, not post-crash work.
    pub fn crash(&self, seed: u64) {
        let mut st = self.state.lock();
        let img = st.crash_image(self.salt, seed);
        st.cached.clone_from(&img);
        st.durable = img;
        st.dirty.clear();
    }
}

/// An in-memory filesystem: a namespace of [`SimFile`]s.
#[derive(Default)]
pub struct SimFs {
    files: Mutex<HashMap<String, Arc<SimFile>>>,
}

impl fmt::Debug for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFs").field("files", &self.files.lock().len()).finish()
    }
}

impl SimFs {
    /// An empty filesystem.
    pub fn new() -> Arc<SimFs> {
        Arc::new(SimFs::default())
    }

    /// Open `path`, creating it if absent.
    pub fn open_or_create(&self, path: &str) -> Arc<SimFile> {
        self.files.lock().entry(path.to_owned()).or_insert_with(|| SimFile::new(path)).clone()
    }

    /// Open an existing file.
    ///
    /// # Errors
    ///
    /// [`OsError::NotFound`] if `path` does not exist.
    pub fn open(&self, path: &str) -> Result<Arc<SimFile>, OsError> {
        self.files.lock().get(path).cloned().ok_or_else(|| OsError::NotFound(path.to_owned()))
    }

    /// Create `path` exclusively.
    ///
    /// # Errors
    ///
    /// [`OsError::AlreadyExists`] if `path` exists.
    pub fn create_exclusive(&self, path: &str) -> Result<Arc<SimFile>, OsError> {
        let mut files = self.files.lock();
        if files.contains_key(path) {
            return Err(OsError::AlreadyExists(path.to_owned()));
        }
        let f = SimFile::new(path);
        files.insert(path.to_owned(), f.clone());
        Ok(f)
    }

    /// Remove a file from the namespace.
    ///
    /// # Errors
    ///
    /// [`OsError::NotFound`] if `path` does not exist.
    pub fn remove(&self, path: &str) -> Result<(), OsError> {
        self.files.lock().remove(path).map(|_| ()).ok_or_else(|| OsError::NotFound(path.to_owned()))
    }

    /// Paths currently present, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// Crash the whole filesystem: every file keeps its durable image
    /// plus a seeded subset of its unflushed blocks (see
    /// [`SimFile::crash`]). Per-file salts make the outcome independent
    /// of namespace iteration order.
    pub fn crash(&self, seed: u64) {
        for f in self.files.lock().values() {
            f.crash(seed);
        }
    }
}

struct PipeState {
    buf: VecDeque<u8>,
    write_closed: bool,
    read_closed: bool,
}

/// A bounded, blocking byte pipe (kernel pipe / socket buffer stand-in).
pub struct SimPipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

impl fmt::Debug for SimPipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock();
        f.debug_struct("SimPipe")
            .field("buffered", &s.buf.len())
            .field("capacity", &self.capacity)
            .field("write_closed", &s.write_closed)
            .finish()
    }
}

impl SimPipe {
    /// A pipe buffering at most `capacity` bytes.
    pub fn new(capacity: usize) -> Arc<SimPipe> {
        Arc::new(SimPipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                write_closed: false,
                read_closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// Write all of `bytes`, blocking while the pipe is full.
    ///
    /// # Errors
    ///
    /// [`OsError::Closed`] if the read end has been closed.
    pub fn write(&self, bytes: &[u8]) -> Result<(), OsError> {
        crashpoint::crash_point("simos_pipe_write");
        if crashpoint::is_frozen() {
            // The crash already happened; the bytes go nowhere. Reporting
            // success keeps the (dead) workload running to completion.
            return Ok(());
        }
        let mut remaining = bytes;
        let mut s = self.state.lock();
        while !remaining.is_empty() {
            if s.read_closed {
                return Err(OsError::Closed);
            }
            let room = self.capacity.saturating_sub(s.buf.len());
            if room == 0 {
                self.writable.wait(&mut s);
                continue;
            }
            let n = room.min(remaining.len());
            s.buf.extend(&remaining[..n]);
            remaining = &remaining[n..];
            self.readable.notify_all();
        }
        Ok(())
    }

    /// Read up to `max` bytes, blocking until data is available, the write
    /// end closes (then returns the remaining bytes, possibly empty) or
    /// `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`OsError::TimedOut`] if nothing arrived in time.
    pub fn read(&self, max: usize, timeout: Duration) -> Result<Vec<u8>, OsError> {
        if crashpoint::is_frozen() {
            return Err(OsError::TimedOut);
        }
        let mut s = self.state.lock();
        loop {
            if !s.buf.is_empty() {
                let n = max.min(s.buf.len());
                let out: Vec<u8> = s.buf.drain(..n).collect();
                self.writable.notify_all();
                return Ok(out);
            }
            if s.write_closed {
                return Ok(Vec::new());
            }
            if self.readable.wait_for(&mut s, timeout).timed_out() && s.buf.is_empty() {
                return Err(OsError::TimedOut);
            }
        }
    }

    /// Read without blocking; `None` when no data is buffered.
    pub fn try_read(&self, max: usize) -> Option<Vec<u8>> {
        if crashpoint::is_frozen() {
            return None;
        }
        let mut s = self.state.lock();
        if s.buf.is_empty() {
            return None;
        }
        let n = max.min(s.buf.len());
        let out: Vec<u8> = s.buf.drain(..n).collect();
        self.writable.notify_all();
        Some(out)
    }

    /// Push bytes back to the *front* of the pipe — the compensation x-call
    /// reads use to undo a consumed read on abort. A no-op once the world
    /// is frozen: a compensation queued before a crash must not replay
    /// into the post-crash image (the process that owed it is dead).
    pub fn unread(&self, bytes: &[u8]) {
        if crashpoint::is_frozen() {
            return;
        }
        let mut s = self.state.lock();
        for &b in bytes.iter().rev() {
            s.buf.push_front(b);
        }
        self.readable.notify_all();
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Close the write end; readers drain the remainder then see EOF.
    pub fn close_write(&self) {
        self.state.lock().write_closed = true;
        self.readable.notify_all();
    }

    /// Close the read end; writers see [`OsError::Closed`].
    pub fn close_read(&self) {
        self.state.lock().read_closed = true;
        self.writable.notify_all();
    }

    /// Crash the pipe: kernel pipe buffers are volatile, so everything
    /// in flight is lost. Ignores the freeze, like [`SimFile::crash`].
    pub fn crash(&self) {
        self.state.lock().buf.clear();
    }
}

/// A bidirectional loopback connection: two pipes.
#[derive(Debug, Clone)]
pub struct SimSocket {
    /// Incoming bytes (peer → us).
    pub rx: Arc<SimPipe>,
    /// Outgoing bytes (us → peer).
    pub tx: Arc<SimPipe>,
}

impl SimSocket {
    /// Create a connected pair of sockets with the given per-direction
    /// buffer capacity.
    pub fn pair(capacity: usize) -> (SimSocket, SimSocket) {
        let a_to_b = SimPipe::new(capacity);
        let b_to_a = SimPipe::new(capacity);
        (SimSocket { rx: b_to_a.clone(), tx: a_to_b.clone() }, SimSocket { rx: a_to_b, tx: b_to_a })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_append_and_read() {
        let fs = SimFs::new();
        let f = fs.open_or_create("/var/log/access.log");
        f.append(b"GET /");
        f.append(b" 200\n");
        assert_eq!(f.read_all(), b"GET / 200\n");
        assert_eq!(f.len(), 10);
    }

    #[test]
    fn file_truncate_undoes_append() {
        let fs = SimFs::new();
        let f = fs.open_or_create("f");
        f.append(b"keep");
        let mark = f.len();
        f.append(b"undo");
        f.truncate(mark);
        assert_eq!(f.read_all(), b"keep");
    }

    #[test]
    fn write_at_grows_file() {
        let fs = SimFs::new();
        let f = fs.open_or_create("f");
        f.write_at(3, b"xy");
        assert_eq!(f.read_all(), vec![0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn fs_namespace_operations() {
        let fs = SimFs::new();
        assert!(fs.open("missing").is_err());
        fs.open_or_create("b");
        fs.open_or_create("a");
        assert_eq!(fs.list(), vec!["a".to_string(), "b".to_string()]);
        assert!(fs.create_exclusive("a").is_err());
        fs.remove("a").unwrap();
        assert!(fs.open("a").is_err());
        assert_eq!(fs.remove("a"), Err(OsError::NotFound("a".into())));
    }

    #[test]
    fn same_handle_for_same_path() {
        let fs = SimFs::new();
        let f1 = fs.open_or_create("shared");
        let f2 = fs.open("shared").unwrap();
        f1.append(b"x");
        assert_eq!(f2.read_all(), b"x");
    }

    #[test]
    fn sync_promotes_cache_to_durable() {
        let fs = SimFs::new();
        let f = fs.open_or_create("db");
        f.append(b"record one; ");
        assert_eq!(f.durable_snapshot(), b"", "nothing durable before fsync");
        assert!(!f.dirty_blocks().is_empty());
        f.sync_all();
        assert_eq!(f.durable_snapshot(), b"record one; ");
        assert!(f.dirty_blocks().is_empty());
        f.append(b"record two");
        assert_eq!(f.durable_snapshot(), b"record one; ", "appends are cached until synced");
    }

    #[test]
    fn crash_keeps_durable_image_and_some_flush_subset() {
        let fs = SimFs::new();
        let f = fs.open_or_create("db");
        let synced: Vec<u8> = vec![b's'; 3 * BLOCK_BYTES];
        f.append(&synced);
        f.sync_all();
        let unsynced: Vec<u8> = vec![b'u'; 4 * BLOCK_BYTES];
        f.append(&unsynced);
        let cached = f.read_all();
        for seed in 0..32u64 {
            let img = f.crash_image(seed);
            assert_eq!(&img[..synced.len()], &synced[..], "durable prefix always survives");
            assert!(img.len() <= cached.len());
            // Every surviving block is bit-for-bit a cached block.
            for b in 3..img.len().div_ceil(BLOCK_BYTES) {
                let s = b * BLOCK_BYTES;
                let e = ((b + 1) * BLOCK_BYTES).min(img.len());
                let block = &img[s..e];
                assert!(
                    block == &cached[s..e] || block.iter().all(|&x| x == 0),
                    "block {b} is neither cached content nor a dropped hole"
                );
            }
            assert_eq!(img, f.crash_image(seed), "crash image is pure per seed");
        }
        // Different seeds keep different subsets (32 coins × 4 blocks: the
        // chance of all agreeing is negligible for this fixed model).
        let distinct: std::collections::HashSet<Vec<u8>> =
            (0..32u64).map(|s| f.crash_image(s)).collect();
        assert!(distinct.len() > 1, "the kept subset must depend on the seed");
        // Applying the crash collapses both images onto the chosen one.
        let expect = f.crash_image(9);
        fs.crash(9);
        assert_eq!(f.read_all(), expect);
        assert_eq!(f.durable_snapshot(), expect);
        assert!(f.dirty_blocks().is_empty());
    }

    #[test]
    fn pipe_buffers_are_volatile_across_crash() {
        let p = SimPipe::new(16);
        p.write(b"in flight").unwrap();
        p.crash();
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipe_roundtrip() {
        let p = SimPipe::new(16);
        p.write(b"hello").unwrap();
        assert_eq!(p.read(5, Duration::from_millis(100)).unwrap(), b"hello");
    }

    #[test]
    fn pipe_read_times_out_when_empty() {
        let p = SimPipe::new(4);
        assert_eq!(p.read(1, Duration::from_millis(20)), Err(OsError::TimedOut));
    }

    #[test]
    fn pipe_blocks_writer_at_capacity() {
        let p = SimPipe::new(4);
        p.write(b"1234").unwrap();
        std::thread::scope(|s| {
            let p2 = p.clone();
            s.spawn(move || p2.write(b"56").unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(p.buffered(), 4, "writer should be blocked at capacity");
            assert_eq!(p.read(4, Duration::from_millis(100)).unwrap(), b"1234");
            assert_eq!(p.read(2, Duration::from_millis(500)).unwrap(), b"56");
        });
    }

    #[test]
    fn unread_restores_order() {
        let p = SimPipe::new(16);
        p.write(b"abcdef").unwrap();
        let first = p.read(3, Duration::from_millis(100)).unwrap();
        assert_eq!(first, b"abc");
        p.unread(&first);
        assert_eq!(p.read(6, Duration::from_millis(100)).unwrap(), b"abcdef");
    }

    #[test]
    fn closed_write_end_yields_eof() {
        let p = SimPipe::new(8);
        p.write(b"zz").unwrap();
        p.close_write();
        assert_eq!(p.read(8, Duration::from_millis(100)).unwrap(), b"zz");
        assert_eq!(p.read(8, Duration::from_millis(100)).unwrap(), b"");
    }

    #[test]
    fn closed_read_end_rejects_writes() {
        let p = SimPipe::new(8);
        p.close_read();
        assert_eq!(p.write(b"x"), Err(OsError::Closed));
    }

    #[test]
    fn socket_pair_is_cross_wired() {
        let (a, b) = SimSocket::pair(64);
        a.tx.write(b"ping").unwrap();
        assert_eq!(b.rx.read(4, Duration::from_millis(100)).unwrap(), b"ping");
        b.tx.write(b"pong").unwrap();
        assert_eq!(a.rx.read(4, Duration::from_millis(100)).unwrap(), b"pong");
    }

    #[test]
    fn concurrent_pipe_producers_and_consumer_conserve_bytes() {
        let p = SimPipe::new(32);
        let total: usize = 4 * 256;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..256 {
                        p.write(&[7u8]).unwrap();
                    }
                });
            }
            let p = p.clone();
            s.spawn(move || {
                let mut got = 0;
                while got < total {
                    got += p.read(64, Duration::from_secs(5)).unwrap().len();
                }
                assert_eq!(got, total);
            });
        });
    }
}
