//! The sync-event trace recorder behind `txfix analyze`.
//!
//! Every synchronization layer in the workspace (this STM runtime,
//! `txfix-txlock`'s mutexes, `txfix-tmsync`'s serial mutexes and condition
//! variables) emits its lock, transaction and shared-access events through
//! the global sink in this module. The recorder is **off by default** and
//! zero-cost when disabled — each hook is a single relaxed atomic load, the
//! same discipline `txfix_txlock::lockdep` uses — so instrumented code pays
//! nothing in production runs. `txfix-analyze` turns it on around one
//! scenario execution and then replays the captured trace through its
//! happens-before and conflict-serializability passes.
//!
//! Shared data that is *not* managed by a [`TVar`](crate::TVar) or a lock
//! can participate via [`TracedCell`]: a word-sized cell whose plain
//! `load`/`store` calls model unsynchronized accesses (candidate races)
//! and whose `load_sync`/`fetch_add`/`compare_exchange` calls model
//! hardware-atomic accesses (never races, still traced).

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// How an access reads or writes its object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read.
    Read,
    /// A write.
    Write,
    /// An atomic read-modify-write (CAS, fetch-add, ...).
    Rmw,
}

impl AccessKind {
    /// Whether this access writes the object.
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Rmw)
    }
}

/// One recorded synchronization event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The recorder-assigned id of the emitting thread (dense, stable
    /// within one process; unrelated to OS thread ids).
    pub thread: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A thread is about to block on (or test) a lock acquisition. Emitted
    /// *before* the acquisition succeeds, so a deadlocked attempt still
    /// leaves its lock-order edge in the trace.
    LockAttempt {
        /// Lock identity.
        lock: u64,
        /// Lock name (diagnostics).
        name: String,
        /// Whether the acquisition is revocable (a transactional
        /// `lock_tx`): a would-be deadlock through this edge is resolved
        /// by preemption, not reported as a hang.
        preemptible: bool,
    },
    /// The acquisition succeeded; the thread now holds the lock.
    LockAcquired {
        /// Lock identity.
        lock: u64,
        /// Lock name (diagnostics).
        name: String,
    },
    /// The thread released the lock.
    LockReleased {
        /// Lock identity.
        lock: u64,
    },
    /// A memory transaction began an attempt.
    TxnBegin {
        /// The transaction's serial number.
        serial: u64,
    },
    /// The transaction committed (its buffered accesses take effect at
    /// this point in the trace).
    TxnCommit {
        /// The transaction's serial number.
        serial: u64,
    },
    /// The transaction aborted (its buffered accesses never happened).
    TxnAbort {
        /// The transaction's serial number.
        serial: u64,
    },
    /// A transactional read or write of a [`TVar`](crate::TVar).
    TxnAccess {
        /// The serial of the accessing transaction.
        serial: u64,
        /// The `TVar` id.
        var: u64,
        /// Read or write.
        kind: AccessKind,
    },
    /// A non-transactional access to shared data (a [`TracedCell`] or a
    /// direct `TVar` load/store outside any transaction).
    SharedAccess {
        /// Object identity (tagged so it can never collide with lock ids).
        object: u64,
        /// Object name (diagnostics).
        name: String,
        /// Read, write or RMW.
        kind: AccessKind,
        /// Whether the access is hardware-atomic. Two conflicting accesses
        /// race only if at least one of them is *not* atomic.
        atomic: bool,
    },
    /// A thread blocked on a condition variable.
    CvWait {
        /// Condvar identity.
        cv: u64,
        /// Condvar name (empty for unnamed condvars, which the
        /// wait/notify analysis passes skip).
        name: String,
    },
    /// The STM's global retry notifier was bumped (a committed writer
    /// announced new values to blocking `retry`). Emitted *after* the
    /// committing transaction's `TxnCommit` on the healthy path; a
    /// `RetryNotify` from a thread whose transaction is still open means
    /// the notification preceded the write-back (lost-wakeup hazard).
    RetryNotify,
    /// A thread signalled a condition variable.
    CvNotify {
        /// Condvar identity.
        cv: u64,
        /// Condvar name (empty for unnamed condvars).
        name: String,
    },
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// Ids handed out by [`next_object_id`] carry this tag so they can never
/// collide with `TVar` ids or `txfix-txlock` lock ids, which come from
/// their own counters.
const OBJECT_TAG: u64 = 1 << 63;

static NEXT_OBJECT: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The recorder's dense id for the calling thread, allocated on first use.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        let id = t.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        t.set(id);
        id
    })
}

/// Allocate an identity for a traced object that lives outside the STM's
/// and the lock runtime's id spaces (a [`TracedCell`], a serial mutex, a
/// condition variable).
pub fn next_object_id() -> u64 {
    OBJECT_TAG | NEXT_OBJECT.fetch_add(1, Ordering::Relaxed)
}

/// Whether `id` came from [`next_object_id`] — i.e. belongs to a traced
/// object *outside* the STM's and `txfix-txlock`'s id spaces (a serial
/// mutex, a condvar, a `TracedCell`). Lock events with external ids are
/// visible to the trace but not to `txfix_txlock::lockdep`, so analyses
/// that cross-check the two must filter on this.
pub fn is_external_object(id: u64) -> bool {
    id & OBJECT_TAG != 0
}

/// Start recording. Instrumented code everywhere in the process begins
/// appending events to the global sink.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop recording (already-captured events are kept until [`reset`] or
/// [`take`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the recorder is currently on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop all captured events.
pub fn reset() {
    EVENTS.lock().clear();
}

/// Remove and return the captured trace.
pub fn take() -> Vec<TraceEvent> {
    std::mem::take(&mut *EVENTS.lock())
}

/// The number of captured events (diagnostics, tests).
pub fn event_count() -> usize {
    EVENTS.lock().len()
}

/// Append one event to the sink if recording is on. The disabled path is a
/// single relaxed load; callers building an expensive payload should check
/// [`is_enabled`] first.
#[inline]
pub fn emit(kind: EventKind) {
    if !is_enabled() {
        return;
    }
    let ev = TraceEvent { thread: thread_id(), kind };
    EVENTS.lock().push(ev);
}

/// A word of shared memory whose accesses are visible to the recorder.
///
/// The corpus scenarios store their racy shared state in `TracedCell`s so
/// `txfix analyze` can observe the access pattern:
///
/// - [`load`](TracedCell::load) / [`store`](TracedCell::store) model
///   *plain* (unsynchronized) accesses — what buggy C code does with an
///   ordinary `int`. The underlying storage is still a Rust atomic, so the
///   demonstration itself stays UB-free, but the trace marks the access
///   non-atomic and the race detector treats conflicts as races.
/// - [`load_sync`](TracedCell::load_sync), [`store_sync`](TracedCell::store_sync),
///   [`fetch_add`](TracedCell::fetch_add), [`fetch_sub`](TracedCell::fetch_sub)
///   and [`compare_exchange`](TracedCell::compare_exchange) model
///   hardware-atomic operations: traced, but never reported as racing.
/// - [`peek`](TracedCell::peek) / [`set`](TracedCell::set) are invisible
///   to the recorder — scenario harnesses use them for post-join result
///   checks, which create no happens-before edge the trace could see and
///   must not show up as extra accesses.
pub struct TracedCell {
    id: u64,
    name: &'static str,
    value: AtomicU64,
}

impl fmt::Debug for TracedCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedCell").field("name", &self.name).field("value", &self.peek()).finish()
    }
}

impl TracedCell {
    /// Create a cell holding `value`.
    pub fn new(name: &'static str, value: u64) -> TracedCell {
        TracedCell { id: next_object_id(), name, value: AtomicU64::new(value) }
    }

    fn access(&self, kind: AccessKind, atomic: bool) {
        // A traced access is also a schedulable step: the deterministic
        // scheduler interleaves threads exactly at these operations.
        crate::sched::yield_point(if kind.writes() {
            crate::sched::SyncOp::SharedWrite(self.id)
        } else {
            crate::sched::SyncOp::SharedRead(self.id)
        });
        if !is_enabled() {
            return;
        }
        emit(EventKind::SharedAccess {
            object: self.id,
            name: self.name.to_string(),
            kind,
            atomic,
        });
    }

    /// A plain (unsynchronized) read.
    pub fn load(&self) -> u64 {
        self.access(AccessKind::Read, false);
        self.value.load(Ordering::SeqCst)
    }

    /// A plain (unsynchronized) write.
    pub fn store(&self, value: u64) {
        self.access(AccessKind::Write, false);
        self.value.store(value, Ordering::SeqCst);
    }

    /// An atomic read.
    pub fn load_sync(&self) -> u64 {
        self.access(AccessKind::Read, true);
        self.value.load(Ordering::SeqCst)
    }

    /// An atomic write.
    pub fn store_sync(&self, value: u64) {
        self.access(AccessKind::Write, true);
        self.value.store(value, Ordering::SeqCst);
    }

    /// An atomic fetch-and-add.
    pub fn fetch_add(&self, delta: u64) -> u64 {
        self.access(AccessKind::Rmw, true);
        self.value.fetch_add(delta, Ordering::SeqCst)
    }

    /// An atomic fetch-and-subtract.
    pub fn fetch_sub(&self, delta: u64) -> u64 {
        self.access(AccessKind::Rmw, true);
        self.value.fetch_sub(delta, Ordering::SeqCst)
    }

    /// An atomic compare-and-swap.
    ///
    /// # Errors
    ///
    /// The observed value, when it differs from `current`.
    pub fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.access(AccessKind::Rmw, true);
        self.value.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Read the value without tracing (harness assertions after joins).
    pub fn peek(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }

    /// Write the value without tracing (harness setup).
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::SeqCst);
    }

    /// The cell's trace identity.
    pub fn trace_id(&self) -> u64 {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as TestMutex;

    // The sink is process-global; serialize tests that toggle it.
    static GATE: TestMutex<()> = TestMutex::new(());

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _g = GATE.lock();
        reset();
        let cell = TracedCell::new("off", 0);
        cell.store(7);
        assert_eq!(cell.load(), 7);
        emit(EventKind::CvNotify { cv: 1, name: String::new() });
        assert_eq!(event_count(), 0, "disabled sink must stay empty");
    }

    #[test]
    fn enabled_recorder_orders_events() {
        let _g = GATE.lock();
        reset();
        enable();
        let cell = TracedCell::new("cnt", 0);
        let v = cell.load();
        cell.store(v + 1);
        cell.fetch_add(1);
        disable();
        let events = take();
        let kinds: Vec<(AccessKind, bool)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SharedAccess { kind, atomic, .. } => Some((*kind, *atomic)),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![(AccessKind::Read, false), (AccessKind::Write, false), (AccessKind::Rmw, true)]
        );
        assert_eq!(cell.peek(), 2);
    }

    #[test]
    fn peek_and_set_are_invisible() {
        let _g = GATE.lock();
        reset();
        enable();
        let cell = TracedCell::new("quiet", 0);
        cell.set(9);
        assert_eq!(cell.peek(), 9);
        disable();
        assert_eq!(take(), Vec::new());
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let here = thread_id();
        assert_eq!(here, thread_id());
        let there = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, there);
    }

    #[test]
    fn object_ids_are_tagged() {
        assert_ne!(next_object_id() & OBJECT_TAG, 0);
    }
}
