//! The TM-fixed object stores.
//!
//! [`StmStore`] is the Recipe 1 fix: `setSlotLock`, scope locks and the
//! ownership protocol are *deleted* and every slot access becomes an
//! atomic region ("deprecating the notion of ownership, and thus
//! eliminating the complex revocation protocol", §5.4.1). Its performance
//! is a direct function of the TM cost model — software barriers make it
//! slow, the hardware model makes it competitive.
//!
//! [`PreemptStore`] is the Recipe 3 fix: the locks stay (as revocable
//! [`TxMutex`]es), the common path is untouched lock/unlock, and only the
//! deadlock-prone cross-object site runs inside a preemptible transaction.

use super::store::ObjectStore;
use std::fmt;
use txfix_core::{preemptible, PreemptOptions};
use txfix_stm::{OverheadModel, TVar, Txn, TxnBuilder};
use txfix_txlock::TxMutex;

/// Recipe 1: all synchronization replaced by atomic regions.
pub struct StmStore {
    objects: Vec<Vec<TVar<i64>>>,
    txn: TxnBuilder,
    name: &'static str,
}

impl fmt::Debug for StmStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StmStore")
            .field("name", &self.name)
            .field("objects", &self.objects.len())
            .finish()
    }
}

impl StmStore {
    /// Store with an explicit cost model.
    pub fn with_overhead(
        objects: usize,
        slots: usize,
        overhead: OverheadModel,
        name: &'static str,
    ) -> StmStore {
        StmStore {
            objects: (0..objects).map(|_| (0..slots).map(|_| TVar::new(0)).collect()).collect(),
            txn: Txn::build().site("spidermonkey_stm").overhead(overhead),
            name,
        }
    }

    /// Software-TM cost model (instrumented barriers, ~3–5× section cost).
    pub fn software(objects: usize, slots: usize) -> StmStore {
        Self::with_overhead(objects, slots, OverheadModel::SOFTWARE_TM, "tm-replace (software)")
    }

    /// Software-TM cost model with the *eager* write policy — the closest
    /// match for Intel's STM, the paper's actual platform.
    pub fn software_eager(objects: usize, slots: usize) -> StmStore {
        let mut s = Self::with_overhead(
            objects,
            slots,
            OverheadModel::SOFTWARE_TM,
            "tm-replace (software, eager)",
        );
        s.txn = s.txn.write_policy(txfix_stm::WritePolicy::Eager);
        s
    }

    /// Hardware-TM cost model (LogTM-SE-like, near-zero barriers).
    pub fn hardware(objects: usize, slots: usize) -> StmStore {
        Self::with_overhead(objects, slots, OverheadModel::HARDWARE_TM, "tm-replace (hardware)")
    }

    /// No modelled overhead (functional testing).
    pub fn uninstrumented(objects: usize, slots: usize) -> StmStore {
        Self::with_overhead(objects, slots, OverheadModel::NONE, "tm-replace (no model)")
    }
}

impl ObjectStore for StmStore {
    fn set_slot(&self, _thread: usize, obj: usize, slot: usize, value: i64) {
        let v = &self.objects[obj][slot];
        self.txn.try_run(|txn| v.write(txn, value)).expect("slot write cannot fail");
    }

    fn get_slot(&self, _thread: usize, obj: usize, slot: usize) -> i64 {
        let v = &self.objects[obj][slot];
        self.txn.try_run(|txn| v.read(txn)).expect("slot read cannot fail").0
    }

    fn move_slot(&self, _thread: usize, src: usize, dst: usize, slot: usize) -> bool {
        let s = &self.objects[src][slot];
        let d = &self.objects[dst][slot];
        self.txn
            .try_run(|txn| {
                let v = s.read(txn)?;
                if v != 0 {
                    s.write(txn, 0)?;
                    d.write(txn, v)?;
                }
                Ok(())
            })
            .expect("move cannot fail");
        true
    }

    fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn variant_name(&self) -> &'static str {
        self.name
    }
}

/// The hardware-TM datapoint of §5.4.1: the same Recipe 1 fix, with the
/// hardware modelled as tracking conflicts for free. Slot accesses are
/// plain atomic loads/stores (single-location transactions a real HTM
/// retires at cache speed) and the cross-object move is a short critical
/// section standing in for a two-line hardware transaction.
pub struct HwModelStore {
    objects: Vec<Vec<std::sync::atomic::AtomicI64>>,
    move_lock: parking_lot::Mutex<()>,
}

impl fmt::Debug for HwModelStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HwModelStore").field("objects", &self.objects.len()).finish()
    }
}

impl HwModelStore {
    /// Create a store of `objects` objects with `slots` slots each.
    pub fn new(objects: usize, slots: usize) -> HwModelStore {
        use std::sync::atomic::AtomicI64;
        HwModelStore {
            objects: (0..objects)
                .map(|_| (0..slots).map(|_| AtomicI64::new(0)).collect())
                .collect(),
            move_lock: parking_lot::Mutex::new(()),
        }
    }
}

/// Per-access begin/commit cost of a hardware transaction: a full fence,
/// standing in for the register-checkpoint/commit work (tens of cycles,
/// per the LogTM-SE literature).
#[inline]
fn hw_txn_cost() {
    std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
}

impl ObjectStore for HwModelStore {
    fn set_slot(&self, _thread: usize, obj: usize, slot: usize, value: i64) {
        hw_txn_cost();
        self.objects[obj][slot].store(value, std::sync::atomic::Ordering::Release);
    }

    fn get_slot(&self, _thread: usize, obj: usize, slot: usize) -> i64 {
        hw_txn_cost();
        self.objects[obj][slot].load(std::sync::atomic::Ordering::Acquire)
    }

    fn move_slot(&self, _thread: usize, src: usize, dst: usize, slot: usize) -> bool {
        use std::sync::atomic::Ordering::{AcqRel, Acquire, Release};
        let _g = self.move_lock.lock();
        let v = self.objects[src][slot].swap(0, AcqRel);
        if v != 0 {
            self.objects[dst][slot].store(v, Release);
        } else {
            // keep dst as-is
            let _ = self.objects[dst][slot].load(Acquire);
        }
        true
    }

    fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn variant_name(&self) -> &'static str {
        "tm-replace (hardware model)"
    }
}

/// Recipe 3: keep per-object locks, make them revocable, and run only the
/// deadlock-prone cross-object operation inside a preemptible transaction.
pub struct PreemptStore {
    set_slot_lock: TxMutex<()>,
    objects: Vec<TxMutex<Vec<i64>>>,
}

impl fmt::Debug for PreemptStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreemptStore").field("objects", &self.objects.len()).finish()
    }
}

impl PreemptStore {
    /// Create a store of `objects` objects with `slots` slots each.
    pub fn new(objects: usize, slots: usize) -> PreemptStore {
        PreemptStore {
            set_slot_lock: TxMutex::new("sm.setSlotLock", ()),
            objects: (0..objects)
                .map(|i| {
                    // Leak a tiny name string once per object; object stores are
                    // created a handful of times per process (benchmark setup).
                    let name: &'static str = Box::leak(format!("sm.scope[{i}]").into_boxed_str());
                    TxMutex::new(name, vec![0; slots])
                })
                .collect(),
        }
    }
}

impl ObjectStore for PreemptStore {
    fn set_slot(&self, _thread: usize, obj: usize, slot: usize, value: i64) {
        // Common path: plain (non-transactional) lock, as before the fix.
        let mut g = self.objects[obj].lock().expect("single-lock path cannot cycle");
        g[slot] = value;
    }

    fn get_slot(&self, _thread: usize, obj: usize, slot: usize) -> i64 {
        let g = self.objects[obj].lock().expect("single-lock path cannot cycle");
        g[slot]
    }

    fn move_slot(&self, _thread: usize, src: usize, dst: usize, slot: usize) -> bool {
        // The one deadlock-prone site, wrapped per Recipe 3: locks acquired
        // revocably inside an abortable transaction; a cycle preempts us,
        // releases the locks, backs off and retries.
        preemptible(&PreemptOptions::default(), |txn| {
            // Acquisition phase: every lock_tx is an abort point and may
            // preempt us (releasing what we hold).
            self.set_slot_lock.lock_tx(txn)?;
            self.objects[src].lock_tx(txn)?;
            self.objects[dst].lock_tx(txn)?;
            // Mutation phase: all locks held, no abort points — safe even
            // though lock-protected data is not isolated by the STM.
            let v = self.objects[src].with_held(|s| {
                let v = s[slot];
                s[slot] = 0;
                v
            });
            if v != 0 {
                self.objects[dst].with_held(|d| d[slot] = v);
            }
            Ok(())
        })
        .expect("preemptible move cannot fail terminally");
        true
    }

    fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn variant_name(&self) -> &'static str {
        "tm-preempt (recipe 3)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ObjectStore) {
        store.set_slot(0, 0, 0, 11);
        assert_eq!(store.get_slot(0, 0, 0), 11);
        assert!(store.move_slot(0, 0, 1, 0));
        assert_eq!(store.get_slot(0, 1, 0), 11);
        assert_eq!(store.get_slot(0, 0, 0), 0);
    }

    #[test]
    fn stm_store_basics() {
        exercise(&StmStore::uninstrumented(2, 2));
    }

    #[test]
    fn preempt_store_basics() {
        exercise(&PreemptStore::new(2, 2));
    }

    #[test]
    fn concurrent_movers_never_deadlock_or_lose_values() {
        // Two threads move a token back and forth between the same pair of
        // objects in opposite directions: the classic cycle. Preemption
        // must resolve every collision.
        let store = PreemptStore::new(2, 1);
        store.set_slot(0, 0, 0, 1);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let store = &store;
                s.spawn(move || {
                    for _ in 0..200 {
                        store.move_slot(t, t, 1 - t, 0);
                    }
                });
            }
        });
        let total = store.get_slot(0, 0, 0) + store.get_slot(0, 1, 0);
        assert_eq!(total, 1, "token duplicated or lost");
    }

    #[test]
    fn hw_model_store_basics_and_conservation() {
        exercise(&HwModelStore::new(2, 2));
        let store = HwModelStore::new(2, 1);
        store.set_slot(0, 0, 0, 1);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let store = &store;
                s.spawn(move || {
                    for _ in 0..300 {
                        store.move_slot(t, t, 1 - t, 0);
                    }
                });
            }
        });
        let total = store.get_slot(0, 0, 0) + store.get_slot(0, 1, 0);
        assert_eq!(total, 1, "token duplicated or lost in the hardware model");
    }

    #[test]
    fn stm_store_conserves_token_under_contention() {
        let store = StmStore::uninstrumented(2, 1);
        store.set_slot(0, 0, 0, 1);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let store = &store;
                s.spawn(move || {
                    for _ in 0..300 {
                        store.move_slot(t, t, 1 - t, 0);
                    }
                });
            }
        });
        let total = store.get_slot(0, 0, 0) + store.get_slot(0, 1, 0);
        assert_eq!(total, 1);
    }
}
