//! # txfix-static: static critical-section analysis with fix synthesis
//!
//! The dynamic analyzer (`txfix-analyze`) only flags interleavings its
//! recorder actually observes. This crate analyzes **critical-section
//! summaries** — declarative models of each corpus scenario variant
//! ([`ir::ScenarioSummary`]) — so a hazard is reported when *any*
//! interleaving of the modeled paths could hit it:
//!
//! - a **lockset pass** (races and dropped-lockset atomicity,
//!   RacerD-style),
//! - a **lock-order-graph pass** (cycles, with `TxMutex`-revocable
//!   acquisitions exempt, mirroring `txlock::lockdep`),
//! - **condition-variable passes** (wait-with-held-lock cycles and lost
//!   wakeups).
//!
//! For every finding, [`synth`] then *synthesizes* the paper's fix
//! recipe as an IR transformation and re-runs all passes on the
//! transformed summaries, proving statically that the fix clears the
//! finding without introducing new hazards ([`lint_summary`] packages
//! the whole loop as the `txfix lint` engine).
//!
//! The crate deliberately depends only on `txfix-core`: `txfix-corpus`
//! registers the summaries, and the CLI glues the two together.

#![warn(missing_docs)]

pub mod ir;
pub mod region;
pub mod report;
pub mod synth;

mod facts;
mod lockorder;
mod lockset;
mod waits;

pub use ir::{Op, Path, PathSummary, ScenarioSummary, Summary};
pub use region::{footprint, group_closure, wrap_region_seed, Region};
pub use report::{Finding, Hazard, LintFinding, LintReport};
pub use synth::{apply, synthesize, Verification};

use txfix_core::{recipe_candidates, Analysis};

/// Run every static pass over `summary` and return the findings
/// (lockset races, atomicity, lock-order cycles, wait cycles, lost
/// wakeups — in that order).
pub fn check(summary: &ScenarioSummary) -> Vec<Finding> {
    let mut out = lockset::races(summary);
    out.extend(lockset::atomicity(summary));
    out.extend(lockorder::cycles(summary));
    out.extend(waits::wait_cycles(summary));
    out.extend(waits::lost_wakeups(summary));
    out
}

/// The full lint loop for one summary: validate, run the passes, and
/// for each finding synthesize and statically verify the candidate
/// recipes. `analysis` ties the summary to the corpus bug record's
/// §5.3 plan when there is one; without it, each hazard class falls
/// back to its default recipe.
///
/// # Errors
///
/// When the summary fails [`ScenarioSummary::validate`].
pub fn lint_summary(
    summary: &ScenarioSummary,
    analysis: Option<&Analysis>,
) -> Result<LintReport, String> {
    summary.validate()?;
    let findings = check(summary);
    let lint_findings = findings
        .iter()
        .map(|f| {
            let fixes = recipe_candidates(analysis, f.hazard.class())
                .into_iter()
                .map(|recipe| synth::synthesize(summary, &findings, &f.hazard, recipe))
                .collect();
            LintFinding { hazard: f.hazard.clone(), explanation: f.explanation.clone(), fixes }
        })
        .collect();
    Ok(LintReport {
        scenario: summary.key.clone(),
        variant: summary.variant.clone(),
        paths: summary.paths.len(),
        findings: lint_findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use txfix_core::{FixPlan, HazardClass, Recipe};

    fn racy() -> ScenarioSummary {
        Summary::new("demo", "buggy")
            .path(Path::new("p0").read("x").write("x"))
            .path(Path::new("p1").write("x"))
            .build()
    }

    #[test]
    fn check_runs_all_passes() {
        let findings = check(&racy());
        assert!(findings.iter().any(|f| matches!(f.hazard, Hazard::Race { .. })));
        assert!(findings.iter().any(|f| matches!(f.hazard, Hazard::Atomicity { .. })));
    }

    #[test]
    fn lint_summary_synthesizes_the_plan_recipes() {
        let plan = Analysis::Fixable(FixPlan {
            primary: Recipe::WrapAll,
            simplified_by: Some(Recipe::WrapUnprotected),
        });
        let report = lint_summary(&racy(), Some(&plan)).unwrap();
        assert!(report.has_findings());
        for f in &report.findings {
            assert_eq!(
                f.fixes.iter().map(|v| v.recipe).collect::<Vec<_>>(),
                vec![Recipe::WrapAll, Recipe::WrapUnprotected],
            );
            assert!(f.has_verified_fix(), "{f:?}");
        }
    }

    #[test]
    fn lint_summary_falls_back_per_hazard_class() {
        let report = lint_summary(&racy(), None).unwrap();
        for f in &report.findings {
            assert_eq!(f.hazard.class(), HazardClass::SharedData);
            assert_eq!(f.fixes.len(), 1);
            assert_eq!(f.fixes[0].recipe, Recipe::WrapAll);
            assert!(f.fixes[0].verified);
        }
    }

    #[test]
    fn lint_summary_rejects_malformed_summaries() {
        let bad = Summary::new("demo", "buggy").path(Path::new("p").acquire("l")).build();
        assert!(lint_summary(&bad, None).is_err());
    }
}
