//! The critical-section summary IR.
//!
//! A [`ScenarioSummary`] is a declarative model of one scenario variant:
//! for each concurrent path, the order of lock acquisitions/releases,
//! atomic-region entry/exit, shared-location reads/writes, and
//! condition-variable traffic; plus the invariant groups tying locations
//! together. Corpus scenarios register one summary per variant, and the
//! passes in this crate analyze the summaries without running any code —
//! so a hazard is reported when *any* interleaving of the modeled paths
//! could hit it, not just the ones a recorder happens to observe.
//!
//! Summaries are built with the fluent [`Summary`]/[`Path`] builders and
//! checked for structural sanity (balanced acquire/release and atomic
//! nesting, waits only on held monitors) by [`ScenarioSummary::validate`].

use std::collections::BTreeSet;
use std::fmt;

/// One operation in a path summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Acquire `lock`. Revocable acquisitions model Recipe 3's
    /// `TxMutex::lock_tx` — the lock can be preempted by a conflicting
    /// transaction, so the lock-order pass exempts them from cycles.
    Acquire {
        /// Lock name (shared across paths and scenarios).
        lock: String,
        /// Whether the acquisition is revocable (`TxMutex`-style).
        revocable: bool,
    },
    /// Release `lock` (must be held).
    Release {
        /// Lock name.
        lock: String,
    },
    /// Enter an atomic region. `serialized_with` lists lock names whose
    /// critical sections the region is serialized against (Recipe 4's
    /// `SerialDomain`); empty for a plain atomic region.
    AtomicBegin {
        /// Locks the region is mutually exclusive with.
        serialized_with: Vec<String>,
    },
    /// Leave the innermost atomic region.
    AtomicEnd,
    /// Read shared location `loc`.
    Read {
        /// Location name.
        loc: String,
        /// Whether the access is hardware-atomic (e.g. `AtomicUsize`).
        atomic: bool,
    },
    /// Write shared location `loc`.
    Write {
        /// Location name.
        loc: String,
        /// Whether the access is hardware-atomic.
        atomic: bool,
    },
    /// An indivisible hardware read-modify-write of `loc` (CAS loop,
    /// fetch-and-add): reads and writes the location in one step.
    Rmw {
        /// Location name.
        loc: String,
    },
    /// Block on condition variable `cv` until notified, releasing and
    /// reacquiring the held `monitor` around the sleep. `predicate`
    /// names the location the waiter's predicate reads, so the
    /// lost-wakeup pass can relate notifications to the state they
    /// announce.
    Wait {
        /// Condition-variable name.
        cv: String,
        /// The monitor lock released for the duration of the wait.
        monitor: String,
        /// The location the wait predicate reads.
        predicate: String,
    },
    /// Notify waiters of `cv`.
    Notify {
        /// Condition-variable name.
        cv: String,
    },
}

impl Op {
    /// The location a data access touches, if this op is one.
    pub fn loc(&self) -> Option<&str> {
        match self {
            Op::Read { loc, .. } | Op::Write { loc, .. } | Op::Rmw { loc } => Some(loc),
            _ => None,
        }
    }
}

/// One concurrent path (thread) of a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSummary {
    /// Diagnostic name (e.g. `"deleter"`, `"worker"`).
    pub name: String,
    /// The path's operations in program order.
    pub ops: Vec<Op>,
}

/// The summary of one scenario variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioSummary {
    /// The scenario key (matches the corpus key).
    pub key: String,
    /// Which variant is modeled (`buggy`, `dev`, `tm`).
    pub variant: String,
    /// Location groups tied by a multi-location invariant: accessing two
    /// group members without continuous protection is an atomicity
    /// hazard even when each member alone looks consistent.
    pub groups: Vec<Vec<String>>,
    /// The concurrent paths.
    pub paths: Vec<PathSummary>,
}

impl ScenarioSummary {
    /// Structural sanity check: every release matches a held acquire,
    /// every wait names a held monitor, atomic regions nest, and every
    /// path ends with nothing held and no region open.
    ///
    /// # Errors
    ///
    /// A description of the first violation, naming the path.
    pub fn validate(&self) -> Result<(), String> {
        for p in &self.paths {
            let mut held: Vec<&str> = Vec::new();
            let mut depth = 0usize;
            for (i, op) in p.ops.iter().enumerate() {
                match op {
                    Op::Acquire { lock, .. } => {
                        if held.contains(&lock.as_str()) {
                            return Err(format!(
                                "{}/{}: op {i} reacquires held lock {lock:?}",
                                self.key, p.name
                            ));
                        }
                        held.push(lock);
                    }
                    Op::Release { lock } => {
                        let Some(pos) = held.iter().rposition(|h| *h == lock) else {
                            return Err(format!(
                                "{}/{}: op {i} releases unheld lock {lock:?}",
                                self.key, p.name
                            ));
                        };
                        held.remove(pos);
                    }
                    Op::AtomicBegin { .. } => depth += 1,
                    Op::AtomicEnd => {
                        depth = depth.checked_sub(1).ok_or_else(|| {
                            format!(
                                "{}/{}: op {i} ends an unopened atomic region",
                                self.key, p.name
                            )
                        })?;
                    }
                    Op::Wait { monitor, .. } => {
                        if !held.contains(&monitor.as_str()) {
                            return Err(format!(
                                "{}/{}: op {i} waits without holding monitor {monitor:?}",
                                self.key, p.name
                            ));
                        }
                    }
                    Op::Read { .. } | Op::Write { .. } | Op::Rmw { .. } | Op::Notify { .. } => {}
                }
            }
            if !held.is_empty() {
                return Err(format!("{}/{}: path ends holding {held:?}", self.key, p.name));
            }
            if depth != 0 {
                return Err(format!("{}/{}: path ends inside an atomic region", self.key, p.name));
            }
        }
        Ok(())
    }

    /// Every lock name acquired anywhere in the summary.
    pub fn lock_names(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for p in &self.paths {
            for op in &p.ops {
                if let Op::Acquire { lock, .. } = op {
                    out.insert(lock.clone());
                }
            }
        }
        out
    }
}

impl fmt::Display for ScenarioSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} variant, {} paths)", self.key, self.variant, self.paths.len())
    }
}

/// Fluent builder for a [`PathSummary`].
#[derive(Clone, Debug)]
pub struct Path {
    name: String,
    ops: Vec<Op>,
}

impl Path {
    /// Start a path named `name`.
    pub fn new(name: &str) -> Path {
        Path { name: name.to_string(), ops: Vec::new() }
    }

    fn push(mut self, op: Op) -> Path {
        self.ops.push(op);
        self
    }

    /// Acquire `lock` non-revocably (a plain mutex).
    pub fn acquire(self, lock: &str) -> Path {
        self.push(Op::Acquire { lock: lock.to_string(), revocable: false })
    }

    /// Acquire `lock` revocably (Recipe 3's `TxMutex::lock_tx`).
    pub fn acquire_tx(self, lock: &str) -> Path {
        self.push(Op::Acquire { lock: lock.to_string(), revocable: true })
    }

    /// Release `lock`.
    pub fn release(self, lock: &str) -> Path {
        self.push(Op::Release { lock: lock.to_string() })
    }

    /// Enter a plain atomic region.
    pub fn atomic_begin(self) -> Path {
        self.push(Op::AtomicBegin { serialized_with: Vec::new() })
    }

    /// Enter an atomic region serialized against the named locks'
    /// critical sections (Recipe 4).
    pub fn atomic_serialized(self, locks: &[&str]) -> Path {
        self.push(Op::AtomicBegin {
            serialized_with: locks.iter().map(|l| l.to_string()).collect(),
        })
    }

    /// Leave the innermost atomic region.
    pub fn atomic_end(self) -> Path {
        self.push(Op::AtomicEnd)
    }

    /// Read `loc` non-atomically.
    pub fn read(self, loc: &str) -> Path {
        self.push(Op::Read { loc: loc.to_string(), atomic: false })
    }

    /// Read `loc` with a hardware-atomic load.
    pub fn read_atomic(self, loc: &str) -> Path {
        self.push(Op::Read { loc: loc.to_string(), atomic: true })
    }

    /// Write `loc` non-atomically.
    pub fn write(self, loc: &str) -> Path {
        self.push(Op::Write { loc: loc.to_string(), atomic: false })
    }

    /// Write `loc` with a hardware-atomic store.
    pub fn write_atomic(self, loc: &str) -> Path {
        self.push(Op::Write { loc: loc.to_string(), atomic: true })
    }

    /// An indivisible read-modify-write of `loc`.
    pub fn rmw(self, loc: &str) -> Path {
        self.push(Op::Rmw { loc: loc.to_string() })
    }

    /// Wait on `cv`, releasing `monitor` for the sleep; the wait
    /// predicate reads `predicate`.
    pub fn wait(self, cv: &str, monitor: &str, predicate: &str) -> Path {
        self.push(Op::Wait {
            cv: cv.to_string(),
            monitor: monitor.to_string(),
            predicate: predicate.to_string(),
        })
    }

    /// Notify waiters of `cv`.
    pub fn notify(self, cv: &str) -> Path {
        self.push(Op::Notify { cv: cv.to_string() })
    }

    /// Finish the path.
    pub fn build(self) -> PathSummary {
        PathSummary { name: self.name, ops: self.ops }
    }
}

/// Fluent builder for a [`ScenarioSummary`].
#[derive(Clone, Debug)]
pub struct Summary {
    inner: ScenarioSummary,
}

impl Summary {
    /// Start a summary for scenario `key`, variant `variant`.
    pub fn new(key: &str, variant: &str) -> Summary {
        Summary {
            inner: ScenarioSummary {
                key: key.to_string(),
                variant: variant.to_string(),
                groups: Vec::new(),
                paths: Vec::new(),
            },
        }
    }

    /// Declare a multi-location invariant group.
    pub fn group(mut self, locs: &[&str]) -> Summary {
        self.inner.groups.push(locs.iter().map(|l| l.to_string()).collect());
        self
    }

    /// Add a concurrent path.
    pub fn path(mut self, p: Path) -> Summary {
        self.inner.paths.push(p.build());
        self
    }

    /// Finish the summary.
    pub fn build(self) -> ScenarioSummary {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_a_valid_summary() {
        let s = Summary::new("demo", "buggy")
            .group(&["a", "b"])
            .path(Path::new("p0").acquire("l").read("a").write("b").release("l"))
            .path(Path::new("p1").atomic_begin().rmw("a").atomic_end())
            .build();
        assert_eq!(s.paths.len(), 2);
        assert!(s.validate().is_ok());
        assert_eq!(s.lock_names().into_iter().collect::<Vec<_>>(), vec!["l".to_string()]);
        assert_eq!(s.to_string(), "demo (buggy variant, 2 paths)");
    }

    #[test]
    fn validate_rejects_structural_errors() {
        let unbalanced =
            Summary::new("demo", "buggy").path(Path::new("p").acquire("l").read("a")).build();
        assert!(unbalanced.validate().unwrap_err().contains("ends holding"));

        let unheld_release =
            Summary::new("demo", "buggy").path(Path::new("p").release("l")).build();
        assert!(unheld_release.validate().unwrap_err().contains("unheld"));

        let reacquire = Summary::new("demo", "buggy")
            .path(Path::new("p").acquire("l").acquire("l").release("l").release("l"))
            .build();
        assert!(reacquire.validate().unwrap_err().contains("reacquires"));

        let bad_atomic = Summary::new("demo", "buggy").path(Path::new("p").atomic_end()).build();
        assert!(bad_atomic.validate().unwrap_err().contains("unopened"));

        let open_atomic =
            Summary::new("demo", "buggy").path(Path::new("p").atomic_begin().read("a")).build();
        assert!(open_atomic.validate().unwrap_err().contains("inside an atomic region"));

        let bad_wait =
            Summary::new("demo", "buggy").path(Path::new("p").wait("cv", "m", "flag")).build();
        assert!(bad_wait.validate().unwrap_err().contains("without holding monitor"));
    }
}
