//! Model-checking support: a seeded deterministic-scheduler harness and
//! the BTreeMap-oracle history checker behind the differential tests.
//!
//! Every committed op carries the shard history version at its
//! serialization point ([`crate::OpStats::version`]): writes bump the
//! version inside their transaction, reads observe it in theirs. Sorting
//! a shard's events by `(version, reads-after-the-write)` therefore
//! reconstructs *the* serialization order the STM (or the dev lock)
//! actually produced, and replaying that order against a sequential
//! `BTreeMap` decides linearizability with zero search.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use txfix_stm::chaos::splitmix64;
use txfix_stm::sched::{self, Pick, Picker, RunLog, SchedStop};

/// A picker driving scheduling decisions from a splitmix64 stream: same
/// seed, same schedule, machine-independent.
pub fn seeded_picker(seed: u64) -> Picker {
    let mut state = splitmix64(seed ^ 0x05EE_D0F5_C4ED);
    Box::new(move |choices| {
        state = splitmix64(state);
        Pick::Choose((state % choices.len() as u64) as usize)
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `workers` under the deterministic scheduler with a
/// [`seeded_picker`] schedule, collecting each worker's return value.
///
/// Must be called with the scheduler's exclusivity gate held
/// (wrap the whole harness in [`sched::run_exclusively`]). A worker that
/// panics aborts the run; its slot yields `None` and the [`RunLog`]'s
/// stop reason says why.
pub fn run_workers<'a, R: Send + 'a>(
    seed: u64,
    max_steps: u64,
    workers: Vec<Box<dyn FnOnce() -> R + Send + 'a>>,
) -> (Vec<Option<R>>, RunLog) {
    sched::begin_run(workers.len(), max_steps, seeded_picker(seed));
    let mut results: Vec<Option<R>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(slot, body)| {
                s.spawn(move || {
                    sched::register(slot);
                    match catch_unwind(AssertUnwindSafe(body)) {
                        Ok(r) => {
                            sched::finish();
                            Some(r)
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<SchedStop>().is_none() {
                                sched::abort_run(panic_message(payload.as_ref()));
                            }
                            None
                        }
                    }
                })
            })
            .collect();
        results = handles.into_iter().map(|h| h.join().unwrap_or(None)).collect();
    });
    (results, sched::end_run())
}

/// One op of a recorded history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelOp {
    /// `get(key)`.
    Get(String),
    /// `put(key, value)`.
    Put(String, String),
    /// `delete(key)`.
    Delete(String),
    /// `scan(shard)`.
    Scan,
}

/// What the store replied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelResult {
    /// Get's mapping / put's or delete's displaced value.
    Value(Option<String>),
    /// Scan's snapshot.
    Snapshot(Vec<(String, String)>),
}

/// One committed op as the harness recorded it.
#[derive(Clone, Debug)]
pub struct Event {
    /// Shard the op ran on.
    pub shard: usize,
    /// Shard history version at the op's serialization point.
    pub version: u64,
    /// The op.
    pub op: ModelOp,
    /// The store's reply.
    pub result: ModelResult,
}

/// Replay `events` against a sequential oracle, shard by shard, in the
/// serialization order their versions encode. Returns the number of
/// events checked, or the first divergence.
///
/// The check is strict: write versions on a shard must be exactly
/// `1..=n` with no gaps (every version the store handed out must appear
/// in the history), every displaced value must match the oracle, and
/// every read must see exactly the oracle state of its version.
pub fn check_history(events: &[Event]) -> Result<usize, String> {
    let mut by_shard: BTreeMap<usize, Vec<&Event>> = BTreeMap::new();
    for e in events {
        by_shard.entry(e.shard).or_default().push(e);
    }
    let mut checked = 0;
    for (shard, mut evs) in by_shard {
        // Writes first within a version: the write that produced version
        // v serializes before every read that observed v.
        evs.sort_by_key(|e| (e.version, matches!(e.op, ModelOp::Get(_) | ModelOp::Scan)));
        let mut oracle: BTreeMap<String, String> = BTreeMap::new();
        let mut version = 0u64;
        for e in evs {
            let fail = |what: &str, want: &ModelResult| {
                Err(format!(
                    "shard {shard} version {v}: {what}: op {op:?} returned {got:?}, oracle says \
                     {want:?}",
                    v = e.version,
                    op = e.op,
                    got = e.result,
                ))
            };
            match &e.op {
                ModelOp::Put(k, v) => {
                    if e.version != version + 1 {
                        return Err(format!(
                            "shard {shard}: write version {} after version {version} (lost or \
                             duplicated write)",
                            e.version
                        ));
                    }
                    version = e.version;
                    let want = ModelResult::Value(oracle.insert(k.clone(), v.clone()));
                    if e.result != want {
                        return fail("displaced value diverged", &want);
                    }
                }
                ModelOp::Delete(k) => {
                    if e.version != version + 1 {
                        return Err(format!(
                            "shard {shard}: write version {} after version {version} (lost or \
                             duplicated write)",
                            e.version
                        ));
                    }
                    version = e.version;
                    let want = ModelResult::Value(oracle.remove(k));
                    if e.result != want {
                        return fail("displaced value diverged", &want);
                    }
                }
                ModelOp::Get(k) => {
                    if e.version != version {
                        return Err(format!(
                            "shard {shard}: read observed version {} during version {version}",
                            e.version
                        ));
                    }
                    let want = ModelResult::Value(oracle.get(k).cloned());
                    if e.result != want {
                        return fail("stale or phantom read", &want);
                    }
                }
                ModelOp::Scan => {
                    if e.version != version {
                        return Err(format!(
                            "shard {shard}: scan observed version {} during version {version}",
                            e.version
                        ));
                    }
                    let want = ModelResult::Snapshot(
                        oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
                    );
                    if e.result != want {
                        return fail("torn scan", &want);
                    }
                }
            }
            checked += 1;
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(shard: usize, version: u64, k: &str, v: &str, displaced: Option<&str>) -> Event {
        Event {
            shard,
            version,
            op: ModelOp::Put(k.into(), v.into()),
            result: ModelResult::Value(displaced.map(String::from)),
        }
    }

    fn r(shard: usize, version: u64, k: &str, saw: Option<&str>) -> Event {
        Event {
            shard,
            version,
            op: ModelOp::Get(k.into()),
            result: ModelResult::Value(saw.map(String::from)),
        }
    }

    #[test]
    fn a_consistent_history_checks_out_regardless_of_arrival_order() {
        let events = vec![
            r(0, 2, "a", Some("2")),
            w(0, 2, "a", "2", Some("1")),
            w(0, 1, "a", "1", None),
            r(0, 0, "a", None),
            w(1, 1, "z", "9", None),
        ];
        assert_eq!(check_history(&events), Ok(5));
    }

    #[test]
    fn divergences_are_named() {
        // A stale read: saw version 1's value while claiming version 2.
        let events =
            vec![w(0, 1, "a", "1", None), w(0, 2, "a", "2", Some("1")), r(0, 2, "a", Some("1"))];
        assert!(check_history(&events).unwrap_err().contains("stale or phantom read"));
        // A lost update: version 2 never appears.
        let events = vec![w(0, 1, "a", "1", None), w(0, 3, "a", "3", Some("1"))];
        assert!(check_history(&events).unwrap_err().contains("lost or duplicated"));
        // A torn scan.
        let events = vec![
            w(0, 1, "a", "1", None),
            Event {
                shard: 0,
                version: 1,
                op: ModelOp::Scan,
                result: ModelResult::Snapshot(vec![]),
            },
        ];
        assert!(check_history(&events).unwrap_err().contains("torn scan"));
    }
}
