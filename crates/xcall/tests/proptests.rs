//! Property tests for the transactional I/O layer: deferred and
//! compensated operations must be exact inverses under arbitrary
//! commit/abort sequences.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use txfix_stm::atomic;
use txfix_xcall::{SimFs, SimPipe, XFile, XPipe};

#[derive(Clone, Debug)]
enum FileOp {
    Append(Vec<u8>),
    WriteAt(usize, Vec<u8>),
}

fn file_op() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..16).prop_map(FileOp::Append),
        (0usize..32, proptest::collection::vec(any::<u8>(), 1..8))
            .prop_map(|(o, b)| FileOp::WriteAt(o, b)),
    ]
}

fn apply_direct(state: &mut Vec<u8>, op: &FileOp) {
    match op {
        FileOp::Append(b) => state.extend_from_slice(b),
        FileOp::WriteAt(off, b) => {
            if state.len() < off + b.len() {
                state.resize(off + b.len(), 0);
            }
            state[*off..off + b.len()].copy_from_slice(b);
        }
    }
}

proptest! {
    /// Committed transactions apply their ops exactly once and in order;
    /// aborted attempts leave no trace — for any sequence of transactions
    /// each carrying any batch of operations, with arbitrary first-attempt
    /// aborts interleaved.
    #[test]
    fn file_history_matches_committed_prefix(
        txns in proptest::collection::vec(
            (proptest::collection::vec(file_op(), 0..6), any::<bool>()),
            0..10,
        ),
    ) {
        let fs = SimFs::new();
        let xf = XFile::open_or_create(&fs, "prop");
        let mut expect: Vec<u8> = Vec::new();

        for (ops, abort_first) in &txns {
            for op in ops {
                apply_direct(&mut expect, op);
            }
            let attempts = AtomicUsize::new(0);
            atomic(|txn| {
                let n = attempts.fetch_add(1, Ordering::SeqCst);
                for op in ops {
                    match op {
                        FileOp::Append(b) => xf.x_append(txn, b)?,
                        FileOp::WriteAt(o, b) => xf.x_write_at(txn, *o, b)?,
                    }
                }
                if *abort_first && n == 0 {
                    return txn.restart();
                }
                Ok(())
            });
        }
        prop_assert_eq!(xf.file().read_all(), expect);
    }

    /// The transactional view (`x_read_all`) equals committed content with
    /// the transaction's own pending ops applied.
    #[test]
    fn read_your_writes_view(
        committed in proptest::collection::vec(any::<u8>(), 0..24),
        pending in proptest::collection::vec(file_op(), 0..6),
    ) {
        let fs = SimFs::new();
        let xf = XFile::open_or_create(&fs, "view");
        xf.file().append(&committed);

        let mut expect = committed.clone();
        for op in &pending {
            apply_direct(&mut expect, op);
        }

        let view = atomic(|txn| {
            for op in &pending {
                match op {
                    FileOp::Append(b) => xf.x_append(txn, b)?,
                    FileOp::WriteAt(o, b) => xf.x_write_at(txn, *o, b)?,
                }
            }
            xf.x_read_all(txn)
        });
        prop_assert_eq!(view, expect);
    }

    /// Pipe reads are compensated exactly: aborting after consuming any
    /// prefix restores the stream byte-for-byte.
    #[test]
    fn pipe_compensation_is_exact(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        chunks in proptest::collection::vec(1usize..16, 1..6),
    ) {
        let pipe = SimPipe::new(256);
        pipe.write(&payload).unwrap();
        let xp = XPipe::new(pipe.clone());

        // First attempt: consume a few chunks, then abort.
        let first = AtomicUsize::new(0);
        let drained = atomic(|txn| {
            let n = first.fetch_add(1, Ordering::SeqCst);
            if n == 0 {
                for &c in &chunks {
                    let _ = xp.x_try_read(txn, c)?;
                }
                return txn.restart();
            }
            // Second attempt: drain everything.
            let mut all = Vec::new();
            while let Some(mut b) = xp.x_try_read(txn, 16)? {
                all.append(&mut b);
            }
            Ok(all)
        });
        prop_assert_eq!(drained, payload);
        prop_assert_eq!(pipe.buffered(), 0);
    }

    /// Deferred pipe writes from a committed transaction arrive complete
    /// and in program order.
    #[test]
    fn deferred_pipe_writes_preserve_order(
        messages in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..8), 1..6),
    ) {
        let pipe = SimPipe::new(256);
        let xp = XPipe::new(pipe.clone());
        atomic(|txn| {
            for m in &messages {
                xp.x_write(txn, m)?;
            }
            Ok(())
        });
        let expect: Vec<u8> = messages.concat();
        let got = pipe.read(expect.len(), Duration::from_millis(200)).unwrap();
        prop_assert_eq!(got, expect);
    }
}
