//! The `atomic` entry points: execute a transaction body until it commits,
//! handling conflicts, explicit aborts, blocking retry, commit-before-wait
//! and capacity overflow.

use crate::contention::Backoff;
use crate::error::{Abort, ConflictKind, StmResult, TxnError};
use crate::notifier;
use crate::stats;
use crate::txn::{Txn, TxnKind, TxnOptions};

/// Diagnostic information about one completed `atomic` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnReport {
    /// Total body executions, including the committing one.
    pub attempts: u64,
    /// Whether the committing attempt was irrevocable.
    pub committed_irrevocably: bool,
    /// Times the transaction blocked in `retry`.
    pub blocked_retries: u64,
    /// Times the transaction committed-and-waited on a wait point.
    pub waits: u64,
    /// Aborts caused by deadlock victimization or external kills.
    pub preemptions: u64,
}

/// Execute `body` as an atomic transaction, retrying until it commits, and
/// return its result.
///
/// This is the reproduction of the paper's `atomic { ... }` language
/// construct. The body may be re-executed many times; it must confine its
/// side effects to transactional operations (reads/writes of
/// [`TVar`](crate::TVar)s, revocable locks, x-calls, hooks).
///
/// # Examples
///
/// ```
/// use txfix_stm::{atomic, TVar};
///
/// let a = TVar::new(1u32);
/// let b = TVar::new(2u32);
/// let sum = atomic(|txn| {
///     let x = a.read(txn)?;
///     let y = b.read(txn)?;
///     b.write(txn, x + y)?;
///     Ok(x + y)
/// });
/// assert_eq!(sum, 3);
/// assert_eq!(b.load(), 3);
/// ```
///
/// # Panics
///
/// Panics if the body calls [`Txn::cancel`]; use [`atomic_with`] to observe
/// cancellation as an error.
pub fn atomic<T>(body: impl FnMut(&mut Txn) -> StmResult<T>) -> T {
    atomic_with(&TxnOptions::default(), body)
        .expect("default atomic transaction cannot fail terminally")
}

/// Execute `body` as a *relaxed* transaction, which may perform unsafe
/// operations via [`Txn::unsafe_op`] at the cost of irrevocability.
///
/// # Panics
///
/// Panics if the body calls [`Txn::cancel`].
pub fn atomic_relaxed<T>(body: impl FnMut(&mut Txn) -> StmResult<T>) -> T {
    atomic_with(&TxnOptions::default().kind(TxnKind::Relaxed), body)
        .expect("default relaxed transaction cannot fail terminally")
}

/// Execute `body` with explicit [`TxnOptions`].
///
/// # Errors
///
/// - [`TxnError::Cancelled`] if the body cancelled;
/// - [`TxnError::RetryLimit`] if `opts.max_attempts` was exceeded;
/// - [`TxnError::Capacity`] if a hardware capacity bound was exceeded.
pub fn atomic_with<T>(
    opts: &TxnOptions,
    body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> Result<T, TxnError> {
    atomic_report(opts, body).map(|(v, _)| v)
}

/// Like [`atomic_with`], additionally returning a [`TxnReport`] describing
/// how the transaction executed (attempt count, irrevocability, blocking).
///
/// # Errors
///
/// Same as [`atomic_with`].
pub fn atomic_report<T>(
    opts: &TxnOptions,
    mut body: impl FnMut(&mut Txn) -> StmResult<T>,
) -> Result<(T, TxnReport), TxnError> {
    let mut backoff = Backoff::new(opts.backoff);
    let mut report = TxnReport::default();

    loop {
        report.attempts += 1;
        if let Some(max) = opts.max_attempts {
            if report.attempts > max {
                return Err(TxnError::RetryLimit { attempts: report.attempts - 1 });
            }
        }

        let mut txn = Txn::begin(opts, report.attempts);
        let outcome = body(&mut txn);

        match outcome {
            Ok(value) => match txn.commit() {
                Ok(()) => {
                    report.committed_irrevocably = txn.was_irrevocable();
                    return Ok((value, report));
                }
                Err(abort) => {
                    txn.abort();
                    handle_abort(abort, &mut backoff, &mut report)?;
                }
            },
            Err(Abort::Wait(wp)) => {
                // Commit-before-wait: publish the work done so far, then
                // block, then re-execute the body as a fresh transaction.
                let ticket = wp.prepare();
                match txn.commit() {
                    Ok(()) => {
                        stats::bump_waits();
                        report.waits += 1;
                        wp.wait(ticket);
                    }
                    Err(abort) => {
                        txn.abort();
                        handle_abort(abort, &mut backoff, &mut report)?;
                    }
                }
            }
            Err(Abort::Retry) => {
                stats::bump_retries();
                report.blocked_retries += 1;
                let seen = notifier::global().epoch();
                let snapshot = txn.take_read_snapshot();
                txn.abort();
                if snapshot.is_empty() {
                    // Retrying with an empty read set would block forever;
                    // treat as plain backoff so the caller's loop progresses.
                    backoff.wait();
                } else {
                    while !snapshot.changed() {
                        if !notifier::global().wait_past(seen, opts.retry_timeout) {
                            break; // timeout: re-execute anyway
                        }
                    }
                }
            }
            Err(abort) => {
                txn.abort();
                handle_abort(abort, &mut backoff, &mut report)?;
            }
        }
    }
}

fn handle_abort(
    abort: Abort,
    backoff: &mut Backoff,
    report: &mut TxnReport,
) -> Result<(), TxnError> {
    match abort {
        Abort::Conflict(ConflictKind::ReadValidation) => {
            stats::bump_conflicts_validation();
            backoff.wait();
            Ok(())
        }
        Abort::Conflict(ConflictKind::OrecBusy) => {
            stats::bump_conflicts_orec();
            backoff.wait();
            Ok(())
        }
        Abort::Restart => {
            stats::bump_explicit_restarts();
            Ok(())
        }
        Abort::Deadlock => {
            stats::bump_deadlock_aborts();
            report.preemptions += 1;
            backoff.wait();
            Ok(())
        }
        Abort::Killed => {
            stats::bump_kills();
            report.preemptions += 1;
            backoff.wait();
            Ok(())
        }
        Abort::Cancel => Err(TxnError::Cancelled),
        Abort::Capacity(kind) => {
            stats::bump_capacity();
            Err(TxnError::Capacity { kind, attempts: report.attempts })
        }
        Abort::Retry | Abort::Wait(_) => {
            unreachable!("retry/wait are handled before generic abort handling")
        }
    }
}
