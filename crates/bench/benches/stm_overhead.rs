//! Ablation A1: instrumentation overhead of synchronization mechanisms.
//!
//! Reproduces the claim behind §3.2 — "software TM implementations may
//! slow down critical sections by 3–5×" — by timing a short critical
//! section (read-modify-write of one word, plus a second shared word to
//! make it multi-location) under each mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use txfix_htm::{hybrid_atomic, HtmConfig};
use txfix_stm::{OverheadModel, TVar, Txn};
use txfix_txlock::TxMutex;

fn bench_mechanisms(c: &mut Criterion) {
    let mut g = c.benchmark_group("stm_overhead");
    g.sample_size(20);

    // Baseline: plain mutex around plain data.
    let m = parking_lot::Mutex::new((0u64, 0u64));
    g.bench_function("parking_lot_mutex", |b| {
        b.iter(|| {
            let mut v = m.lock();
            v.0 = v.0.wrapping_add(1);
            v.1 = v.1.wrapping_add(v.0);
            black_box(v.1)
        })
    });

    // The revocable lock's non-transactional path.
    let tm = TxMutex::new("bench.txmutex", (0u64, 0u64));
    g.bench_function("txmutex_plain", |b| {
        b.iter(|| {
            let mut v = tm.lock().expect("uncontended");
            v.0 = v.0.wrapping_add(1);
            v.1 = v.1.wrapping_add(v.0);
            black_box(v.1)
        })
    });

    let a = TVar::new(0u64);
    let bb = TVar::new(0u64);
    let mut tx_bench = |name: &str, overhead: OverheadModel| {
        let txb = Txn::build().overhead(overhead);
        let (a, bb) = (a.clone(), bb.clone());
        g.bench_function(name, move |bch| {
            bch.iter(|| {
                txb.try_run(|txn| {
                    let x = a.read(txn)?;
                    a.write(txn, x.wrapping_add(1))?;
                    let y = bb.read(txn)?;
                    bb.write(txn, y.wrapping_add(x))?;
                    Ok(y)
                })
                .expect("uncontended transaction")
                .0
            })
        });
    };

    tx_bench("stm_native", OverheadModel::NONE);
    tx_bench("stm_software_model", OverheadModel::SOFTWARE_TM);
    tx_bench("stm_hardware_model", OverheadModel::HARDWARE_TM);

    // The obs registry's contract: disabled (the default, as in
    // `stm_native` above) costs one relaxed load per hook; this variant
    // pins what turning it on adds. Compare `stm_native` against the
    // pre-observability baseline to check the ≤5% disabled budget.
    {
        txfix_stm::obs::enable();
        let txb = Txn::build().site("bench.obs_enabled");
        let (a, bb) = (a.clone(), bb.clone());
        g.bench_function("stm_native_obs_enabled", move |bch| {
            bch.iter(|| {
                txb.try_run(|txn| {
                    let x = a.read(txn)?;
                    a.write(txn, x.wrapping_add(1))?;
                    let y = bb.read(txn)?;
                    bb.write(txn, y.wrapping_add(x))?;
                    Ok(y)
                })
                .expect("uncontended transaction")
                .0
            })
        });
        txfix_stm::obs::disable();
    }

    // Eager (encounter-time locking, undo log) — the write policy of the
    // paper's actual platform (Intel's STM).
    {
        let txb = Txn::build().write_policy(txfix_stm::WritePolicy::Eager);
        let (a, bb) = (a.clone(), bb.clone());
        g.bench_function("stm_eager_native", move |bch| {
            bch.iter(|| {
                txb.try_run(|txn| {
                    let x = a.read(txn)?;
                    a.write(txn, x.wrapping_add(1))?;
                    let y = bb.read(txn)?;
                    bb.write(txn, y.wrapping_add(x))?;
                    Ok(y)
                })
                .expect("uncontended eager transaction")
                .0
            })
        });
    }

    let cfg = HtmConfig::new();
    let (a2, b2) = (a.clone(), bb.clone());
    g.bench_function("hybrid_htm", move |bch| {
        bch.iter(|| {
            hybrid_atomic(&cfg, |txn| {
                let x = a2.read(txn)?;
                a2.write(txn, x.wrapping_add(1))?;
                let y = b2.read(txn)?;
                b2.write(txn, y.wrapping_add(x))?;
                Ok(y)
            })
            .expect("uncontended hybrid transaction")
        })
    });

    g.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
