//! # txfix — Applying Transactional Memory to Concurrency Bugs
//!
//! A from-scratch Rust reproduction of Volos, Tack, Swift & Lu,
//! *Applying Transactional Memory to Concurrency Bugs* (ASPLOS 2012):
//! the full substrate stack (software TM, revocable locks, transactional
//! I/O over a simulated OS, a hardware-TM model, transactional condition
//! variables and atomic/lock serialization), the paper's four fix recipes
//! with their applicability and difficulty analysis, the 60-bug study
//! corpus with 18 executable bug reproductions, and a benchmark harness
//! regenerating every table of the evaluation.
//!
//! This facade crate re-exports each workspace crate under a stable
//! module name; see each module's documentation for the full story, and
//! `README.md` / `DESIGN.md` / `EXPERIMENTS.md` for the map.
//!
//! ## Quickstart
//!
//! ```
//! use txfix::stm::{atomic, TVar};
//!
//! let balance = TVar::new(100i64);
//! atomic(|txn| balance.modify(txn, |b| b - 30));
//! assert_eq!(balance.load(), 70);
//! ```

#![warn(missing_docs)]

/// The software transactional memory runtime (TL2-style atomic regions).
pub use txfix_stm as stm;

/// Revocable locks and wait-for-graph deadlock detection (TxLocks).
pub use txfix_txlock as txlock;

/// Transactional system calls over a simulated OS (xCalls).
pub use txfix_xcall as xcall;

/// Write-ahead logging over transactional files, the durable KV test
/// subject, and the crash-recovery checker (`txfix crash`).
pub use txfix_wal as wal;

/// The bounded-capacity hardware-TM model with hybrid fallback.
pub use txfix_htm as htm;

/// Transactional condition variables, `retry` helpers, atomic/lock
/// serialization, and ad hoc synchronization primitives.
pub use txfix_tmsync as tmsync;

/// The sharded transactional KV store: hash-index buckets and a
/// buffer-pool page layer over simos files, durability through the redo
/// log, and per-shard concurrency in dev-lock / TM / hybrid modes
/// (`txfix kv`, `txfix crash kvstore`).
pub use txfix_kvstore as kvstore;

/// The paper's contribution: the four fix recipes, the bug model, the
/// applicability analysis and the difficulty model.
pub use txfix_core as recipes;

/// Miniatures of the three buggy applications (SpiderMonkey, Apache,
/// MySQL) with buggy / developer-fix / TM-fix variants.
pub use txfix_apps as apps;

/// The 60-bug dataset and the 18 executable bug scenarios.
pub use txfix_corpus as corpus;

/// Trace-based bug detection: happens-before races, conflict
/// serializability, lock-order inversions.
pub use txfix_analyze as analyze;

/// Static critical-section analysis over declarative scenario summaries,
/// with recipe synthesis and static fix verification (`txfix lint`).
pub use txfix_static as lint;

/// The evaluation harness: table regeneration, case-study comparisons and
/// the sustained-load stress driver (`txfix stress`).
pub use txfix_bench as bench;

/// Systematic schedule exploration: the deterministic scheduler's DFS and
/// PCT strategies over the scheduled corpus (`txfix explore`).
pub use txfix_explore as explore;

/// Automatic fix inference: seed atomic regions from static findings,
/// grow/merge them until the checkers are silent, then verify the
/// synthesized patch statically and by schedule exploration
/// (`txfix autofix`).
pub use txfix_autofix as autofix;

/// The canary mutation sweep (`txfix canary`): arm one planted detector
/// bug at a time and prove each detection layer catches what it claims.
/// Only present when built with `--features canary`.
#[cfg(feature = "canary")]
pub mod canary;
