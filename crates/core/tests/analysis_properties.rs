//! Property tests over the analysis and difficulty models: for *any*
//! structurally valid bug description, the decision procedure must be
//! total, consistent and aligned with the paper's stated rules.

use proptest::prelude::*;
use txfix_core::{
    analyze, preference, tm_difficulty, Analysis, App, BugChars, BugKind, BugRecord, DevFix,
    Difficulty, Downcalls, MissingSync, Recipe, UnfixableReason,
};

fn downcalls() -> impl Strategy<Value = Downcalls> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(condvar, retry, io, long_action, library)| Downcalls {
            condvar,
            retry,
            io,
            long_action,
            library,
        },
    )
}

fn deadlock_chars() -> impl Strategy<Value = BugChars> {
    (
        any::<bool>(), // cv_wait (else lock_cycle)
        any::<bool>(), // two_way
        any::<bool>(), // multi_module
        any::<bool>(), // non_preemptible
        any::<bool>(), // design_flaw
        0u8..20,
        downcalls(),
        any::<bool>(),
    )
        .prop_map(|(cv, two_way, mm, np, design, sites, dc, extra)| BugChars {
            lock_cycle: !cv,
            cv_wait: cv,
            two_way_communication: two_way && cv,
            multi_module: mm,
            non_preemptible: np,
            design_flaw: design,
            fix_sites: sites,
            downcalls: dc,
            fix_extra_benefits: extra,
            ..Default::default()
        })
}

fn av_chars() -> impl Strategy<Value = BugChars> {
    (
        prop_oneof![
            Just(MissingSync::Complete),
            Just(MissingSync::Partial),
            Just(MissingSync::WrongLock),
            Just(MissingSync::AdHoc),
        ],
        any::<bool>(), // long_latency
        any::<bool>(), // exactly_once
        any::<bool>(), // cross_process
        any::<bool>(), // single block
        0u8..20,
        downcalls(),
        any::<bool>(),
    )
        .prop_map(|(ms, ll, eo, cp, single, sites, dc, extra)| BugChars {
            missing_sync: Some(ms),
            long_latency_callback: ll,
            exactly_once: eo,
            cross_process_io: cp,
            single_atomic_block: single,
            fix_sites: sites,
            downcalls: dc,
            fix_extra_benefits: extra,
            ..Default::default()
        })
}

fn dev_fix() -> impl Strategy<Value = DevFix> {
    (
        prop_oneof![Just(Difficulty::Easy), Just(Difficulty::Medium), Just(Difficulty::Hard)],
        1u32..200,
        1u8..5,
    )
        .prop_map(|(difficulty, loc, attempts)| DevFix { difficulty, loc, attempts })
}

fn record(kind: BugKind, chars: BugChars, dev: DevFix) -> BugRecord {
    BugRecord {
        id: "Prop#1",
        app: App::Apache,
        kind,
        synthetic_id: true,
        summary: "generated",
        chars,
        dev_fix: dev,
        scenario: None,
    }
}

proptest! {
    /// Fixability, difficulty and preference are mutually consistent for
    /// every deadlock shape: a plan exists iff a difficulty exists iff a
    /// preference exists.
    #[test]
    fn deadlock_analysis_is_total_and_consistent(chars in deadlock_chars(), dev in dev_fix()) {
        let b = record(BugKind::Deadlock, chars, dev);
        let a = analyze(&b);
        prop_assert_eq!(a.is_fixable(), tm_difficulty(&b, &a).is_some());
        prop_assert_eq!(a.is_fixable(), preference(&b, &a).is_some());
        if let Analysis::Fixable(plan) = &a {
            // Deadlocks are fixed by deadlock recipes only.
            prop_assert!(matches!(
                plan.primary,
                Recipe::ReplaceLocks | Recipe::DeadlockPreemption
            ));
            // CV-wait deadlocks can never be fixed by plain lock
            // replacement (§5.3.1).
            if b.chars.cv_wait {
                prop_assert_eq!(plan.primary, Recipe::DeadlockPreemption);
            }
            // Non-preemptible bugs are never "simplified" by preemption.
            if b.chars.non_preemptible {
                prop_assert_ne!(plan.simplified_by, Some(Recipe::DeadlockPreemption));
            }
        }
    }

    /// Unfixable deadlocks always carry one of the paper's stated reasons,
    /// and the structural blockers force unfixability.
    #[test]
    fn deadlock_unfixability_reasons_are_faithful(chars in deadlock_chars(), dev in dev_fix()) {
        let b = record(BugKind::Deadlock, chars, dev);
        match analyze(&b) {
            Analysis::Unfixable(r) => {
                prop_assert!(matches!(
                    r,
                    UnfixableReason::TwoWayCommunication
                        | UnfixableReason::DesignFlaw
                        | UnfixableReason::MultiModuleNonPreemptible
                ));
            }
            Analysis::Fixable(_) => {
                prop_assert!(!b.chars.two_way_communication);
                prop_assert!(!b.chars.design_flaw);
                prop_assert!(!(b.chars.multi_module && b.chars.non_preemptible));
            }
        }
    }

    /// Atomicity analysis: every fixable AV is fixed by Recipe 2 (the
    /// paper's "recipes 1 and 2 suffice" for AVs), asymmetric violations
    /// are simplified by Recipe 4, and the unfixable reasons are the
    /// stated ones.
    #[test]
    fn atomicity_analysis_is_faithful(chars in av_chars(), dev in dev_fix()) {
        let b = record(BugKind::AtomicityViolation, chars, dev);
        match analyze(&b) {
            Analysis::Fixable(plan) => {
                prop_assert_eq!(plan.primary, Recipe::WrapAll);
                let asym = !matches!(b.chars.missing_sync, Some(MissingSync::Complete));
                prop_assert_eq!(plan.simplified_by.is_some(), asym);
                prop_assert!(!b.chars.long_latency_callback);
                prop_assert!(!b.chars.exactly_once);
                prop_assert!(!b.chars.cross_process_io);
            }
            Analysis::Unfixable(r) => {
                prop_assert!(matches!(
                    r,
                    UnfixableReason::LongLatencyCallback
                        | UnfixableReason::ExactlyOnce
                        | UnfixableReason::CrossProcessIo
                ));
            }
        }
    }

    /// The difficulty model is monotone in fix breadth: widening the fix
    /// (more sites) never makes it easier.
    #[test]
    fn difficulty_is_monotone_in_fix_sites(chars in av_chars(), dev in dev_fix(), extra in 1u8..10) {
        let b1 = record(BugKind::AtomicityViolation, chars, dev);
        let mut wider = chars;
        wider.fix_sites = chars.fix_sites.saturating_add(extra);
        let b2 = record(BugKind::AtomicityViolation, wider, dev);
        let a1 = analyze(&b1);
        let a2 = analyze(&b2);
        if let (Some(d1), Some(d2)) = (tm_difficulty(&b1, &a1), tm_difficulty(&b2, &a2)) {
            prop_assert!(d2 >= d1, "widening the fix made it easier: {d1:?} -> {d2:?}");
        }
    }

    /// Preference never favors TM when the TM fix is strictly harder.
    #[test]
    fn preference_respects_difficulty(chars in av_chars(), dev in dev_fix()) {
        let b = record(BugKind::AtomicityViolation, chars, dev);
        let a = analyze(&b);
        if let (Some(td), Some(p)) = (tm_difficulty(&b, &a), preference(&b, &a)) {
            if td > b.dev_fix.difficulty {
                prop_assert_eq!(p, txfix_core::Preference::Developers);
            }
            if td < b.dev_fix.difficulty {
                prop_assert_eq!(p, txfix_core::Preference::Tm);
            }
        }
    }
}
