//! The trace analyzer applied to the executable corpus: buggy variants of
//! the traced scenarios are flagged, their developer and TM fixes come
//! back clean, and every finding carries the recipe the paper's decision
//! procedure assigns to that bug. (The recorder is process-global;
//! `analyze_scenario` serializes itself, so these tests may share one
//! binary but nothing else here may touch the trace machinery directly.)

use txfix::analyze::{analyze_scenario, Report};
use txfix::corpus::{bug_by_scenario, Variant};
use txfix::recipes::{analyze, Analysis, Recipe};

/// Scenarios whose racy state is visible to the recorder (TracedCell,
/// traced locks, or named condvars). The others reproduce their bugs
/// inside app miniatures the tracer does not instrument (yet), so the
/// analyzer is silent on them — that is absence of instrumentation, not
/// a clean bill.
const DETECTABLE: &[&str] = &[
    "apache_i",
    "dl_cache_atomtable",
    "dl_three_lock_cycle",
    "dl_intentional_race",
    "dl_local_lock_order",
    "dl_mysql_table_pair",
    "av_wrong_lock",
    "av_refcount_race",
    "av_lazy_init",
    "av_cv_partial",
    "av_scoreboard",
    "av_pair_invariant",
    "av_log_sequence",
    "av_stats_race",
    "av_adhoc_retry",
];

fn suggested_recipe(key: &str) -> Option<Recipe> {
    let bug = bug_by_scenario(key).expect("corpus record");
    match analyze(&bug) {
        Analysis::Fixable(plan) => Some(plan.primary),
        Analysis::Unfixable(_) => None,
    }
}

fn run(key: &str, variant: Variant) -> Report {
    analyze_scenario(key, variant).expect("known scenario key")
}

#[test]
fn buggy_variants_are_flagged_with_the_papers_recipe() {
    assert!(DETECTABLE.len() >= 8, "detection set shrank below the acceptance floor");
    for key in DETECTABLE {
        let report = run(key, Variant::Buggy);
        assert!(report.has_findings(), "{key} buggy: no findings over {} events", report.events);
        let expected = suggested_recipe(key);
        for f in &report.findings {
            assert_eq!(
                f.recipe, expected,
                "{key} finding suggests a different recipe than txfix_core::analyze: {f:?}"
            );
        }
    }
}

#[test]
fn developer_fixes_are_clean() {
    for key in DETECTABLE {
        let report = run(key, Variant::DevFix);
        assert!(!report.has_findings(), "{key} dev fix flagged: {:?}", report.findings);
    }
}

#[test]
fn tm_fixes_are_clean() {
    for key in DETECTABLE {
        let report = run(key, Variant::TmFix);
        assert!(!report.has_findings(), "{key} tm fix flagged: {:?}", report.findings);
    }
}

#[test]
fn reports_round_trip_through_json() {
    // An end-to-end round trip over real reports: one with findings, one
    // clean, one whose outcome text exercises string escaping.
    for (key, variant) in [
        ("av_stats_race", Variant::Buggy),
        ("av_stats_race", Variant::TmFix),
        ("dl_local_lock_order", Variant::Buggy),
    ] {
        use txfix::recipes::json::ToJson;
        let report = run(key, variant);
        let parsed = Report::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed, report, "{key} report changed across JSON round trip");
    }
}

#[test]
fn finding_kinds_match_the_bug_class() {
    use txfix::analyze::Hazard;
    // Deadlock scenarios report lock cycles; atomicity scenarios report
    // races and serializability violations; the condvar scenarios report
    // wait cycles and lost wakeups in the same unified vocabulary.
    let dl = run("dl_cache_atomtable", Variant::Buggy);
    assert!(
        dl.findings.iter().any(|f| matches!(f.kind, Hazard::LockCycle { .. })),
        "{:?}",
        dl.findings
    );
    let av = run("av_refcount_race", Variant::Buggy);
    assert!(av.findings.iter().any(|f| matches!(f.kind, Hazard::Race { .. })), "{:?}", av.findings);
    assert!(
        av.findings.iter().any(|f| matches!(f.kind, Hazard::Atomicity { .. })),
        "{:?}",
        av.findings
    );
    let wait = run("apache_i", Variant::Buggy);
    assert!(
        wait.findings.iter().any(|f| matches!(
            &f.kind,
            Hazard::WaitCycle { cv, lock }
                if cv == "apache1.idle_cv" && lock == "apache1.timeout_mutex"
        )),
        "{:?}",
        wait.findings
    );
    let lost = run("av_cv_partial", Variant::Buggy);
    assert!(
        lost.findings.iter().any(|f| matches!(
            &f.kind,
            Hazard::LostWakeup { cv, .. } if cv == "m91106.cv"
        )),
        "{:?}",
        lost.findings
    );
}
