#!/usr/bin/env bash
# Perf-trajectory gate over the stress harness (DESIGN.md §12).
#
# Runs a short both-clock stress sweep and fails when the commit path
# regresses beyond the committed thresholds below. These encode the
# *measured trajectory* of the overhauled commit path, not the paper's
# aspiration: on av_stats_race single-threaded (release build) the
# overhaul landed at ~6.4× dev throughput cost, down from ~10.3×
# before it; the ops threshold sits between the two so a regression
# back to the old commit path fails loudly while machine-to-machine
# noise does not. p50 is only a gross backstop: the histogram's log2
# buckets quantize the ratio to powers of two (8.2× and 16.3× are
# adjacent buckets), so the threshold sits above both and below the
# next bucket (32.6×).
#
# usage: ci/bench-gate.sh [TXFIX_BIN]
# env:   BENCH_GATE_SECS, BENCH_GATE_OUT,
#        BENCH_GATE_MAX_OPS_RATIO, BENCH_GATE_MAX_P50_RATIO
set -euo pipefail

BIN="${1:-./target/release/txfix}"
SECS="${BENCH_GATE_SECS:-0.5}"
OUT="${BENCH_GATE_OUT:-bench_gate.json}"
MAX_OPS_RATIO="${BENCH_GATE_MAX_OPS_RATIO:-9.0}"
MAX_P50_RATIO="${BENCH_GATE_MAX_P50_RATIO:-20.0}"

"$BIN" stress --all --secs "$SECS" --threads 1,4 --clock both \
    --json --out "$OUT" > /dev/null

python3 - "$OUT" "$MAX_OPS_RATIO" "$MAX_P50_RATIO" <<'EOF'
import json
import sys

path, max_ops_ratio, max_p50_ratio = (
    sys.argv[1],
    float(sys.argv[2]),
    float(sys.argv[3]),
)
doc = json.load(open(path))
assert doc["schema"] == "txfix-stress-v2", doc["schema"]
host_cores = int(doc["host_cores"])
threads = sorted(int(t) for t in doc["threads"])
lo, hi = threads[0], threads[-1]

by = {
    (r["scenario"], r["variant"], r["clock"], int(r["threads"])): r
    for r in doc["runs"]
}
failures = []

# Gate 1: single-thread TM overhead vs the dev (lock-based) fix on the
# reference scenario, per clock. ops/s is the primary signal (it is
# continuous); p50 is a loose backstop (log2 buckets quantize it, so
# the ratio moves in powers of two).
for clock in doc["clocks"]:
    dev = by[("av_stats_race", "dev", clock, lo)]
    tm = by[("av_stats_race", "tm", clock, lo)]
    ops_ratio = dev["ops_per_sec"] / max(tm["ops_per_sec"], 1.0)
    p50_ratio = tm["p50_ns"] / max(dev["p50_ns"], 1)
    print(
        f"av_stats_race @{lo}t {clock}: dev/tm ops ratio {ops_ratio:.2f} "
        f"(max {max_ops_ratio}), tm/dev p50 ratio {p50_ratio:.2f} "
        f"(max {max_p50_ratio})"
    )
    if ops_ratio > max_ops_ratio:
        failures.append(f"{clock}: ops ratio {ops_ratio:.2f} > {max_ops_ratio}")
    if p50_ratio > max_p50_ratio:
        failures.append(f"{clock}: p50 ratio {p50_ratio:.2f} > {max_p50_ratio}")

# Gate 2: TM throughput scaling from the narrowest to the widest sweep
# width under GV5. A single-core host cannot demonstrate parallel
# speedup, so the gate is skipped there rather than passed silently —
# and relaxed when the host has fewer cores than the widest width.
if lo == hi:
    print(f"scaling gate: skipped (single thread count {lo} in sweep)")
elif host_cores == 1:
    print("scaling gate: SKIPPED — host has 1 core; parallel speedup is "
          "not measurable here (recorded as host_cores=1 in the artifact)")
else:
    required = 2.0 if host_cores >= hi else 1.2 if host_cores >= 4 else 0.9
    best_key, best = None, 0.0
    for scenario in doc["scenarios"]:
        base = by[(scenario, "tm", "gv5", lo)]["ops_per_sec"]
        wide = by[(scenario, "tm", "gv5", hi)]["ops_per_sec"]
        ratio = wide / max(base, 1.0)
        if ratio > best:
            best_key, best = scenario, ratio
    print(
        f"scaling gate (gv5, {lo}->{hi}t, host_cores={host_cores}): best "
        f"{best:.2f}x on {best_key} (required {required})"
    )
    if best < required:
        failures.append(
            f"no scenario scales {lo}->{hi}t under gv5: best {best:.2f}x "
            f"({best_key}) < {required}"
        )

if failures:
    print("bench gate FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  - {f}", file=sys.stderr)
    sys.exit(1)
print("bench gate passed")
EOF
