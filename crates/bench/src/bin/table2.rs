//! Regenerate Table 2: difficulty of developers' vs. TM fixes.
//!
//! Pass `--json` for a machine-readable version.

use txfix_core::json::ToJson;

fn main() {
    let bugs = txfix_corpus::all_bugs();
    let table = txfix_core::table2(&bugs);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", table.to_json());
    } else {
        print!("{table}");
    }
}
