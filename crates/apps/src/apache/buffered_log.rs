//! Apache-II: the `ap_buffered_log_writer` atomicity violation (paper
//! §5.4.3, Figure 4).
//!
//! The buffered log writer keeps an in-memory buffer and an `outputCount`
//! cursor with **no synchronization at all**: two threads can read the
//! same cursor, write their records over each other and publish a cursor
//! that loses bytes — "producing either garbage in the log or buffer
//! overflow".
//!
//! - Developers' fix: a lock per log device (`buffered_log` structure),
//!   acquired on entry — plus code elsewhere to create and manage those
//!   locks.
//! - TM fix (Recipe 2): one atomic block around the buffer manipulation,
//!   with the flush performed as a deferred x-call; five lines, local to
//!   the function, same per-log concurrency as the fine-grained locks.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use txfix_stm::trace::TracedCell;
use txfix_stm::{OverheadModel, TVar, Txn, TxnBuilder};
use txfix_txlock::TxMutex;
use txfix_xcall::{SimFile, SimFs, XFile};

/// Common interface over the three log-writer implementations.
pub trait LogWriter: Send + Sync + fmt::Debug {
    /// Append one record (the equivalent of `ap_buffered_log_writer`).
    fn write_record(&self, record: &[u8]);
    /// Flush whatever is buffered to the backing file.
    fn flush(&self);
    /// The backing file.
    fn file(&self) -> &Arc<SimFile>;
    /// Variant name for reports.
    fn variant_name(&self) -> &'static str;
}

/// The shipped, racy writer.
pub struct BuggyBufferedLog {
    buf: Vec<AtomicU8>,
    /// `buf->outcnt` — a plain, unsynchronized cursor. Traced so the
    /// dynamic analyzers and the deterministic scheduler both observe the
    /// racy accesses.
    output_count: TracedCell,
    /// Version stamp of the buffer contents, bumped once per record write —
    /// the traced face of the equally unsynchronized `buf->outbuf` bytes.
    buf_stamp: TracedCell,
    file: Arc<SimFile>,
    /// Spin iterations inserted in the racy window so tests expose the
    /// interleaving reliably (0 in benchmarks).
    racy_window_spins: u32,
}

impl fmt::Debug for BuggyBufferedLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuggyBufferedLog")
            .field("capacity", &self.buf.len())
            .field("output_count", &self.output_count.peek())
            .finish()
    }
}

impl BuggyBufferedLog {
    /// Create a writer with the given buffer capacity.
    pub fn new(fs: &SimFs, path: &str, capacity: usize, racy_window_spins: u32) -> Self {
        BuggyBufferedLog {
            buf: (0..capacity).map(|_| AtomicU8::new(0)).collect(),
            output_count: TracedCell::new("apache2.log_cursor", 0),
            buf_stamp: TracedCell::new("apache2.log_buf", 0),
            file: fs.open_or_create(path),
            racy_window_spins,
        }
    }

    fn flush_range(&self, len: usize) {
        let snapshot: Vec<u8> =
            self.buf[..len.min(self.buf.len())].iter().map(|b| b.load(Ordering::Relaxed)).collect();
        self.file.append(&snapshot);
        self.output_count.store(0);
    }
}

impl LogWriter for BuggyBufferedLog {
    fn write_record(&self, record: &[u8]) {
        // if (len + buf->outcnt > LOG_BUFSIZE) flush(buf);
        let mut cnt = self.output_count.load() as usize;
        if cnt + record.len() > self.buf.len() {
            self.flush_range(cnt);
            cnt = 0;
        }
        // The racy window: another thread can read the same cursor now.
        for _ in 0..self.racy_window_spins {
            std::hint::spin_loop();
        }
        if self.racy_window_spins > 0 {
            // On a single-core host spinning alone rarely gets preempted
            // mid-window; hand the timeslice over so the interleaving the
            // window models actually occurs.
            std::thread::yield_now();
        }
        // memcpy(&buf->outbuf[buf->outcnt], str, len);
        for (i, &b) in record.iter().enumerate() {
            if cnt + i < self.buf.len() {
                self.buf[cnt + i].store(b, Ordering::Relaxed);
            }
        }
        self.buf_stamp.store(self.buf_stamp.peek() + 1);
        // buf->outcnt += len;  — as a plain, non-atomic-increment store.
        self.output_count.store(((cnt + record.len()).min(self.buf.len())) as u64);
    }

    fn flush(&self) {
        let cnt = self.output_count.load() as usize;
        self.flush_range(cnt);
    }

    fn file(&self) -> &Arc<SimFile> {
        &self.file
    }

    fn variant_name(&self) -> &'static str {
        "buffered log (buggy)"
    }
}

/// The developers' fix: one lock per log device around the whole writer.
pub struct LockedBufferedLog {
    state: TxMutex<(Vec<u8>, Arc<SimFile>)>,
    file: Arc<SimFile>,
    capacity: usize,
}

impl fmt::Debug for LockedBufferedLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedBufferedLog").field("capacity", &self.capacity).finish()
    }
}

impl LockedBufferedLog {
    /// Create a writer with the given buffer capacity.
    pub fn new(fs: &SimFs, path: &str, capacity: usize) -> Self {
        let file = fs.open_or_create(path);
        LockedBufferedLog {
            state: TxMutex::new("buffered_log.lock", (Vec::with_capacity(capacity), file.clone())),
            file,
            capacity,
        }
    }
}

impl LogWriter for LockedBufferedLog {
    fn write_record(&self, record: &[u8]) {
        let mut g = self.state.lock().expect("per-log lock cannot cycle");
        if g.0.len() + record.len() > self.capacity {
            let (buf, file) = &mut *g;
            file.append(buf);
            buf.clear();
        }
        g.0.extend_from_slice(record);
    }

    fn flush(&self) {
        let mut g = self.state.lock().expect("per-log lock cannot cycle");
        let (buf, file) = &mut *g;
        file.append(buf);
        buf.clear();
    }

    fn file(&self) -> &Arc<SimFile> {
        &self.file
    }

    fn variant_name(&self) -> &'static str {
        "buffered log (developer fix: per-log lock)"
    }
}

/// The TM fix (Recipe 2): a single atomic block; the flush is a deferred
/// x-call applied at commit.
pub struct TmBufferedLog {
    buf: TVar<Vec<u8>>,
    xfile: XFile,
    capacity: usize,
    txn: TxnBuilder,
}

impl fmt::Debug for TmBufferedLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TmBufferedLog").field("capacity", &self.capacity).finish()
    }
}

impl TmBufferedLog {
    /// Create a writer with the given buffer capacity (no modelled
    /// instrumentation cost).
    pub fn new(fs: &SimFs, path: &str, capacity: usize) -> Self {
        Self::with_overhead(fs, path, capacity, OverheadModel::NONE)
    }

    /// Create a writer charging the given TM cost model (benchmarks use
    /// [`OverheadModel::SOFTWARE_TM`]).
    pub fn with_overhead(fs: &SimFs, path: &str, capacity: usize, overhead: OverheadModel) -> Self {
        TmBufferedLog {
            buf: TVar::new(Vec::with_capacity(capacity)),
            xfile: XFile::open_or_create(fs, path),
            capacity,
            txn: Txn::build().site("apache_ii_log").overhead(overhead),
        }
    }
}

impl LogWriter for TmBufferedLog {
    fn write_record(&self, record: &[u8]) {
        self.txn
            .try_run(|txn| {
                let mut buf = self.buf.read(txn)?;
                if buf.len() + record.len() > self.capacity {
                    self.xfile.x_append(txn, &buf)?;
                    buf.clear();
                }
                buf.extend_from_slice(record);
                self.buf.write(txn, buf)
            })
            .expect("log transaction cannot fail terminally");
    }

    fn flush(&self) {
        self.txn
            .try_run(|txn| {
                let buf = self.buf.read(txn)?;
                self.xfile.x_append(txn, &buf)?;
                self.buf.write(txn, Vec::new())
            })
            .expect("log flush transaction cannot fail terminally");
    }

    fn file(&self) -> &Arc<SimFile> {
        self.xfile.file()
    }

    fn variant_name(&self) -> &'static str {
        "buffered log (TM fix: recipe 2 + xcall)"
    }
}

/// Result of checking a log file for corruption.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogValidation {
    /// Well-formed records found.
    pub valid_records: usize,
    /// Malformed byte spans (interleaved/overwritten records).
    pub corrupted_spans: usize,
    /// Bytes in the file.
    pub total_bytes: usize,
}

impl LogValidation {
    /// Whether the log shows any corruption or record loss relative to
    /// `expected_records`.
    pub fn is_violation(&self, expected_records: usize) -> bool {
        self.corrupted_spans > 0 || self.valid_records != expected_records
    }
}

/// Parse a log of `<tNN:seqNNNNNN>` records and count corruption.
pub fn validate_log(data: &[u8]) -> LogValidation {
    let mut v = LogValidation { total_bytes: data.len(), ..Default::default() };
    let mut i = 0;
    while i < data.len() {
        if data[i] == b'<' {
            if let Some(end) = data[i..].iter().position(|&b| b == b'>') {
                let span = &data[i..i + end + 1];
                // A record never contains another '<'.
                if span[1..span.len() - 1].iter().all(|&b| b != b'<')
                    && span.len() == crate::apache::buffered_log::RECORD_LEN
                {
                    v.valid_records += 1;
                    i += end + 1;
                    continue;
                }
            }
            v.corrupted_spans += 1;
            i += 1;
        } else {
            // Bytes outside any record framing.
            v.corrupted_spans += 1;
            // Skip the whole garbage run so one overwrite counts once.
            while i < data.len() && data[i] != b'<' {
                i += 1;
            }
        }
    }
    v
}

/// Length of the fixed-size framed record produced by [`make_record`]:
/// `<tNN:seqNNNNNN>` is 15 bytes.
pub const RECORD_LEN: usize = 15;

/// Produce the fixed-size test record `<tNN:seqNNNNNN>`.
pub fn make_record(thread: usize, seq: u64) -> Vec<u8> {
    let s = format!("<t{:02}:seq{:06}>", thread % 100, seq % 1_000_000);
    debug_assert_eq!(s.len(), RECORD_LEN);
    s.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hammer(log: &dyn LogWriter, threads: usize, records_per_thread: u64) {
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..records_per_thread {
                        log.write_record(&make_record(t, i));
                    }
                });
            }
        });
        log.flush();
    }

    #[test]
    fn single_threaded_buggy_log_is_clean() {
        let fs = SimFs::new();
        let log = BuggyBufferedLog::new(&fs, "log", 256, 0);
        hammer(&log, 1, 100);
        let v = validate_log(&log.file().read_all());
        assert!(!v.is_violation(100), "{v:?}");
    }

    #[test]
    fn concurrent_buggy_log_corrupts() {
        let fs = SimFs::new();
        let log = BuggyBufferedLog::new(&fs, "log", 256, 2_000);
        hammer(&log, 4, 300);
        let v = validate_log(&log.file().read_all());
        assert!(v.is_violation(4 * 300), "expected corruption, got {v:?}");
    }

    #[test]
    fn locked_log_is_exact_under_contention() {
        let fs = SimFs::new();
        let log = LockedBufferedLog::new(&fs, "log", 256);
        hammer(&log, 4, 300);
        let v = validate_log(&log.file().read_all());
        assert_eq!(v.corrupted_spans, 0, "{v:?}");
        assert_eq!(v.valid_records, 1200);
    }

    #[test]
    fn tm_log_is_exact_under_contention() {
        let fs = SimFs::new();
        let log = TmBufferedLog::new(&fs, "log", 256);
        hammer(&log, 4, 300);
        let v = validate_log(&log.file().read_all());
        assert_eq!(v.corrupted_spans, 0, "{v:?}");
        assert_eq!(v.valid_records, 1200);
    }

    #[test]
    fn validator_flags_interleaved_bytes() {
        let mut data = make_record(1, 1);
        data.extend_from_slice(b"garbage");
        data.extend_from_slice(&make_record(1, 2));
        let v = validate_log(&data);
        assert_eq!(v.valid_records, 2);
        assert_eq!(v.corrupted_spans, 1);
        assert!(v.is_violation(2));
    }

    #[test]
    fn validator_accepts_clean_stream() {
        let mut data = Vec::new();
        for i in 0..10 {
            data.extend_from_slice(&make_record(0, i));
        }
        let v = validate_log(&data);
        assert_eq!(v.valid_records, 10);
        assert!(!v.is_violation(10));
    }
}
