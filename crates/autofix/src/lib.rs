//! Automatic atomic-region inference and verified TM fix synthesis.
//!
//! The rest of the workspace builds the pieces of the paper's workflow:
//! detection (`txfix-analyze`, `txfix-static`), the fix recipes and
//! their substrate (`txfix-core`, `txfix-stm`, `txfix-txlock`,
//! `txfix-tmsync`), and verification by schedule exhaustion
//! (`txfix-explore`). This crate closes the loop — from a buggy
//! scenario summary to a *verified* TM patch with no human in between:
//!
//! 1. **Infer** ([`infer`]): seed one atomic region per static finding,
//!    grow and merge the regions Joshi–Lal / RaceFixer-style until the
//!    checkers are silent, and lower the plan through the Recipe 1–4
//!    span machinery in `txfix-static` (see [`Region`]).
//! 2. **Verify statically**: the patched summary must have zero
//!    residual and zero introduced findings — the same bar `txfix lint`
//!    holds hand-written fixes to.
//! 3. **Verify dynamically** ([`interp`]): execute both the buggy input
//!    and the synthesized patch under the deterministic scheduler's DFS
//!    (VeriFix's criterion): the bug should reproduce on the input, and
//!    no explored schedule of the patch may fail.
//! 4. **Compare** ([`widening`]): diff the inferred regions' data
//!    footprint against the hand-written TM variant's, reporting every
//!    path where inference produced a wider (or different) region.
//!
//! `txfix autofix [<key>] [--all]` runs the loop over the corpus and
//! emits the deterministic `txfix-autofix-v1` report
//! (`AUTOFIX_stm.json`, byte-compared across runs in CI).

pub mod infer;
pub mod interp;
pub mod report;

use std::collections::BTreeSet;

use report::{AutofixEntry, AutofixReport, VerifyStats, Widening};
use txfix_corpus::{keys, summary_for, Variant};
use txfix_explore::runner::RunResult;
use txfix_explore::{explore_build, ExploreConfig};
use txfix_static::{check, footprint, Region, ScenarioSummary};

pub use infer::{apply_all, infer, Inference};
pub use interp::build_run;

/// Diff the atomic-region data footprints of the inferred patch and the
/// hand-written TM variant, per path name. An empty result means the
/// inferred regions cover exactly the hand-written locations; entries
/// record both sides so a widening (inferred ⊃ hand) is distinguishable
/// from a divergence.
pub fn widening(inferred: &ScenarioSummary, hand: &ScenarioSummary) -> Vec<Widening> {
    let fi = footprint(inferred);
    let fh = footprint(hand);
    let names: BTreeSet<&String> = fi.keys().chain(fh.keys()).collect();
    names
        .into_iter()
        .filter_map(|name| {
            let a = fi.get(name).cloned().unwrap_or_default();
            let b = fh.get(name).cloned().unwrap_or_default();
            (a != b).then(|| Widening {
                path: name.clone(),
                inferred: a.into_iter().collect(),
                hand: b.into_iter().collect(),
            })
        })
        .collect()
}

/// Explore every schedule of `summary` (through [`build_run`]) and
/// summarize the outcome.
fn verify_dynamic(summary: &ScenarioSummary, cfg: &ExploreConfig) -> VerifyStats {
    let build = |_: Variant| build_run(summary);
    let ex = explore_build(&build, Variant::Buggy, cfg);
    VerifyStats {
        schedules: ex.schedules,
        pruned: ex.pruned,
        step_limited: ex.step_limited,
        exhausted: ex.exhausted,
        failure: ex.failure.map(|o| match o.result {
            RunResult::Bug(m) => m,
            other => format!("unexpected schedule outcome: {other:?}"),
        }),
    }
}

/// Run the full infer → verify → compare loop for one corpus scenario.
///
/// # Errors
///
/// If `key` has no registered buggy/TM summaries. Inference failures do
/// not error: they produce an entry with `error` set (and `ok() ==
/// false`), so a sweep reports them instead of stopping.
pub fn autofix_scenario(key: &str, cfg: &ExploreConfig) -> Result<AutofixEntry, String> {
    let buggy = summary_for(key, Variant::Buggy)
        .ok_or_else(|| format!("no summary registered for scenario '{key}'"))?;
    let hand = summary_for(key, Variant::TmFix)
        .ok_or_else(|| format!("no TM-fix summary registered for scenario '{key}'"))?;
    let inference = match infer(&buggy) {
        Ok(inf) => inf,
        Err(e) => {
            return Ok(AutofixEntry {
                key: key.to_string(),
                regions: Vec::new(),
                recipes: Vec::new(),
                rounds: 0,
                error: Some(e),
                static_clean: false,
                buggy: VerifyStats::default(),
                patched: VerifyStats::default(),
                widenings: Vec::new(),
            })
        }
    };
    let recipes = inference.regions.iter().map(|r: &Region| r.recipe().to_string()).collect();
    let static_clean = check(&inference.patched).is_empty();
    Ok(AutofixEntry {
        key: key.to_string(),
        recipes,
        rounds: inference.rounds,
        error: None,
        static_clean,
        buggy: verify_dynamic(&buggy, cfg),
        patched: verify_dynamic(&inference.patched, cfg),
        widenings: widening(&inference.patched, &hand),
        regions: inference.regions,
    })
}

/// Autofix the whole corpus (or the scenarios named in `keys`).
///
/// # Errors
///
/// If a requested key is not a corpus scenario.
pub fn autofix_corpus(
    selected: Option<&[String]>,
    cfg: &ExploreConfig,
) -> Result<AutofixReport, String> {
    let all: Vec<&str> = keys::ALL.to_vec();
    let chosen: Vec<&str> = match selected {
        None => all,
        Some(ks) => {
            for k in ks {
                if !all.contains(&k.as_str()) {
                    return Err(format!("no corpus scenario '{k}' (have: {})", all.join(", ")));
                }
            }
            all.into_iter().filter(|k| ks.iter().any(|s| s == k)).collect()
        }
    };
    let mut entries = Vec::new();
    for key in chosen {
        entries.push(autofix_scenario(key, cfg)?);
    }
    Ok(AutofixReport {
        strategy: cfg.strategy.name().to_string(),
        budget: cfg.budget,
        seed: cfg.seed,
        entries,
    })
}
