//! The global version clock (TL2 style).
//!
//! Every committed writing transaction advances the clock and stamps the
//! variables it wrote with the new value. Readers snapshot the clock when
//! they begin and use the snapshot to decide whether an observed version is
//! consistent with their linearization point.

use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(1);

/// Current value of the global version clock.
///
/// Monotonically non-decreasing. A transaction beginning now may safely read
/// any variable whose version is `<=` this value.
#[inline]
pub fn now() -> u64 {
    GLOBAL_CLOCK.load(Ordering::Acquire)
}

/// Advance the clock and return the new (unique) write version.
#[inline]
pub fn tick() -> u64 {
    GLOBAL_CLOCK.fetch_add(1, Ordering::AcqRel) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn tick_is_strictly_greater_than_previous_now() {
        let before = now();
        let t = tick();
        assert!(t > before);
        assert!(now() >= t);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    for _ in 0..1000 {
                        local.push(tick());
                    }
                    let mut g = seen.lock().unwrap();
                    for v in local {
                        assert!(g.insert(v), "duplicate version {v}");
                    }
                });
            }
        });
    }
}
