//! Global runtime counters.
//!
//! Cheap, always-on statistics useful for tests, benchmark reports and the
//! ablation experiments (commit/abort rates, irrevocable entries, retry
//! blocking). Counters are process-global; use [`StatsSnapshot::delta`]
//! around a region of interest to measure it in isolation.
//!
//! ## Sharding
//!
//! Every committing transaction bumps at least one counter, so a single
//! set of global atomics would put one cache line in every core's commit
//! path. The counters are therefore striped across [`SHARDS`]
//! cache-line-padded shards; a thread always bumps its own shard and a
//! snapshot sums across them. Bumps stay wait-free relaxed `fetch_add`s.
//!
//! ## Snapshot consistency
//!
//! [`stats`] reads each counter with its own relaxed load, so a snapshot
//! taken while transactions are in flight is not a point-in-time cut: a
//! commit that lands between two of the loads can appear in some counters
//! and not others, and a [`delta`](StatsSnapshot::delta) across such a
//! boundary can be off by the number of transactions mid-flight at either
//! end. That tolerance is fine for the trending and ratio uses the
//! counters serve; when a measurement needs exact edges — the stress
//! driver's per-run abort accounting does — bound it with
//! [`quiescent_stats`] instead.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards; threads map onto them round-robin.
const SHARDS: usize = 16;

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        #[derive(Default)]
        struct Counters {
            $($name: AtomicU64,)+
        }

        /// A point-in-time copy of the global STM counters.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl StatsSnapshot {
            /// Counter-wise difference `self - earlier` (saturating).
            pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                }
            }
        }

        fn sum_shards() -> StatsSnapshot {
            let mut s = StatsSnapshot::default();
            for shard in &SHARD_TABLE {
                $(s.$name = s.$name.wrapping_add(shard.0.$name.load(Ordering::Relaxed));)+
            }
            s
        }

        #[allow(clippy::declare_interior_mutable_const)]
        const COUNTERS_INIT: Counters = Counters {
            $($name: AtomicU64::new(0),)+
        };
    };
}

counters! {
    /// Transactions that committed successfully.
    commits,
    /// Aborts caused by read-set validation failure.
    conflicts_validation,
    /// Aborts caused by a busy ownership record.
    conflicts_orec,
    /// Explicit `restart` aborts (the paper's `abort` statement).
    explicit_restarts,
    /// `retry` operations that blocked waiting for a read-set change.
    retries,
    /// Aborts due to being selected as a deadlock victim.
    deadlock_aborts,
    /// Aborts due to an external kill signal.
    kills,
    /// Transactions that became irrevocable (inevitable) at some point.
    irrevocable_entries,
    /// Aborts due to a hardware capacity bound.
    capacity_aborts,
    /// Commit-before-wait suspensions (transactional condition variables).
    waits,
    /// Escalation-ladder rung promotions (graceful degradation).
    escalations,
    /// Faults injected by the chaos layer.
    chaos_injected,
}

/// One shard of counters, alone on its cache-line group so two threads'
/// bumps never contend.
#[repr(align(128))]
struct Shard(Counters);

#[allow(clippy::declare_interior_mutable_const)]
const SHARD_INIT: Shard = Shard(COUNTERS_INIT);

static SHARD_TABLE: [Shard; SHARDS] = [SHARD_INIT; SHARDS];

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn my_shard() -> &'static Counters {
    let idx = MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(v);
        v
    });
    &SHARD_TABLE[idx].0
}

/// Take a snapshot of the global counters.
///
/// Counter-by-counter relaxed loads summed across shards: cheap, but not a
/// point-in-time cut while transactions are in flight (see the module docs
/// for the exact tolerance). Use [`quiescent_stats`] for exact region
/// accounting.
pub fn stats() -> StatsSnapshot {
    sum_shards()
}

/// Take a snapshot at a quiescent boundary.
///
/// Acquires the STM's global serialization lock exclusively, which first
/// drains every commit currently inside its publication phase and excludes
/// new ones while the counters are read — so no commit's counter updates
/// are split across the snapshot. For a fully exact region measurement the
/// caller must also have stopped its own worker threads (counter bumps for
/// a commit land just *after* publication releases the lock); the stress
/// driver joins its workers and then calls this.
pub fn quiescent_stats() -> StatsSnapshot {
    let _exclusive = crate::serial::exclusive();
    sum_shards()
}

macro_rules! bump_fns {
    ($($name:ident => $field:ident),+ $(,)?) => {
        $(#[inline]
        pub(crate) fn $name() {
            my_shard().$field.fetch_add(1, Ordering::Relaxed);
        })+
    };
}

bump_fns! {
    bump_commits => commits,
    bump_conflicts_validation => conflicts_validation,
    bump_conflicts_orec => conflicts_orec,
    bump_explicit_restarts => explicit_restarts,
    bump_retries => retries,
    bump_deadlock_aborts => deadlock_aborts,
    bump_kills => kills,
    bump_irrevocable => irrevocable_entries,
    bump_capacity => capacity_aborts,
    bump_waits => waits,
    bump_escalations => escalations,
    bump_chaos_injected => chaos_injected,
}

impl StatsSnapshot {
    /// Total aborts of all causes.
    pub fn total_aborts(&self) -> u64 {
        self.conflicts_validation
            + self.conflicts_orec
            + self.explicit_restarts
            + self.deadlock_aborts
            + self.kills
            + self.capacity_aborts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_counterwise() {
        let a = StatsSnapshot { commits: 10, conflicts_orec: 2, ..Default::default() };
        let b = StatsSnapshot { commits: 4, conflicts_orec: 5, ..Default::default() };
        let d = a.delta(&b);
        assert_eq!(d.commits, 6);
        assert_eq!(d.conflicts_orec, 0); // saturating
    }

    #[test]
    fn bumps_are_visible_in_snapshot() {
        let before = stats();
        bump_commits();
        bump_retries();
        let d = stats().delta(&before);
        assert!(d.commits >= 1);
        assert!(d.retries >= 1);
    }

    #[test]
    fn bumps_from_many_threads_all_land() {
        let before = stats();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        bump_waits();
                    }
                });
            }
        });
        let d = stats().delta(&before);
        assert!(d.waits >= 8000, "lost bumps across shards: {}", d.waits);
    }

    #[test]
    fn total_aborts_sums_causes() {
        let s = StatsSnapshot {
            conflicts_validation: 1,
            conflicts_orec: 2,
            explicit_restarts: 3,
            deadlock_aborts: 4,
            kills: 5,
            capacity_aborts: 6,
            ..Default::default()
        };
        assert_eq!(s.total_aborts(), 21);
    }
}
