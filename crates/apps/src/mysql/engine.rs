//! The MiniDb engine: three variants of the `DELETE FROM t` path.
//!
//! | variant | delete path | matches |
//! |---|---|---|
//! | [`MysqlVariant::Buggy`] | release `lock_open` before logging | the shipped optimization |
//! | [`MysqlVariant::DevFix`] | extend `lock_open` over delete + log | the obvious lock fix the paper judges *hard* (needs understanding of MySQL's most contended lock) |
//! | [`MysqlVariant::TmRecipe4`] | atomic/lock-serialized section around delete + log | the paper's Recipe 4 fix (easy, local to the rare delete-all path) |

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txfix_core::wrap_unprotected_atomic;
use txfix_stm::trace::TracedCell;
use txfix_tmsync::{SerialDomain, SerialMutex};

/// One table row.
pub type Row = (u64, i64);

/// A binlog record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinlogEntry {
    /// `INSERT INTO <table> VALUES (id, val)`.
    Insert {
        /// Table index.
        table: usize,
        /// Row id.
        id: u64,
        /// Row value.
        val: i64,
    },
    /// `DELETE FROM <table>` (delete all rows).
    DeleteAll {
        /// Table index.
        table: usize,
    },
}

/// Which delete-path implementation the engine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MysqlVariant {
    /// Unlock `lock_open` before logging (the bug).
    Buggy,
    /// Hold `lock_open` across delete + log.
    DevFix,
    /// Recipe 4: wrap delete + log in an atomic section serialized against
    /// every lock critical section.
    TmRecipe4,
}

/// The in-memory database.
pub struct MiniDb {
    variant: MysqlVariant,
    domain: Arc<SerialDomain>,
    /// The global table-cache lock; every query's critical sections run
    /// under it (in shared domain mode so Recipe 4 can serialize against
    /// them).
    lock_open: SerialMutex<()>,
    tables: Vec<SerialMutex<Vec<Row>>>,
    binlog: Mutex<Vec<BinlogEntry>>,
    /// Version stamp of the binlog, bumped once per appended record. The
    /// correct paths bump it atomically inside their critical sections; the
    /// buggy delete bumps it with a plain read-then-write outside any lock,
    /// which is exactly the unserialized window the analyzers (and the
    /// deterministic scheduler) need to observe.
    binlog_stamp: TracedCell,
    /// Spin-width of the buggy unlock-to-log window (tests widen it).
    racy_window_spins: u32,
    /// Simulated per-row storage-engine work.
    row_cost_spins: u32,
}

impl fmt::Debug for MiniDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MiniDb")
            .field("variant", &self.variant)
            .field("tables", &self.tables.len())
            .field("binlog_len", &self.binlog.lock().len())
            .finish()
    }
}

fn spin(n: u32) {
    for _ in 0..n {
        std::hint::spin_loop();
    }
}

impl MiniDb {
    /// Create a database with `tables` empty tables.
    pub fn new(variant: MysqlVariant, tables: usize) -> MiniDb {
        let domain = SerialDomain::new();
        MiniDb {
            variant,
            lock_open: SerialMutex::new(domain.clone(), ()),
            tables: (0..tables).map(|_| SerialMutex::new(domain.clone(), Vec::new())).collect(),
            domain,
            binlog: Mutex::new(Vec::new()),
            binlog_stamp: TracedCell::new("mysql1.binlog", 0),
            racy_window_spins: 0,
            row_cost_spins: 200,
        }
    }

    /// Widen the buggy unlock-to-log window (test determinism).
    pub fn with_racy_window(mut self, spins: u32) -> MiniDb {
        self.racy_window_spins = spins;
        self
    }

    /// Set the simulated per-row storage-engine work (spin iterations).
    /// Benchmarks raise this so table work dominates lock overhead, as in
    /// a real storage engine.
    pub fn with_row_cost(mut self, spins: u32) -> MiniDb {
        self.row_cost_spins = spins;
        self
    }

    /// The engine variant.
    pub fn variant(&self) -> MysqlVariant {
        self.variant
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// `INSERT INTO tables[t] VALUES (id, val)` — the *correct* path: a
    /// brief `lock_open` (table-cache lookup) and then the table's logical
    /// lock held across the physical insert **and** its binlog record, so
    /// operations on different tables proceed in parallel (all variants
    /// share this path).
    pub fn insert(&self, t: usize, id: u64, val: i64) {
        {
            let _open = self.lock_open.lock();
        }
        let mut rows = self.tables[t].lock();
        spin(self.row_cost_spins);
        rows.push((id, val));
        self.binlog.lock().push(BinlogEntry::Insert { table: t, id, val });
        self.binlog_stamp.fetch_add(1);
    }

    /// `DELETE FROM tables[t]` — the buggy/fixed path, per variant.
    pub fn delete_all(&self, t: usize) {
        match self.variant {
            MysqlVariant::Buggy => {
                // The shipped optimization: drop logical isolation over the
                // table before the binlog write.
                {
                    let _open = self.lock_open.lock();
                }
                {
                    let mut rows = self.tables[t].lock();
                    spin(self.row_cost_spins);
                    rows.clear();
                } // table lock released here — too early!
                let logged = self.binlog_stamp.load();
                spin(self.racy_window_spins);
                self.binlog.lock().push(BinlogEntry::DeleteAll { table: t });
                self.binlog_stamp.store(logged + 1);
            }
            MysqlVariant::DevFix => {
                // The un-optimized path: table lock held through the log
                // write, like the insert path. Requires understanding the
                // table-locking discipline (judged hard), but deletes on
                // different tables still run in parallel.
                {
                    let _open = self.lock_open.lock();
                }
                let mut rows = self.tables[t].lock();
                spin(self.row_cost_spins);
                rows.clear();
                self.binlog.lock().push(BinlogEntry::DeleteAll { table: t });
                self.binlog_stamp.fetch_add(1);
            }
            MysqlVariant::TmRecipe4 => {
                // Recipe 4: local to this (rare) operation, no knowledge of
                // the locking discipline required — the atomic section is
                // serialized against EVERY lock critical section in the
                // domain, which is also why it costs concurrency (§5.4.4's
                // ~50% result).
                wrap_unprotected_atomic(&self.domain, |_txn| {
                    // Domain held exclusively: the per-table lock below is
                    // uncontended and only satisfies the type system.
                    let mut rows = self.tables[t].lock();
                    spin(self.row_cost_spins);
                    rows.clear();
                    drop(rows);
                    self.binlog.lock().push(BinlogEntry::DeleteAll { table: t });
                    self.binlog_stamp.fetch_add(1);
                    Ok(())
                });
            }
        }
    }

    /// Like [`delete_all`](MiniDb::delete_all), but runs `window` at the
    /// point where the buggy variant has dropped the table's logical lock
    /// and not yet written the binlog — a deterministic stand-in for "a
    /// concurrent INSERT executes right here". For the fixed variants no
    /// such point exists, so `window` runs before the (atomic) operation.
    pub fn delete_all_hooked(&self, t: usize, window: impl FnOnce()) {
        match self.variant {
            MysqlVariant::Buggy => {
                {
                    let _open = self.lock_open.lock();
                }
                {
                    let mut rows = self.tables[t].lock();
                    spin(self.row_cost_spins);
                    rows.clear();
                }
                let logged = self.binlog_stamp.load();
                window(); // the INSERT (and its log record) lands here
                self.binlog.lock().push(BinlogEntry::DeleteAll { table: t });
                self.binlog_stamp.store(logged + 1);
            }
            MysqlVariant::DevFix | MysqlVariant::TmRecipe4 => {
                window();
                self.delete_all(t);
            }
        }
    }

    /// Snapshot of table `t`.
    pub fn rows(&self, t: usize) -> Vec<Row> {
        self.tables[t].lock().clone()
    }

    /// Snapshot of the binlog.
    pub fn binlog(&self) -> Vec<BinlogEntry> {
        self.binlog.lock().clone()
    }
}

/// Whether `db`'s tables match a replay of its binlog — the invariant the
/// MySQL-I bug breaks.
pub fn consistent_with_binlog(db: &MiniDb) -> bool {
    let replayed = replay_binlog(&db.binlog(), db.table_count());
    (0..db.table_count()).all(|t| {
        let mut actual = db.rows(t);
        let mut expect = replayed[t].clone();
        actual.sort_unstable();
        expect.sort_unstable();
        actual == expect
    })
}

/// Replay a binlog into per-table row sets (what a replica would compute).
pub fn replay_binlog(entries: &[BinlogEntry], tables: usize) -> Vec<Vec<Row>> {
    let mut state: Vec<Vec<Row>> = vec![Vec::new(); tables];
    for e in entries {
        match *e {
            BinlogEntry::Insert { table, id, val } => state[table].push((id, val)),
            BinlogEntry::DeleteAll { table } => state[table].clear(),
        }
    }
    state
}

/// Workload parameters for the MySQL-I reproduction.
#[derive(Clone, Copy, Debug)]
pub struct MysqlWorkload {
    /// Insert threads.
    pub insert_threads: usize,
    /// Inserts per thread.
    pub inserts_per_thread: u64,
    /// Delete-all threads.
    pub delete_threads: usize,
    /// Delete-all operations per delete thread.
    pub deletes_per_thread: u64,
    /// Tables.
    pub tables: usize,
}

impl Default for MysqlWorkload {
    fn default() -> Self {
        MysqlWorkload {
            insert_threads: 4,
            inserts_per_thread: 400,
            delete_threads: 1,
            deletes_per_thread: 40,
            tables: 4,
        }
    }
}

/// Outcome of a workload run.
#[derive(Clone, Debug, PartialEq)]
pub struct MysqlOutcome {
    /// Whether the server's final tables diverge from a binlog replay —
    /// the MySQL-I atomicity violation observed.
    pub replay_divergence: bool,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Total queries executed.
    pub queries: u64,
}

/// Run concurrent INSERT / DELETE-all traffic against `db` and check the
/// binlog-replay invariant.
pub fn run_mysql_workload(db: &MiniDb, w: &MysqlWorkload) -> MysqlOutcome {
    assert!(db.table_count() >= w.tables);
    let next_id = AtomicU64::new(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for it in 0..w.insert_threads {
            let db = &db;
            let next_id = &next_id;
            s.spawn(move || {
                for i in 0..w.inserts_per_thread {
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    let t = (it as u64 + i) as usize % w.tables;
                    db.insert(t, id, (i as i64) * 3 + it as i64);
                }
            });
        }
        for dt in 0..w.delete_threads {
            let db = &db;
            s.spawn(move || {
                for i in 0..w.deletes_per_thread {
                    let t = (dt as u64 + i) as usize % w.tables;
                    db.delete_all(t);
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let replayed = replay_binlog(&db.binlog(), w.tables);
    let mut divergence = false;
    for (t, replay) in replayed.iter().enumerate() {
        let mut actual = db.rows(t);
        let mut expect = replay.clone();
        actual.sort_unstable();
        expect.sort_unstable();
        if actual != expect {
            divergence = true;
        }
    }
    MysqlOutcome {
        replay_divergence: divergence,
        elapsed,
        queries: (w.insert_threads as u64 * w.inserts_per_thread)
            + (w.delete_threads as u64 * w.deletes_per_thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_replay_agree_sequentially() {
        let db = MiniDb::new(MysqlVariant::Buggy, 2);
        db.insert(0, 1, 10);
        db.insert(1, 2, 20);
        db.delete_all(0);
        db.insert(0, 3, 30);
        let replayed = replay_binlog(&db.binlog(), 2);
        assert_eq!(replayed[0], db.rows(0));
        assert_eq!(replayed[1], db.rows(1));
    }

    #[test]
    fn buggy_variant_diverges_with_insert_in_window() {
        let db = MiniDb::new(MysqlVariant::Buggy, 1);
        db.insert(0, 1, 10);
        db.insert(0, 2, 20);
        // The INSERT that executes between the delete's unlock and its log
        // record (paper Figure 5's interleaving).
        db.delete_all_hooked(0, || db.insert(0, 99, 99));
        assert!(!consistent_with_binlog(&db), "expected binlog/table divergence");
        // The server kept the row, but a replica replaying the log drops it.
        assert_eq!(db.rows(0), vec![(99, 99)]);
        assert_eq!(replay_binlog(&db.binlog(), 1)[0], Vec::<Row>::new());
    }

    #[test]
    fn fixed_variants_stay_consistent_with_insert_near_window() {
        for v in [MysqlVariant::DevFix, MysqlVariant::TmRecipe4] {
            let db = MiniDb::new(v, 1);
            db.insert(0, 1, 10);
            db.delete_all_hooked(0, || db.insert(0, 99, 99));
            assert!(consistent_with_binlog(&db), "{v:?} diverged");
        }
    }

    #[test]
    fn dev_fix_never_diverges() {
        let db = MiniDb::new(MysqlVariant::DevFix, 2).with_racy_window(20_000);
        let out = run_mysql_workload(&db, &MysqlWorkload { tables: 2, ..Default::default() });
        assert!(!out.replay_divergence);
    }

    #[test]
    fn recipe4_fix_never_diverges() {
        let db = MiniDb::new(MysqlVariant::TmRecipe4, 2).with_racy_window(20_000);
        let out = run_mysql_workload(&db, &MysqlWorkload { tables: 2, ..Default::default() });
        assert!(!out.replay_divergence);
    }

    #[test]
    fn replay_handles_interleaved_tables() {
        let log = vec![
            BinlogEntry::Insert { table: 0, id: 1, val: 1 },
            BinlogEntry::Insert { table: 1, id: 2, val: 2 },
            BinlogEntry::DeleteAll { table: 0 },
            BinlogEntry::Insert { table: 0, id: 3, val: 3 },
        ];
        let state = replay_binlog(&log, 2);
        assert_eq!(state[0], vec![(3, 3)]);
        assert_eq!(state[1], vec![(2, 2)]);
    }
}
