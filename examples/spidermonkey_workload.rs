//! The Mozilla-I case study end to end (paper §5.4.1).
//!
//! ```sh
//! cargo run --release --example spidermonkey_workload
//! ```
//!
//! Runs the SunSpider-like interpreter workload over every object-store
//! variant and prints throughput relative to the developers' fix — the
//! numbers behind Table 4's Mozilla-I row (21% on software TM, 99.3% on
//! hardware, 85% with Recipe 3 preemption).

use txfix::apps::spidermonkey::{
    run_script_workload, HwModelStore, ObjectStore, OwnershipMode, OwnershipStore, PreemptStore,
    ScriptParams, StmStore,
};

fn main() {
    let p = ScriptParams {
        threads: 4,
        objects_per_thread: 8,
        slots: 8,
        shared_objects: 4,
        iterations: 20_000,
        cross_object_period: 64,
        compute_ns: 250,
    };
    let total = p.total_objects();

    let dev = OwnershipStore::new(OwnershipMode::DevFix, total, p.slots);
    let sw = StmStore::software(total, p.slots);
    let hw = HwModelStore::new(total, p.slots);
    let pre = PreemptStore::new(total, p.slots);
    let stores: [&dyn ObjectStore; 4] = [&dev, &sw, &hw, &pre];

    println!(
        "SunSpider stand-in: {} threads x {} ops, cross-object move every {} ops\n",
        p.threads, p.iterations, p.cross_object_period
    );

    let mut baseline = None;
    for store in stores {
        let r = run_script_workload(store, &p);
        let rel = match baseline {
            None => {
                baseline = Some(r.ops_per_sec);
                1.0
            }
            Some(base) => r.ops_per_sec / base,
        };
        println!(
            "{:35} {:>12.0} ops/s   {:>6.1}% of developer fix",
            store.variant_name(),
            r.ops_per_sec,
            rel * 100.0
        );
    }

    println!("\nShape to compare with the paper: software TM far below the ownership");
    println!("protocol (paper: 21%), the hardware model at parity (99.3%), and Recipe 3");
    println!("in between (85%) because only the rare cross-object path is transactional.");
}
