//! The autofix loop (`txfix autofix`) over the corpus: inference must
//! converge to a statically clean patch for every buggy variant, the
//! inferred regions must cover at least the hand-written TM regions,
//! and on representative scenarios the explorer must reproduce the bug
//! on the buggy summary and find nothing on the patched one.

use std::collections::BTreeSet;

use txfix::autofix::{autofix_scenario, build_run, infer, widening};
use txfix::corpus::{keys, summary_for, Variant};
use txfix::explore::{explore_build, ExploreConfig};
use txfix::lint::{check, footprint, Path, Region, Summary};

#[test]
fn inference_converges_to_a_statically_clean_patch_on_every_buggy_variant() {
    for key in keys::ALL {
        let buggy = summary_for(key, Variant::Buggy).expect("registered summary");
        let inf = infer(&buggy).unwrap_or_else(|e| panic!("{key}: inference failed: {e}"));
        assert!(!inf.regions.is_empty(), "{key}: buggy variant inferred an empty fix plan");
        assert!(inf.rounds >= 1, "{key}: buggy variant converged without a grow round");
        let residual = check(&inf.patched);
        assert!(
            residual.is_empty(),
            "{key}: patched summary still has findings: {:?}",
            residual.iter().map(|f| f.hazard.to_string()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn fixed_variants_need_no_fix() {
    for key in keys::ALL {
        for variant in [Variant::DevFix, Variant::TmFix] {
            let summary = summary_for(key, variant).expect("registered summary");
            let inf = infer(&summary).expect("clean summaries infer trivially");
            assert!(inf.regions.is_empty(), "{key} ({variant:?}): non-empty plan");
            assert_eq!(inf.rounds, 0, "{key} ({variant:?}): took grow rounds");
        }
    }
}

/// The widening guarantee: per path, the inferred patch's atomic
/// regions cover every location the hand-written TM variant covers
/// (inferred ⊇ hand). Any extra coverage is reported, never silently
/// dropped.
#[test]
fn inferred_regions_cover_the_hand_written_footprint() {
    for key in keys::ALL {
        let buggy = summary_for(key, Variant::Buggy).expect("registered summary");
        let hand = summary_for(key, Variant::TmFix).expect("registered summary");
        let inf = infer(&buggy).unwrap_or_else(|e| panic!("{key}: inference failed: {e}"));
        let fi = footprint(&inf.patched);
        for (path, hand_locs) in footprint(&hand) {
            let inferred_locs = fi.get(&path).cloned().unwrap_or_default();
            let missing: Vec<&String> = hand_locs.difference(&inferred_locs).collect();
            assert!(
                missing.is_empty(),
                "{key}/{path}: hand-written TM region covers {missing:?} but the inferred one does not"
            );
        }
        for w in widening(&inf.patched, &hand) {
            let inferred: BTreeSet<&String> = w.inferred.iter().collect();
            let hand_set: BTreeSet<&String> = w.hand.iter().collect();
            assert!(
                hand_set.is_subset(&inferred),
                "{key}/{}: widening entry is a narrowing: inferred {:?} vs hand {:?}",
                w.path,
                w.inferred,
                w.hand
            );
        }
    }
}

/// Nested critical sections: a race under distinct nested locksets
/// still seeds, grows, and lands on a clean patch.
#[test]
fn inference_handles_nested_lock_summaries() {
    let summary = Summary::new("synthetic_nested", "buggy")
        .path(
            Path::new("outer_inner")
                .acquire("outer")
                .acquire("inner")
                .read("x")
                .write("x")
                .release("inner")
                .release("outer"),
        )
        .path(Path::new("bare").read("x").write("x"))
        .build();
    let inf = infer(&summary).expect("nested summary infers");
    assert!(!inf.regions.is_empty());
    assert!(check(&inf.patched).is_empty(), "patched nested summary not clean");
    // The bare path's accesses must now be protected; the region must
    // serialize against (or replace) the nested critical section.
    let fp = footprint(&inf.patched);
    assert!(fp.get("bare").is_some_and(|locs| locs.contains("x")), "bare path left unwrapped");
}

/// Overlapping seeds merge: two findings whose group-closed subjects
/// intersect produce one region, not two overlapping ones.
#[test]
fn overlapping_region_seeds_merge_into_one() {
    let summary = Summary::new("synthetic_overlap", "buggy")
        .group(&["x", "y"])
        .path(Path::new("writer_x").read("x").write("x"))
        .path(Path::new("writer_y").read("y").write("y"))
        .path(Path::new("reader").read("x").read("y"))
        .build();
    let inf = infer(&summary).expect("overlapping summary infers");
    let wraps: Vec<&Region> =
        inf.regions.iter().filter(|r| matches!(r, Region::Wrap { .. })).collect();
    assert_eq!(wraps.len(), 1, "expected one merged wrap, got {:?}", inf.regions);
    let Region::Wrap { locs, paths, .. } = wraps[0] else { unreachable!() };
    assert_eq!(locs, &["x".to_string(), "y".to_string()]);
    assert_eq!(paths.len(), 3, "merged wrap must cover all three paths: {paths:?}");
    assert!(check(&inf.patched).is_empty());
}

/// End-to-end on representative scenarios, one per hazard class: the
/// explorer reproduces the bug on the buggy summary and finds nothing
/// on the inferred patch.
#[test]
fn explorer_confirms_bug_and_fix_on_representative_scenarios() {
    let cfg = ExploreConfig { budget: 512, ..ExploreConfig::default() };
    // data race, lock-order cycle, lost wakeup
    for key in ["av_refcount_race", "mozilla_i", "av_cv_partial"] {
        let entry = autofix_scenario(key, &cfg).expect("known key");
        assert!(entry.error.is_none(), "{key}: {:?}", entry.error);
        assert!(entry.static_clean, "{key}: patch not statically clean");
        assert!(
            entry.buggy.failure.is_some(),
            "{key}: explorer failed to reproduce the bug on the buggy summary"
        );
        assert!(
            entry.patched.failure.is_none(),
            "{key}: explored schedule broke the patch: {:?}",
            entry.patched.failure
        );
        assert!(entry.ok());
    }
}

/// The interpreter is faithful enough to clear fixed variants: the
/// hand-written TM summary of a data-race scenario survives
/// exploration.
#[test]
fn interpreter_clears_hand_written_tm_summaries() {
    let cfg = ExploreConfig { budget: 512, ..ExploreConfig::default() };
    let tm = summary_for("av_refcount_race", Variant::TmFix).expect("registered summary");
    let build = |_| build_run(&tm);
    let ex = explore_build(&build, Variant::TmFix, &cfg);
    assert!(ex.schedules > 0);
    assert!(ex.failure.is_none(), "tm summary failed under exploration");
}
