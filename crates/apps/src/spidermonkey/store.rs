//! The object-store interface every SpiderMonkey variant implements.

use std::fmt::Debug;

/// Uniform interface over the buggy, developer-fixed and TM-fixed object
/// layers, so scenarios and benchmarks can drive any of them with the same
/// workload.
///
/// `thread` is a small dense thread index (the workload assigns one per
/// worker); object and slot indices address a fixed grid created up front.
pub trait ObjectStore: Send + Sync + Debug {
    /// Store `value` into `slots[slot]` of object `obj`.
    fn set_slot(&self, thread: usize, obj: usize, slot: usize, value: i64);

    /// Read `slots[slot]` of object `obj`.
    fn get_slot(&self, thread: usize, obj: usize, slot: usize) -> i64;

    /// Atomically move the value in `(src, slot)` to `(dst, slot)` — the
    /// cross-object operation that needs `setSlotLock` plus both scopes and
    /// triggers the Mozilla-I deadlock in the ownership protocol.
    ///
    /// Returns `false` if the operation had to be abandoned (only the buggy
    /// variant does this, when its deadlock timeout fires).
    fn move_slot(&self, thread: usize, src: usize, dst: usize, slot: usize) -> bool;

    /// Called by the workload when `thread` reaches a request boundary or
    /// finishes: the store may release any per-thread affinity state (the
    /// ownership protocol relinquishes the thread's titles here). Default:
    /// nothing to release.
    fn quiesce(&self, thread: usize) {
        let _ = thread;
    }

    /// Number of objects in the store.
    fn object_count(&self) -> usize;

    /// Diagnostic name of the variant.
    fn variant_name(&self) -> &'static str;
}
