//! A miniature of the Apache httpd worker MPM.
//!
//! Two buggy subsystems from the paper's case studies:
//!
//! - [`fdqueue`]: the listener/worker handoff of Apache-I (§5.4.2) — the
//!   listener holds the timeout mutex while waiting for an idle worker,
//!   while workers need that mutex before they can announce availability.
//! - [`buffered_log`]: `ap_buffered_log_writer` of Apache-II (§5.4.3) — a
//!   completely unsynchronized shared log buffer.

pub mod buffered_log;
pub mod fdqueue;

pub use buffered_log::{
    validate_log, BuggyBufferedLog, LockedBufferedLog, LogValidation, LogWriter, TmBufferedLog,
};
pub use fdqueue::{run_apache1, Apache1Config, Apache1Outcome, Apache1Variant};
