//! The `txfix-autofix-v1` report format.
//!
//! Like `txfix-explore-v1`, the report deliberately excludes wall-clock
//! time and anything else non-deterministic: CI runs `txfix autofix
//! --all` twice and byte-compares the JSON, so every field must be a
//! pure function of `(corpus, strategy, seed, budget)`.

use txfix_core::json::{Json, ToJson};
use txfix_static::Region;

/// Format identifier.
pub const FORMAT: &str = "txfix-autofix-v1";

/// One exploration of a summary (buggy input or synthesized patch)
/// through the schedule explorer.
#[derive(Clone, Debug, Default)]
pub struct VerifyStats {
    /// Schedules run to a verdict.
    pub schedules: u64,
    /// Schedules abandoned by partial-order reduction.
    pub pruned: u64,
    /// Schedules that hit the step bound (inconclusive).
    pub step_limited: u64,
    /// True if DFS exhausted the reduced space within budget.
    pub exhausted: bool,
    /// The first failing schedule's bug message, if any.
    pub failure: Option<String>,
}

/// A per-path footprint difference between the inferred patch and the
/// hand-written TM variant.
#[derive(Clone, Debug)]
pub struct Widening {
    /// Path name (stable across variants).
    pub path: String,
    /// Locations inside atomic regions in the inferred patch.
    pub inferred: Vec<String>,
    /// Locations inside atomic regions in the hand-written TM variant.
    pub hand: Vec<String>,
}

/// One scenario's inference + verification result.
#[derive(Clone, Debug)]
pub struct AutofixEntry {
    /// Corpus key.
    pub key: String,
    /// The inferred fix plan, in application order.
    pub regions: Vec<Region>,
    /// The paper recipe each region amounts to (parallel to `regions`).
    pub recipes: Vec<String>,
    /// Grow rounds the inference used.
    pub rounds: u32,
    /// Inference failure, if any (no verification was attempted).
    pub error: Option<String>,
    /// Whether the patched summary is statically clean.
    pub static_clean: bool,
    /// Exploration of the buggy summary (the bug should reproduce).
    pub buggy: VerifyStats,
    /// Exploration of the patched summary (nothing should fail).
    pub patched: VerifyStats,
    /// Footprint differences against the hand-written TM variant; empty
    /// when the inferred regions match the hand-written ones exactly.
    pub widenings: Vec<Widening>,
}

impl AutofixEntry {
    /// Whether the fix is verified: inference succeeded, the patch is
    /// statically clean, and no explored schedule of the patch fails.
    /// (A buggy input whose counterexample needs more schedules than
    /// the budget is reported via `buggy.failure = None` but does not
    /// fail the entry: the verification obligation is on the patch.)
    pub fn ok(&self) -> bool {
        self.error.is_none() && self.static_clean && self.patched.failure.is_none()
    }
}

/// The whole corpus sweep.
#[derive(Clone, Debug)]
pub struct AutofixReport {
    /// Exploration strategy (`dfs` / `pct`).
    pub strategy: String,
    /// Per-summary schedule budget.
    pub budget: u64,
    /// Base seed (PCT; recorded either way).
    pub seed: u64,
    /// Every autofixed scenario.
    pub entries: Vec<AutofixEntry>,
}

impl AutofixReport {
    /// True if every entry verified.
    pub fn ok(&self) -> bool {
        self.entries.iter().all(|e| e.ok())
    }
}

impl ToJson for VerifyStats {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("schedules", Json::int(self.schedules)),
            ("pruned", Json::int(self.pruned)),
            ("step_limited", Json::int(self.step_limited)),
            ("exhausted", Json::Bool(self.exhausted)),
            (
                "failure",
                match &self.failure {
                    Some(m) => Json::str(m),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl ToJson for Widening {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("path", Json::str(&self.path)),
            ("inferred", Json::strings(&self.inferred)),
            ("hand", Json::strings(&self.hand)),
        ])
    }
}

impl ToJson for AutofixEntry {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("key", Json::str(&self.key)),
            ("regions", Json::list(self.regions.iter().map(|r| r.to_json_value()))),
            ("recipes", Json::strings(&self.recipes)),
            ("rounds", Json::int(u64::from(self.rounds))),
            (
                "error",
                match &self.error {
                    Some(e) => Json::str(e),
                    None => Json::Null,
                },
            ),
            ("static_clean", Json::Bool(self.static_clean)),
            ("buggy", self.buggy.to_json_value()),
            ("patched", self.patched.to_json_value()),
            ("widenings", Json::list(self.widenings.iter().map(|w| w.to_json_value()))),
            ("ok", Json::Bool(self.ok())),
        ])
    }
}

impl ToJson for AutofixReport {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("schema", Json::str(FORMAT)),
            ("strategy", Json::str(&self.strategy)),
            ("budget", Json::int(self.budget)),
            ("seed", Json::int(self.seed)),
            ("ok", Json::Bool(self.ok())),
            ("entries", Json::list(self.entries.iter().map(|e| e.to_json_value()))),
        ])
    }
}
