//! Transactional pipe and socket operations.
//!
//! Writes are *deferred* until commit (nothing to undo); reads are
//! *compensated*: the bytes are consumed immediately so the transaction
//! can act on them, and pushed back into the pipe if the transaction
//! aborts. Irreversible operations go through [`x_inevitable`].

use crate::simos::{OsError, SimPipe, SimSocket};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use txfix_stm::chaos;
use txfix_stm::{StmResult, Txn, TxnKind};

/// A transactional handle to a [`SimPipe`].
#[derive(Clone)]
pub struct XPipe {
    pipe: Arc<SimPipe>,
}

impl fmt::Debug for XPipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XPipe").field("pipe", &self.pipe).finish()
    }
}

impl XPipe {
    /// Wrap a simulated pipe.
    pub fn new(pipe: Arc<SimPipe>) -> XPipe {
        XPipe { pipe }
    }

    /// The underlying pipe (non-transactional access).
    pub fn pipe(&self) -> &Arc<SimPipe> {
        &self.pipe
    }

    /// Defer writing `bytes` until the transaction commits.
    ///
    /// The commit-time write uses the pipe's normal blocking semantics; a
    /// full pipe with a dead reader will stall the committing thread, which
    /// is exactly the class of I/O hazard the paper notes TM cannot mask.
    ///
    /// # Errors
    ///
    /// Never fails at call time (the defer itself is pure); kept fallible
    /// for uniformity with the other x-calls.
    pub fn x_write(&self, txn: &mut Txn, bytes: &[u8]) -> StmResult<()> {
        txfix_stm::obs::note_xcall();
        // Chaos: a synthetic failure *before* the write is deferred aborts
        // the attempt, so the retried transaction defers it exactly once.
        if !txn.is_irrevocable() && chaos::should_inject(chaos::InjectionPoint::XcallPipe) {
            return Err(txfix_stm::Abort::Restart);
        }
        let pipe = self.pipe.clone();
        let bytes = bytes.to_vec();
        txn.on_commit(move || {
            // Ignore a closed read end at commit time, matching write(2)
            // semantics under SIGPIPE-ignored: the data is simply lost.
            let _ = pipe.write(&bytes);
        });
        Ok(())
    }

    /// Read up to `max` bytes immediately, registering a compensation that
    /// pushes them back if the transaction aborts.
    ///
    /// # Errors
    ///
    /// Returns `Ok(Err(OsError))` for OS-level failures (timeout, closed),
    /// which do not abort the transaction.
    pub fn x_read(
        &self,
        txn: &mut Txn,
        max: usize,
        timeout: Duration,
    ) -> StmResult<Result<Vec<u8>, OsError>> {
        txfix_stm::obs::note_xcall();
        // Chaos: an OS-level timeout, exactly as the pipe itself would
        // surface one — the transaction keeps running and the caller deals
        // with the error.
        if chaos::should_inject(chaos::InjectionPoint::XcallPipe) {
            return Ok(Err(OsError::TimedOut));
        }
        match self.pipe.read(max, timeout) {
            Ok(bytes) => {
                if !bytes.is_empty() {
                    let pipe = self.pipe.clone();
                    let undo = bytes.clone();
                    // Canary: the compensation is registered twice, so an
                    // abort pushes the consumed bytes back *twice* — the
                    // stream re-delivers data that was only read once.
                    #[cfg(feature = "canary-xcall")]
                    if txfix_stm::canary::fire(txfix_stm::canary::Canary::XcallDoubleCompensate) {
                        let pipe2 = pipe.clone();
                        let undo2 = undo.clone();
                        txn.on_abort(move || pipe2.unread(&undo2));
                    }
                    txn.on_abort(move || pipe.unread(&undo));
                }
                Ok(Ok(bytes))
            }
            Err(e) => Ok(Err(e)),
        }
    }

    /// Non-blocking compensated read.
    pub fn x_try_read(&self, txn: &mut Txn, max: usize) -> StmResult<Option<Vec<u8>>> {
        txfix_stm::obs::note_xcall();
        // Chaos: spurious "would block".
        if chaos::should_inject(chaos::InjectionPoint::XcallPipe) {
            return Ok(None);
        }
        match self.pipe.try_read(max) {
            Some(bytes) => {
                let pipe = self.pipe.clone();
                let undo = bytes.clone();
                // Canary: as in `x_read` — duplicate compensation.
                #[cfg(feature = "canary-xcall")]
                if txfix_stm::canary::fire(txfix_stm::canary::Canary::XcallDoubleCompensate) {
                    let pipe2 = pipe.clone();
                    let undo2 = undo.clone();
                    txn.on_abort(move || pipe2.unread(&undo2));
                }
                txn.on_abort(move || pipe.unread(&undo));
                Ok(Some(bytes))
            }
            None => Ok(None),
        }
    }
}

/// A transactional handle to a [`SimSocket`].
#[derive(Clone, Debug)]
pub struct XSocket {
    /// Receive side (compensated reads).
    pub rx: XPipe,
    /// Transmit side (deferred writes).
    pub tx: XPipe,
}

impl XSocket {
    /// Wrap a simulated socket.
    pub fn new(socket: SimSocket) -> XSocket {
        XSocket { rx: XPipe::new(socket.rx), tx: XPipe::new(socket.tx) }
    }

    /// Defer sending until commit.
    ///
    /// # Errors
    ///
    /// See [`XPipe::x_write`].
    pub fn x_send(&self, txn: &mut Txn, bytes: &[u8]) -> StmResult<()> {
        self.tx.x_write(txn, bytes)
    }

    /// Compensated receive.
    ///
    /// # Errors
    ///
    /// See [`XPipe::x_read`].
    pub fn x_recv(
        &self,
        txn: &mut Txn,
        max: usize,
        timeout: Duration,
    ) -> StmResult<Result<Vec<u8>, OsError>> {
        self.rx.x_read(txn, max, timeout)
    }
}

/// Run an *irreversible* operation (the paper's `ioctl` class: ambiguous
/// semantics or two-way communication with a non-transactional service).
///
/// xCalls "reverts to inevitable transactions" for these: the transaction
/// becomes irrevocable first, so the side effect executes exactly once.
/// Requires a [`TxnKind::Relaxed`] transaction.
///
/// # Errors
///
/// Propagates the conflict from becoming irrevocable.
///
/// # Panics
///
/// Panics inside a [`TxnKind::Atomic`] transaction (unsafe operations are
/// not allowed there).
pub fn x_inevitable<T>(txn: &mut Txn, f: impl FnOnce() -> T) -> StmResult<T> {
    txfix_stm::obs::note_xcall();
    assert_eq!(txn.kind(), TxnKind::Relaxed, "inevitable x-calls require a relaxed transaction");
    txn.unsafe_op(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simos::SimPipe;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use txfix_stm::{atomic, atomic_relaxed};

    #[test]
    fn write_is_deferred() {
        let p = SimPipe::new(64);
        let xp = XPipe::new(p.clone());
        atomic(|txn| {
            xp.x_write(txn, b"msg")?;
            assert_eq!(p.buffered(), 0, "write leaked before commit");
            Ok(())
        });
        assert_eq!(p.buffered(), 3);
    }

    #[test]
    fn aborted_write_never_happens() {
        let p = SimPipe::new(64);
        let xp = XPipe::new(p.clone());
        let first = AtomicBool::new(true);
        atomic(|txn| {
            xp.x_write(txn, b"once")?;
            if first.swap(false, Ordering::SeqCst) {
                return txn.restart();
            }
            Ok(())
        });
        assert_eq!(p.buffered(), 4, "exactly one commit's write expected");
    }

    #[test]
    fn aborted_read_is_compensated() {
        let p = SimPipe::new(64);
        p.write(b"abcd").unwrap();
        let xp = XPipe::new(p.clone());
        let first = AtomicBool::new(true);
        let got = atomic(|txn| {
            let bytes = xp.x_try_read(txn, 2)?.expect("data available");
            if first.swap(false, Ordering::SeqCst) {
                // Abort: the consumed bytes must return to the pipe.
                return txn.restart();
            }
            Ok(bytes)
        });
        assert_eq!(got, b"ab", "re-read after compensation must see same bytes");
        assert_eq!(p.buffered(), 2);
    }

    #[test]
    fn socket_send_recv_transactionally() {
        let (a, b) = crate::simos::SimSocket::pair(64);
        let xa = XSocket::new(a);
        let xb = XSocket::new(b);
        atomic(|txn| xa.x_send(txn, b"ping"));
        let got = atomic(|txn| Ok(xb.x_recv(txn, 4, Duration::from_millis(200))?.unwrap()));
        assert_eq!(got, b"ping");
    }

    #[test]
    fn inevitable_runs_exactly_once_despite_conflicts() {
        let count = AtomicU32::new(0);
        atomic_relaxed(|txn| {
            x_inevitable(txn, || {
                count.fetch_add(1, Ordering::SeqCst);
            })
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "relaxed transaction")]
    fn inevitable_rejects_atomic_kind() {
        atomic(|txn| x_inevitable(txn, || ()));
    }
}
