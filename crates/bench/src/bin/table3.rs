//! Regenerate Table 3: downcalls performed by the TM fixes' atomic blocks.
//!
//! Pass `--json` for a machine-readable version.

use txfix_core::json::ToJson;

fn main() {
    let bugs = txfix_corpus::all_bugs();
    let table = txfix_core::table3(&bugs);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", table.to_json());
    } else {
        print!("{table}");
    }
}
