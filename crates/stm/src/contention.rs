//! Contention management: what a transaction does between an abort and the
//! next attempt.
//!
//! The paper relies on randomized exponential backoff to avoid livelock in
//! deadlock preemption (Recipe 3, §4.4) — a preempted transaction that
//! restarts immediately may reacquire its locks before the other deadlocked
//! threads make progress. The policies here are also the subject of the A2
//! ablation benchmark.

use std::cell::Cell;
use std::time::Duration;

/// Policy for waiting between transaction attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackoffPolicy {
    /// Retry immediately. Prone to livelock under contention; included as
    /// an ablation baseline.
    None,
    /// Busy-spin for a bounded, constant number of iterations.
    Spin {
        /// Spin-loop iterations per failed attempt.
        iters: u32,
    },
    /// Randomized exponential backoff (the default): sleep for a uniformly
    /// random duration in `[0, base * 2^attempt)`, capped at `max`.
    ExpJitter {
        /// Backoff unit for the first retry.
        base: Duration,
        /// Upper bound on any single backoff.
        max: Duration,
    },
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy::ExpJitter { base: Duration::from_micros(5), max: Duration::from_millis(2) }
    }
}

impl BackoffPolicy {
    /// A strictly stronger variant of this policy, used by the escalation
    /// ladder's middle rung: `None` becomes the default jittered policy,
    /// `Spin` spins 8× longer, `ExpJitter` widens both the base window and
    /// the cap 4×.
    pub fn escalated(self) -> BackoffPolicy {
        match self {
            BackoffPolicy::None => BackoffPolicy::default(),
            BackoffPolicy::Spin { iters } => {
                BackoffPolicy::Spin { iters: iters.saturating_mul(8).max(64) }
            }
            BackoffPolicy::ExpJitter { base, max } => BackoffPolicy::ExpJitter {
                base: base.saturating_mul(4).max(Duration::from_nanos(1)),
                max: max.saturating_mul(4).max(Duration::from_nanos(1)),
            },
        }
    }
}

/// Stateful backoff driver for one transaction attempt loop.
#[derive(Debug)]
pub(crate) struct Backoff {
    policy: BackoffPolicy,
    failures: u32,
}

impl Backoff {
    pub(crate) fn new(policy: BackoffPolicy) -> Backoff {
        Backoff { policy, failures: 0 }
    }

    /// Record a failure and wait according to the policy.
    pub(crate) fn wait(&mut self) {
        self.failures = self.failures.saturating_add(1);
        match self.policy {
            BackoffPolicy::None => {}
            BackoffPolicy::Spin { iters } => {
                for _ in 0..iters {
                    std::hint::spin_loop();
                }
            }
            BackoffPolicy::ExpJitter { base, .. } => {
                let window = jitter_window(self.policy, self.failures).unwrap_or(base);
                let nanos = window.as_nanos() as u64;
                let jittered = xorshift_below(nanos.max(1));
                std::thread::sleep(Duration::from_nanos(jittered));
            }
        }
    }

    /// Forget accumulated failures: the next wait starts from the base
    /// window again. The runtime calls this when a commit succeeds mid-loop
    /// (commit-before-wait), since a successful publish means the
    /// contention that grew the window is gone.
    pub(crate) fn reset(&mut self) {
        self.failures = 0;
    }

    #[cfg(test)]
    pub(crate) fn failures(&self) -> u32 {
        self.failures
    }
}

/// The jitter window an [`BackoffPolicy::ExpJitter`] policy sleeps within
/// after `failures` consecutive failures: `base * 2^min(failures, 16)`,
/// capped at `max` and floored at 1 ns. `None` for other policies.
///
/// Separated from [`Backoff::wait`] so growth and capping are testable
/// without sleeping.
pub(crate) fn jitter_window(policy: BackoffPolicy, failures: u32) -> Option<Duration> {
    match policy {
        BackoffPolicy::ExpJitter { base, max } => {
            let exp = failures.min(16);
            Some(base.saturating_mul(1u32 << exp.min(31)).min(max).max(Duration::from_nanos(1)))
        }
        _ => None,
    }
}

thread_local! {
    static RNG_STATE: Cell<u64> = Cell::new(seed());
}

/// Reseed the calling thread's backoff-jitter RNG.
///
/// By default each thread seeds its jitter stream from the clock and its
/// thread id — fine for production, fatal for reproducibility. Harnesses
/// that promise deterministic runs for a fixed seed (`txfix stress --seed`,
/// `txfix chaos`) call this at worker start with a seed derived from the
/// run seed and the worker index, making the backoff jitter the worker
/// draws an explicit function of the run configuration. A zero seed is
/// remapped (xorshift has an all-zero fixed point).
pub fn seed_backoff_rng(seed: u64) {
    RNG_STATE.with(|s| s.set(seed | 1));
}

fn seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let tid = std::thread::current().id();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    use std::hash::{Hash, Hasher};
    tid.hash(&mut h);
    t.subsec_nanos().hash(&mut h);
    h.finish() | 1
}

/// Cheap thread-local xorshift; we deliberately avoid a `rand` dependency on
/// the hot abort path.
pub(crate) fn xorshift_below(bound: u64) -> u64 {
    RNG_STATE.with(|s| {
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x % bound
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn default_policy_is_exponential_with_jitter() {
        match BackoffPolicy::default() {
            BackoffPolicy::ExpJitter { base, max } => {
                assert!(base < max);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn none_policy_does_not_block() {
        let mut b = Backoff::new(BackoffPolicy::None);
        let start = Instant::now();
        for _ in 0..1000 {
            b.wait();
        }
        assert!(start.elapsed().as_millis() < 200);
        assert_eq!(b.failures(), 1000);
    }

    #[test]
    fn exp_jitter_stays_below_cap() {
        let max = Duration::from_millis(1);
        let mut b = Backoff::new(BackoffPolicy::ExpJitter { base: Duration::from_micros(1), max });
        // Even after many failures a single wait is bounded by max (plus
        // scheduling slop, so allow a generous margin).
        for _ in 0..30 {
            b.wait();
        }
        let start = Instant::now();
        b.wait();
        assert!(start.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn window_growth_is_exponential_then_capped() {
        let base = Duration::from_micros(5);
        let max = Duration::from_millis(2);
        let policy = BackoffPolicy::ExpJitter { base, max };
        // Doubles while below the cap...
        let mut prev = jitter_window(policy, 1).unwrap();
        assert_eq!(prev, Duration::from_micros(10));
        for failures in 2..=8 {
            let w = jitter_window(policy, failures).unwrap();
            assert_eq!(w, (prev * 2).min(max), "window at {failures} failures");
            prev = w;
        }
        // ...then stays exactly at the cap, no matter how many failures.
        for failures in [9, 16, 17, 1000, u32::MAX] {
            assert_eq!(jitter_window(policy, failures).unwrap(), max);
        }
        assert_eq!(jitter_window(BackoffPolicy::None, 5), None);
        assert_eq!(jitter_window(BackoffPolicy::Spin { iters: 1 }, 5), None);
    }

    #[test]
    fn jitter_stays_within_the_window() {
        // The sleep duration is drawn uniformly from [0, window); check the
        // generator over the same bound the policy would use.
        let policy = BackoffPolicy::ExpJitter {
            base: Duration::from_micros(5),
            max: Duration::from_millis(2),
        };
        for failures in 1..=20 {
            let window = jitter_window(policy, failures).unwrap().as_nanos() as u64;
            for _ in 0..50 {
                assert!(xorshift_below(window) < window);
            }
        }
    }

    #[test]
    fn reset_returns_to_base_window() {
        let mut b = Backoff::new(BackoffPolicy::None);
        for _ in 0..7 {
            b.wait();
        }
        assert_eq!(b.failures(), 7);
        b.reset();
        assert_eq!(b.failures(), 0);
        // The first wait after a reset is back in the smallest window.
        b.wait();
        assert_eq!(b.failures(), 1);
    }

    #[test]
    fn xorshift_respects_bound() {
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(xorshift_below(bound) < bound);
            }
        }
    }

    #[test]
    fn xorshift_is_not_constant() {
        let vals: Vec<u64> = (0..32).map(|_| xorshift_below(u64::MAX)).collect();
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }
}
