//! Clock-mode agreement under the deterministic scheduler: exploration
//! verdicts must be identical under GV1 and GV5.
//!
//! Under a controlled schedule GV5's `begin_stamp` falls back to the
//! shared clock (thread epochs would otherwise make replay depend on
//! which OS thread serviced which logical task), so the two modes must
//! produce byte-identical exploration outcomes — same verdict, same
//! schedule count, same failing trace.

use txfix_corpus::{scheduled_scenarios, Variant};
use txfix_explore::{explore_variant, ExploreConfig, Strategy};
use txfix_stm::ClockMode;

#[test]
fn gv1_and_gv5_agree_on_every_explored_verdict() {
    let cfg = ExploreConfig { strategy: Strategy::Dfs, budget: 3_000, ..ExploreConfig::default() };
    for scenario in scheduled_scenarios() {
        for variant in [Variant::Buggy, Variant::DevFix, Variant::TmFix] {
            txfix_stm::clock::set_mode(ClockMode::Gv1);
            let gv1 = explore_variant(scenario.as_ref(), variant, &cfg);
            txfix_stm::clock::set_mode(ClockMode::Gv5);
            let gv5 = explore_variant(scenario.as_ref(), variant, &cfg);
            txfix_stm::clock::set_mode(ClockMode::Gv1);

            assert_eq!(
                gv1.ok, gv5.ok,
                "{} [{}]: verdict diverged across clock modes",
                gv1.key, gv1.variant
            );
            assert_eq!(
                gv1.schedules, gv5.schedules,
                "{} [{}]: schedule count diverged across clock modes",
                gv1.key, gv1.variant
            );
            assert_eq!(
                gv1.failure.as_ref().map(|f| (&f.message, &f.trace, f.found_after)),
                gv5.failure.as_ref().map(|f| (&f.message, &f.trace, f.found_after)),
                "{} [{}]: failing schedule diverged across clock modes",
                gv1.key,
                gv1.variant
            );
        }
    }
}
