//! The crash-recovery checker behind `txfix crash`.
//!
//! For each WAL variant × fault schedule, the checker first runs a fixed
//! scripted workload against [`DurableKv`] in crash-point *record* mode
//! to learn the crash-point universe — every `(label, hit-count)` the
//! run passes through. Then, for every `(label, hit, image-seed)` triple
//! it reruns the workload with that crash point armed: the firing hit
//! freezes the simulated durable world, the filesystem takes a seeded
//! crash image ([`SimFs::crash`]), the world thaws, recovery replays the
//! log, and three invariants are checked against the workload oracle:
//!
//! * **durability** — every batch acknowledged before the crash has a
//!   durable commit marker;
//! * **atomicity** — every durably committed transaction recovered its
//!   complete, intact put set (all-or-nothing);
//! * **no resurrection** — no cancelled batch has a durable commit
//!   marker.
//!
//! The correct protocol ([`WalVariant::Fixed`]) must be clean at every
//! crash point; the buggy one ([`WalVariant::CommitBeforeFsync`]) must
//! be flagged at its planted window, [`AFTER_COMMIT_WRITE`]. Everything
//! is derived from the run seed through `splitmix64`, so reports are
//! bit-for-bit reproducible.

use crate::redo::{recover_and_compact, Recovery, WalVariant, AFTER_COMMIT_WRITE};
use crate::DurableKv;
use std::collections::BTreeMap;
use std::sync::Arc;
use txfix_core::json::{Json, ToJson};
use txfix_stm::chaos::{self, splitmix64, FaultPlan, InjectionPoint, Trigger};
use txfix_xcall::{crashpoint, SimFs, BLOCK_BYTES};

/// Report schema identifier.
pub const SCHEMA: &str = "txfix-crash-v1";

/// Default run seed (matches the other seeded sweeps).
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// Where the workload keeps its log inside the simulated filesystem.
pub const WAL_PATH: &str = "wal/kv.log";

/// Which concurrent-fault backdrop the workload runs against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// No injected faults: the crash is the only adversity.
    Clean,
    /// `chaos` faults at the file x-calls: transactions restart mid-
    /// protocol while crash points are armed, composing crash-during-
    /// fault with fault-during-crash-window.
    XcallFaults,
}

impl Schedule {
    /// Every schedule.
    pub const ALL: [Schedule; 2] = [Schedule::Clean, Schedule::XcallFaults];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Clean => "clean",
            Schedule::XcallFaults => "xcall_faults",
        }
    }
}

/// What to sweep.
pub struct CrashConfig {
    /// Run seed; every trigger coin and crash image derives from it.
    pub seed: u64,
    /// Crash images drawn per `(label, hit)` — more draws, more distinct
    /// flush subsets explored.
    pub images_per_point: u64,
    /// WAL variants to drive.
    pub variants: Vec<WalVariant>,
    /// Fault backdrops to compose with.
    pub schedules: Vec<Schedule>,
}

impl CrashConfig {
    /// The full matrix under `seed`: both variants, both schedules, two
    /// images per point.
    pub fn full(seed: u64) -> CrashConfig {
        CrashConfig {
            seed,
            images_per_point: 2,
            variants: WalVariant::ALL.to_vec(),
            schedules: Schedule::ALL.to_vec(),
        }
    }
}

// ---- the workload and its oracle ------------------------------------------

/// One scripted batch: `(cancel?, puts)`. Values are long enough that a
/// batch's records plus its commit marker always span several
/// `BLOCK_BYTES` blocks — otherwise a single surviving block could never
/// tear a transaction and the buggy protocol would look atomic.
const SCRIPT: &[(bool, &[(&str, &str)])] = &[
    (false, &[("alpha", "a1_kkkkkkkkkkkk"), ("beta", "b1_kkkkkkkkkkkk")]),
    (false, &[("gamma", "g2_kkkkkkkkkkkk")]),
    (true, &[("alpha", "poisoned_value_x")]),
    (
        false,
        &[("alpha", "a4_kkkkkkkkkkkk"), ("delta", "d4_kkkkkkkkkkkk"), ("beta", "b4_kkkkkkkkkkkk")],
    ),
    (false, &[("beta", "b5_kkkkkkkkkkkk")]),
    (true, &[("delta", "poisoned_value_y")]),
    (false, &[("epsilon", "e7_kkkkkkkkkkkk"), ("gamma", "g7_kkkkkkkkkkkk")]),
];

/// What the workload knows it did — the ground truth recovery is checked
/// against.
struct TxnFact {
    txid: u64,
    puts: Vec<(String, String)>,
    cancelled: bool,
    /// The batch was acknowledged (committed) *before* the crash froze
    /// the world. Acks issued after the freeze belong to a process that
    /// is already dead and claim nothing.
    acked: bool,
}

fn run_script(kv: &DurableKv) -> Vec<TxnFact> {
    SCRIPT
        .iter()
        .map(|&(cancelled, pairs)| {
            let puts: Vec<(String, String)> =
                pairs.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect();
            if cancelled {
                let txid = kv.put_many_cancelled(&puts);
                TxnFact { txid, puts, cancelled: true, acked: false }
            } else {
                match kv.put_many(&puts) {
                    Ok(txid) => {
                        TxnFact { txid, puts, cancelled: false, acked: !crashpoint::is_frozen() }
                    }
                    Err(_) => TxnFact { txid: 0, puts, cancelled: false, acked: false },
                }
            }
        })
        .collect()
}

fn execute_workload(variant: WalVariant) -> (Arc<SimFs>, Vec<TxnFact>) {
    let fs = SimFs::new();
    let kv = DurableKv::open(&fs, WAL_PATH, variant);
    let facts = run_script(&kv);
    // A terminal label so "crash at quiescence" is part of the sweep:
    // with everything synced and acknowledged, recovery must reproduce
    // the full map.
    crashpoint::crash_point("wal_quiesce");
    (fs, facts)
}

fn plan_for(schedule: Schedule, seed: u64) -> Option<FaultPlan> {
    match schedule {
        Schedule::Clean => None,
        Schedule::XcallFaults => Some(
            FaultPlan::new(splitmix64(seed ^ 0xFA01_7AB1E))
                .with(InjectionPoint::XcallFile, Trigger::EveryNth(7)),
        ),
    }
}

fn check(facts: &[TxnFact], rec: &Recovery) -> Vec<String> {
    let mut violations = Vec::new();
    let by_txid: BTreeMap<u64, &TxnFact> = facts.iter().map(|f| (f.txid, f)).collect();
    for f in facts {
        if f.cancelled && rec.committed.contains(&f.txid) {
            violations.push(format!(
                "resurrection: cancelled txn {} has a durable commit marker",
                f.txid
            ));
        }
        if !f.cancelled && f.acked && !rec.committed.contains(&f.txid) {
            violations
                .push(format!("durability: acknowledged txn {} lost its commit marker", f.txid));
        }
    }
    for &txid in &rec.committed {
        match by_txid.get(&txid) {
            None => violations.push(format!("atomicity: unknown txn {txid} committed")),
            Some(f) => {
                let got = rec.records.get(&txid).cloned().unwrap_or_default();
                if got != f.puts {
                    violations.push(format!(
                        "atomicity: committed txn {txid} is torn ({} of {} puts recovered intact)",
                        got.iter().filter(|p| f.puts.contains(p)).count(),
                        f.puts.len()
                    ));
                }
            }
        }
    }
    violations
}

fn run_armed(
    variant: WalVariant,
    plan: Option<&FaultPlan>,
    label: &str,
    hit: u64,
    seed: u64,
    image: u64,
) -> Vec<String> {
    let _chaos = plan.map(chaos::scoped);
    let session = crashpoint::arm(label, seed, Trigger::Nth(hit));
    let (fs, facts) = execute_workload(variant);
    let fired = crashpoint::fired();
    // Which unflushed blocks the kernel happened to write back before
    // this crash: a fresh coin per (seed, label, hit, image).
    let image_seed = splitmix64(
        seed ^ crashpoint::label_hash(label) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ image,
    );
    fs.crash(image_seed);
    drop(session); // thaw: recovery is post-crash code and runs unfrozen
    let file = fs.open(WAL_PATH).expect("workload always creates its log");
    let rec = recover_and_compact(&file);
    let mut violations = check(&facts, &rec);
    if fired.is_none() {
        violations.push(format!(
            "harness: crash point {label} hit {hit} did not fire (nondeterministic workload?)"
        ));
    }
    violations
}

// ---- report ---------------------------------------------------------------

/// One `(hit, image)` draw that violated an invariant.
pub struct Failure {
    /// Which hit ordinal of the label crashed.
    pub hit: u64,
    /// Which crash-image draw.
    pub image: u64,
    /// The invariant violations recovery exhibited.
    pub violations: Vec<String>,
}

/// All draws for one crash-point label.
pub struct PointOutcome {
    /// The crash-point label.
    pub label: String,
    /// Hits the label received in the record pass (= crash instants
    /// swept).
    pub hits: u64,
    /// The draws that violated an invariant (empty = clean label).
    pub failures: Vec<Failure>,
}

/// One variant × schedule cell of the sweep.
pub struct ScheduleOutcome {
    /// The fault backdrop.
    pub schedule: Schedule,
    /// Total armed crash runs executed.
    pub runs: u64,
    /// Per-label outcomes, in first-seen order.
    pub points: Vec<PointOutcome>,
    /// Labels with at least one failing draw.
    pub flagged: Vec<String>,
    /// Verdict: a fixed WAL must be clean everywhere; the buggy WAL must
    /// be flagged at [`AFTER_COMMIT_WRITE`].
    pub ok: bool,
}

/// One WAL variant's outcomes across the schedules.
pub struct VariantOutcome {
    /// The protocol driven.
    pub variant: WalVariant,
    /// Whether this variant is supposed to survive every crash point.
    pub expected_clean: bool,
    /// One outcome per schedule.
    pub schedules: Vec<ScheduleOutcome>,
    /// All schedules met their verdict.
    pub ok: bool,
}

/// The `txfix-crash-v1` report.
pub struct CrashReport {
    /// Run seed.
    pub seed: u64,
    /// Crash images drawn per `(label, hit)`.
    pub images_per_point: u64,
    /// Per-variant outcomes.
    pub variants: Vec<VariantOutcome>,
    /// Every variant met its verdict.
    pub ok: bool,
}

impl ToJson for CrashReport {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("seed", Json::int(self.seed)),
            ("block_bytes", Json::int(BLOCK_BYTES as u64)),
            ("images_per_point", Json::int(self.images_per_point)),
            (
                "variants",
                Json::list(self.variants.iter().map(|v| {
                    Json::obj([
                        ("variant", Json::str(v.variant.name())),
                        ("expected_clean", Json::Bool(v.expected_clean)),
                        (
                            "schedules",
                            Json::list(v.schedules.iter().map(|s| {
                                Json::obj([
                                    ("schedule", Json::str(s.schedule.name())),
                                    ("runs", Json::int(s.runs)),
                                    (
                                        "points",
                                        Json::list(s.points.iter().map(|p| {
                                            Json::obj([
                                                ("label", Json::str(&p.label)),
                                                ("hits", Json::int(p.hits)),
                                                (
                                                    "failures",
                                                    Json::list(p.failures.iter().map(|f| {
                                                        Json::obj([
                                                            ("hit", Json::int(f.hit)),
                                                            ("image", Json::int(f.image)),
                                                            (
                                                                "violations",
                                                                Json::strings(&f.violations),
                                                            ),
                                                        ])
                                                    })),
                                                ),
                                            ])
                                        })),
                                    ),
                                    ("flagged", Json::strings(&s.flagged)),
                                    ("ok", Json::Bool(s.ok)),
                                ])
                            })),
                        ),
                        ("ok", Json::Bool(v.ok)),
                    ])
                })),
            ),
            ("ok", Json::Bool(self.ok)),
        ])
    }
}

impl CrashReport {
    /// Human-readable table, one row per variant × schedule.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:<13} {:>6} {:>6} {:>8}  {}\n",
            "variant", "schedule", "points", "runs", "failures", "verdict"
        ));
        for v in &self.variants {
            for s in &v.schedules {
                let failures: usize = s.points.iter().map(|p| p.failures.len()).sum();
                let verdict = match (v.expected_clean, s.ok) {
                    (true, true) => "ok (clean at every crash point)".to_owned(),
                    (false, true) => format!("ok (flagged at {})", AFTER_COMMIT_WRITE),
                    (true, false) => format!("FAIL (flagged: {})", s.flagged.join(", ")),
                    (false, false) => "FAIL (planted bug not flagged)".to_owned(),
                };
                out.push_str(&format!(
                    "{:<20} {:<13} {:>6} {:>6} {:>8}  {}\n",
                    v.variant.name(),
                    s.schedule.name(),
                    s.points.len(),
                    s.runs,
                    failures,
                    verdict
                ));
            }
        }
        out.push_str(&format!("\ncrash sweep: {}", if self.ok { "ok" } else { "FAILED" }));
        out
    }
}

/// Run the crash-recovery sweep. Takes process-global crash-point and
/// chaos state; callers must not run it concurrently with other armed
/// harnesses.
pub fn run_crash_check(cfg: &CrashConfig) -> CrashReport {
    let mut variants = Vec::new();
    for &variant in &cfg.variants {
        let mut schedules = Vec::new();
        for &schedule in &cfg.schedules {
            let plan = plan_for(schedule, cfg.seed);
            // Record pass: learn the crash-point universe of this cell.
            let universe = {
                let _chaos = plan.as_ref().map(chaos::scoped);
                let session = crashpoint::record();
                let _ = execute_workload(variant);
                let u = crashpoint::recording();
                drop(session);
                u
            };
            let mut points = Vec::new();
            let mut runs = 0u64;
            for (label, hits) in &universe {
                let mut failures = Vec::new();
                for hit in 1..=*hits {
                    for image in 0..cfg.images_per_point {
                        runs += 1;
                        let violations =
                            run_armed(variant, plan.as_ref(), label, hit, cfg.seed, image);
                        if !violations.is_empty() {
                            failures.push(Failure { hit, image, violations });
                        }
                    }
                }
                points.push(PointOutcome { label: label.clone(), hits: *hits, failures });
            }
            let flagged: Vec<String> =
                points.iter().filter(|p| !p.failures.is_empty()).map(|p| p.label.clone()).collect();
            let ok = match variant {
                WalVariant::Fixed => flagged.is_empty(),
                WalVariant::CommitBeforeFsync => flagged.iter().any(|l| l == AFTER_COMMIT_WRITE),
            };
            schedules.push(ScheduleOutcome { schedule, runs, points, flagged, ok });
        }
        let ok = schedules.iter().all(|s| s.ok);
        variants.push(VariantOutcome {
            variant,
            expected_clean: variant == WalVariant::Fixed,
            schedules,
            ok,
        });
    }
    let ok = variants.iter().all(|v| v.ok);
    CrashReport { seed: cfg.seed, images_per_point: cfg.images_per_point, variants, ok }
}
