//! The static analyzer (`txfix lint`) against the dynamic one (`txfix
//! analyze`), over the whole corpus:
//!
//! - On **buggy** variants, every dynamic finding is covered by a static
//!   finding (the summaries model at least everything the recorder can
//!   see), every buggy variant is statically flagged, and every static
//!   finding carries a statically verified synthesized fix.
//! - On **developer-fix** and **TM-fix** variants, both analyzers are
//!   silent.
//! - Static findings with no dynamic counterpart are individually
//!   allowlisted with the reason for the divergence — the static side is
//!   *supposed* to see more (it models state the recorder does not
//!   instrument), but each such case must be intentional.

use txfix::analyze::{analyze_scenario, FindingKind};
use txfix::corpus::{bug_by_scenario, keys, summary_for, Variant};
use txfix::lint::{lint_summary, Hazard, LintReport};
use txfix::recipes::{analyze, HazardClass};

/// Static findings expected to have no dynamic counterpart, as
/// `"key: hazard"` display strings. Every entry must actually occur
/// (a stale entry fails the test), and every uncovered static finding
/// must be listed here.
const STATIC_ONLY: &[&str] = &[
    // A lock-AND-WAIT cycle: no lock-order inversion ever forms, so the
    // lock-graph-based dynamic detector is structurally blind to it (the
    // schedule explorer catches it as a deadlock stop instead — the
    // recorder's finding kinds simply have no wait-cycle class).
    "apache_i: wait on apache1.idle_cv holds \"apache1.timeout_mutex\" that a notifier needs",
    // Condition-variable traffic (notify/wait ordering) is not traced, so
    // the lost wakeup has no dynamic finding kind either; `txfix explore`
    // demonstrates it as a stuck schedule.
    "av_cv_partial: m91106.cv notified before m91106.items is updated (lost wakeup)",
];

/// Run the full lint loop for one scenario variant.
fn lint(key: &str, variant: Variant) -> LintReport {
    let summary = summary_for(key, variant).expect("registered summary");
    let analysis = bug_by_scenario(key).map(|bug| analyze(&bug));
    lint_summary(&summary, analysis.as_ref()).expect("summary validates")
}

/// The (class, subjects) view of a dynamic finding, for matching against
/// static hazards.
fn dynamic_shape(kind: &FindingKind) -> (HazardClass, Vec<String>) {
    match kind {
        FindingKind::DataRace { object } => (HazardClass::SharedData, vec![object.clone()]),
        FindingKind::AtomicityViolation { objects } => (HazardClass::SharedData, objects.clone()),
        FindingKind::LockOrderInversion { first, second } => {
            (HazardClass::LockCycle, vec![first.clone(), second.clone()])
        }
    }
}

fn covers(hazard: &Hazard, class: HazardClass, subjects: &[String]) -> bool {
    hazard.class() == class && hazard.subjects().iter().any(|s| subjects.contains(s))
}

#[test]
fn static_findings_cover_every_dynamic_finding_on_buggy_variants() {
    for key in keys::ALL {
        let dynamic = analyze_scenario(key, Variant::Buggy).expect("known key");
        let report = lint(key, Variant::Buggy);
        for d in &dynamic.findings {
            let (class, subjects) = dynamic_shape(&d.kind);
            assert!(
                report.findings.iter().any(|f| covers(&f.hazard, class, &subjects)),
                "{key}: dynamic finding {:?} has no static counterpart in {:?}",
                d.kind,
                report.findings.iter().map(|f| f.hazard.to_string()).collect::<Vec<_>>(),
            );
        }
    }
}

#[test]
fn every_buggy_variant_is_flagged_with_a_verified_fix() {
    for key in keys::ALL {
        let report = lint(key, Variant::Buggy);
        assert!(report.has_findings(), "{key} buggy: statically clean");
        for f in &report.findings {
            assert!(!f.fixes.is_empty(), "{key}: no recipe candidate for {}", f.hazard);
            assert!(
                f.fixes[0].verified,
                "{key}: primary recipe {} failed verification for {}: residual {:?}, introduced {:?}",
                f.fixes[0].recipe, f.hazard, f.fixes[0].residual, f.fixes[0].introduced
            );
            for v in &f.fixes {
                assert!(
                    v.verified,
                    "{key}: recipe {} failed verification for {}: residual {:?}, introduced {:?}",
                    v.recipe, f.hazard, v.residual, v.introduced
                );
            }
        }
    }
}

#[test]
fn both_analyzers_are_silent_on_fixed_variants() {
    for key in keys::ALL {
        for variant in [Variant::DevFix, Variant::TmFix] {
            let report = lint(key, variant);
            assert!(
                !report.has_findings(),
                "{key} ({variant:?}): static findings on a fixed variant: {:?}",
                report.findings.iter().map(|f| f.hazard.to_string()).collect::<Vec<_>>(),
            );
            let dynamic = analyze_scenario(key, variant).expect("known key");
            assert!(
                !dynamic.has_findings(),
                "{key} ({variant:?}): dynamic findings on a fixed variant: {:?}",
                dynamic.findings,
            );
        }
    }
}

#[test]
fn static_only_findings_are_exactly_the_allowlisted_divergences() {
    let mut unused: Vec<&str> = STATIC_ONLY.to_vec();
    for key in keys::ALL {
        let dynamic = analyze_scenario(key, Variant::Buggy).expect("known key");
        let shapes: Vec<_> = dynamic.findings.iter().map(|d| dynamic_shape(&d.kind)).collect();
        for f in lint(key, Variant::Buggy).findings {
            if shapes.iter().any(|(class, subjects)| covers(&f.hazard, *class, subjects)) {
                continue;
            }
            let entry = format!("{key}: {}", f.hazard);
            assert!(
                STATIC_ONLY.contains(&entry.as_str()),
                "unallowlisted static-only finding {entry:?}",
            );
            unused.retain(|e| *e != entry);
        }
    }
    assert!(unused.is_empty(), "stale allowlist entries: {unused:?}");
}
