//! The striped ownership-record (orec) table.
//!
//! Commit metadata — the version stamp and the commit-time writer lock —
//! used to live inline in every `VarInner`, sharing its cache line with
//! the value and the `Arc` refcount. It now lives in a process-global
//! table of cache-line-padded [`Orec`]s; a variable maps to the stripe
//! `id & (STRIPES - 1)`. This buys three things:
//!
//! - **No false sharing**: each orec owns its cache line, so one commit's
//!   stamp store never invalidates an unrelated reader's line.
//! - **Canonical lock order for free**: stripe index is a total order
//!   known before any lock is taken, so commits sort-and-lock their
//!   stripes in index order and committer/committer deadlock is
//!   structurally impossible (and visible as such to the lockdep/trace
//!   detectors).
//! - **Bounded metadata**: the table is allocated once, statically; a
//!   million TVars add no orec memory.
//!
//! The price is *false conflicts*: two variables in the same stripe share
//! a version and a commit lock, so a commit to one can abort a reader of
//! the other. With sequential variable ids the stripe map is a perfect
//! round-robin, so collisions need `STRIPES` simultaneously-hot variables
//! at creation-order distance `k·STRIPES` — rare, and always safe
//! (validation is conservative, never admissive).
//!
//! ## Determinism
//!
//! The stripe of a variable is a pure function of its creation-order id
//! (no address, no hash seed), so two runs of a deterministic schedule
//! allocate identical stripe patterns and conflict identically. A stripe's
//! version carries across scenarios within a process (it is never reset);
//! a fresh reader that observes a version above its read stamp simply
//! extends, which is the same path a concurrent commit exercises — no
//! observable divergence.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of stripes; must be a power of two. 1024 orecs × 64 B = 64 KiB,
/// resident in L2 on anything this runs on.
pub(crate) const STRIPES: usize = 1024;

/// Writer-field sentinel for non-transactional direct stores.
pub(crate) const DIRECT_WRITER: u64 = u64::MAX;

/// One ownership record, alone on its cache line.
#[repr(align(64))]
pub(crate) struct Orec {
    /// Version of the most recent committed write to any variable in the
    /// stripe (a clock stamp, per-stripe monotone).
    version: AtomicU64,
    /// Serial of the transaction currently holding this stripe for commit;
    /// `0` when unlocked, [`DIRECT_WRITER`] during a non-transactional
    /// store.
    writer: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const OREC_INIT: Orec = Orec { version: AtomicU64::new(0), writer: AtomicU64::new(0) };

static TABLE: [Orec; STRIPES] = [OREC_INIT; STRIPES];

/// The stripe index a variable id maps to.
#[inline]
pub(crate) fn stripe_index(id: u64) -> usize {
    (id as usize) & (STRIPES - 1)
}

/// The orec for variable `id`.
#[inline]
pub(crate) fn stripe_for(id: u64) -> &'static Orec {
    &TABLE[stripe_index(id)]
}

impl Orec {
    /// This orec's index in the table — the canonical lock order key.
    #[inline]
    pub(crate) fn index(&'static self) -> usize {
        // Pointer arithmetic on the static table; elements are 64 B apart.
        (self as *const Orec as usize - TABLE.as_ptr() as usize) / std::mem::size_of::<Orec>()
    }

    /// Current version stamp (Acquire).
    #[inline]
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Current writer field (Acquire); `0` means unlocked.
    #[inline]
    pub(crate) fn writer(&self) -> u64 {
        self.writer.load(Ordering::Acquire)
    }

    /// Try to acquire this stripe for commit by transaction `serial`.
    #[inline]
    pub(crate) fn try_lock(&self, serial: u64) -> bool {
        self.writer.compare_exchange(0, serial, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// Bounded-spin acquisition for eager (encounter-time) writes; succeeds
    /// immediately if `serial` already holds the stripe.
    pub(crate) fn try_lock_spinning(&self, serial: u64, spins: usize) -> bool {
        for _ in 0..spins {
            let cur = self.writer.load(Ordering::Acquire);
            if cur == serial {
                return true;
            }
            if cur == 0 && self.try_lock(serial) {
                return true;
            }
            std::hint::spin_loop();
        }
        false
    }

    /// Release the stripe without stamping (failed commit, rollback).
    #[inline]
    pub(crate) fn unlock(&self, serial: u64) {
        let prev = self.writer.swap(0, Ordering::Release);
        debug_assert_eq!(prev, serial, "orec unlocked by non-owner");
    }

    /// Stamp the stripe with (at least) `wv` — rule 2 of the clock safety
    /// contract: the stored version is `max(wv, old + 1)`, so versions on
    /// one stripe never repeat even when commits share a global stamp
    /// (GV5). Caller must hold the stripe. Returns the stored version.
    #[inline]
    pub(crate) fn stamp_release(&self, wv: u64) -> u64 {
        // The load needs no ordering: we hold the lock, so the version is
        // stable under us.
        let old = self.version.load(Ordering::Relaxed);
        let v = wv.max(old + 1);
        self.version.store(v, Ordering::Release);
        v
    }

    /// Whether the stripe's version still matches `version` and the stripe
    /// is either unlocked or held by `self_serial`.
    #[inline]
    pub(crate) fn validate(&self, version: u64, self_serial: u64) -> bool {
        let w = self.writer.load(Ordering::Acquire);
        if w != 0 && w != self_serial {
            return false;
        }
        self.version.load(Ordering::Acquire) == version
    }
}

impl std::fmt::Debug for Orec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orec")
            .field("version", &self.version.load(Ordering::Relaxed))
            .field("writer", &self.writer.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_map_is_round_robin_and_replay_invariant() {
        assert!(STRIPES.is_power_of_two());
        // Sequential ids spread perfectly; ids STRIPES apart collide.
        assert_ne!(stripe_index(1), stripe_index(2));
        assert_eq!(stripe_index(7), stripe_index(7 + STRIPES as u64));
        // Pure function of the id: no per-run state.
        assert_eq!(stripe_index(41), stripe_index(41));
    }

    #[test]
    fn orecs_are_cache_line_sized_and_indexable() {
        assert_eq!(std::mem::size_of::<Orec>(), 64);
        assert_eq!(std::mem::align_of::<Orec>(), 64);
        for id in [0u64, 1, 513, u64::from(u32::MAX)] {
            assert_eq!(stripe_for(id).index(), stripe_index(id));
        }
    }

    #[test]
    fn stamp_never_repeats_on_a_stripe() {
        // A private Orec (not from the table) so the test is isolated.
        let o = Orec { version: AtomicU64::new(10), writer: AtomicU64::new(0) };
        assert!(o.try_lock(1));
        // Shared-stamp case (GV5): wv at or below the current version still
        // moves the stripe strictly forward.
        assert_eq!(o.stamp_release(10), 11);
        assert_eq!(o.stamp_release(5), 12);
        // Unique-stamp case (GV1): wv above the version is stored verbatim.
        assert_eq!(o.stamp_release(100), 100);
        o.unlock(1);
    }

    #[test]
    fn lock_excludes_and_validate_sees_owner() {
        let o = Orec { version: AtomicU64::new(3), writer: AtomicU64::new(0) };
        assert!(o.try_lock(9));
        assert!(!o.try_lock(10));
        assert!(o.try_lock_spinning(9, 4), "owner re-acquires");
        assert!(!o.try_lock_spinning(10, 4));
        assert!(o.validate(3, 9), "owner validates through own lock");
        assert!(!o.validate(3, 10), "stranger sees busy stripe");
        o.unlock(9);
        assert!(o.validate(3, 10));
        assert!(!o.validate(4, 10));
    }
}
