//! Integration tests for the graceful-degradation ladder: a transaction
//! that keeps failing must escalate optimistic → stronger backoff →
//! serial/irrevocable within its attempt budget, commit exactly once, and
//! account for every rung promotion in `TxnReport` and the obs registry.
//!
//! The "always fails" pressure comes from the chaos layer (deterministic
//! triggers), so the tests are interleaving-independent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use txfix_stm::chaos::{self, FaultPlan, InjectionPoint, Trigger};
use txfix_stm::{obs, EscalationPolicy, EscalationRung, TVar, Txn};

/// Chaos plans are process-global; serialize the tests that install one.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn always_conflicting_txn_reaches_serial_within_budget_and_commits_once() {
    let _g = gate();
    obs::enable();
    let site = obs::intern("escalation_serial_probe");
    let before = obs::snapshot();

    // Every non-serial begin fails: only the serial (irrevocable) rung can
    // commit, so the ladder is the *only* way out.
    let plan = FaultPlan::new(40).with(InjectionPoint::TxnBegin, Trigger::EveryNth(1));
    let _armed = chaos::scoped(&plan);

    let v = TVar::new(0u32);
    let body_runs = AtomicU64::new(0);
    let (_, report) = Txn::build()
        .site("escalation_serial_probe")
        .attempt_budget(6)
        .try_run(|t| {
            body_runs.fetch_add(1, Ordering::SeqCst);
            v.modify(t, |x| x + 1)
        })
        .expect("the serial rung must commit");

    assert_eq!(report.attempts, 7, "6 failed optimistic/backoff attempts, then serial");
    assert_eq!(report.committed_rung, EscalationRung::Serial);
    assert!(report.committed_irrevocably, "the serial rung runs irrevocably");
    assert_eq!(report.escalations, 2, "optimistic -> stronger backoff -> serial");
    assert_eq!(v.load(), 1, "commits exactly once");
    assert_eq!(body_runs.load(Ordering::SeqCst), 1, "injected begins never reach the body");

    let delta = obs::snapshot().delta(&before);
    let probe = delta.site(site).expect("site registered");
    assert_eq!(probe.commits, 1);
    assert_eq!(probe.escalations, 2);
    assert_eq!(probe.irrevocable, 1);
    assert_eq!(probe.faults_injected, 6);
}

#[test]
fn deadline_jumps_straight_to_the_serial_rung() {
    let _g = gate();
    chaos::clear();
    let v = TVar::new(0u32);
    let (_, report) =
        Txn::build().deadline(Duration::ZERO).try_run(|t| v.modify(t, |x| x + 1)).expect("commits");
    assert_eq!(report.attempts, 1, "an expired deadline serializes immediately");
    assert_eq!(report.committed_rung, EscalationRung::Serial);
    assert!(report.committed_irrevocably);
    assert_eq!(report.escalations, 2, "both promotions are taken (and recorded) at once");
    assert_eq!(v.load(), 1);
}

#[test]
fn intermittent_conflicts_commit_on_the_stronger_backoff_rung() {
    let _g = gate();
    // Reads always fail, but the body stops reading after three attempts:
    // the commit lands after the backoff promotion, before serial.
    let plan = FaultPlan::new(41).with(InjectionPoint::TxnRead, Trigger::EveryNth(1));
    let _armed = chaos::scoped(&plan);
    let v = TVar::new(7u32);
    let w = TVar::new(0u32);
    let attempts_seen = AtomicU64::new(0);
    let (_, report) = Txn::build()
        .escalation(EscalationPolicy { backoff_after: 2, serial_after: 100, deadline: None })
        .try_run(|t| {
            if attempts_seen.fetch_add(1, Ordering::SeqCst) < 3 {
                let _ = v.read(t)?;
            }
            // Write-only (`modify` would read and draw another injection).
            w.write(t, 42)
        })
        .expect("commits");
    assert_eq!(report.attempts, 4);
    assert_eq!(report.committed_rung, EscalationRung::StrongerBackoff);
    assert!(!report.committed_irrevocably);
    assert_eq!(report.escalations, 1);
    assert_eq!(w.load(), 42);
}

#[test]
fn clean_transactions_stay_on_the_optimistic_rung() {
    let _g = gate();
    chaos::clear();
    let v = TVar::new(0u32);
    let (_, report) =
        Txn::build().attempt_budget(4).try_run(|t| v.modify(t, |x| x + 1)).expect("commits");
    assert_eq!(report.attempts, 1);
    assert_eq!(report.committed_rung, EscalationRung::Optimistic);
    assert_eq!(report.escalations, 0);
    assert!(!report.committed_irrevocably);
}

#[test]
fn rungs_are_ordered_and_named() {
    assert!(EscalationRung::Optimistic < EscalationRung::StrongerBackoff);
    assert!(EscalationRung::StrongerBackoff < EscalationRung::Serial);
    assert_eq!(EscalationRung::Optimistic.name(), "optimistic");
    assert_eq!(EscalationRung::StrongerBackoff.name(), "stronger_backoff");
    assert_eq!(EscalationRung::Serial.name(), "serial");
    assert_eq!(EscalationRung::Serial.next(), EscalationRung::Serial, "top rung is absorbing");
}
