//! CS2: Apache-I (§5.4.2) — saturated listener/worker handoff, developer
//! fix vs. Recipe 3. Paper shape: TM fix ~15–22% slower under stress.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use txfix_apps::apache::{run_apache1, Apache1Config, Apache1Variant};

fn cfg(variant: Apache1Variant) -> Apache1Config {
    Apache1Config {
        variant,
        workers: 4,
        connections: 400,
        process_cost: Duration::from_micros(20),
        ..Default::default()
    }
}

fn bench_handoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("apache_i");
    g.sample_size(10);

    g.bench_function("developer_fix_unlock_before_wait", |b| {
        b.iter(|| {
            let out = run_apache1(&cfg(Apache1Variant::DevFix));
            assert_eq!(out.completed, 400);
        })
    });

    g.bench_function("recipe3_revocable_lock_retry", |b| {
        b.iter(|| {
            let out = run_apache1(&cfg(Apache1Variant::TmFix));
            assert_eq!(out.completed, 400);
        })
    });

    g.finish();
}

criterion_group!(benches, bench_handoff);
criterion_main!(benches);
