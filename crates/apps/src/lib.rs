//! # txfix-apps: miniatures of the paper's three buggy applications
//!
//! The study applies TM to bugs in Mozilla, Apache httpd and MySQL. Those
//! codebases do not translate to Rust, so this crate rebuilds the *buggy
//! subsystems themselves* — the handful of locks, queues, buffers and
//! protocols whose interaction constitutes each bug — together with the
//! developers' fixes and the TM fixes, behind variant-selectable APIs:
//!
//! - [`spidermonkey`]: the object ownership (title-locking) protocol,
//!   `setSlotLock`, and a SunSpider-like interpreter workload (Mozilla-I,
//!   §5.4.1);
//! - [`apache`]: the listener/worker timeout-queue handoff (Apache-I,
//!   §5.4.2) and the buffered log writer (Apache-II, §5.4.3);
//! - [`mysql`]: `lock_open`, table storage and the binlog with the
//!   delete-all/insert ordering violation (MySQL-I, §5.4.4).
//!
//! Each subsystem exposes buggy / developer-fix / TM-fix variants with
//! identical workloads, so the corpus can demonstrate the bugs and the
//! benchmark harness can reproduce Table 4's relative performance.

#![warn(missing_docs)]

pub mod apache;
pub mod mysql;
pub mod spidermonkey;
