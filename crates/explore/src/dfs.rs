//! Bounded exhaustive DFS over schedules with sleep-set partial-order
//! reduction.
//!
//! The exploration is *stateless*: every schedule re-executes the
//! scenario from scratch, with a picker that forces the choices recorded
//! on the DFS stack for the shared prefix and extends the stack at the
//! frontier. Scenario builds are deterministic, so the candidate sets at
//! each depth are reproducible across re-executions — the stack's record
//! of "what was runnable here" stays valid.
//!
//! Sleep sets (Godefroid): after fully exploring candidate `t` at a node,
//! `t` is put to sleep for the node's remaining candidates; a sleeping
//! transition is inherited by child nodes until an executed operation is
//! *dependent* with it (same resource, at least one write — see
//! [`SyncOp::dependent`]). A node whose every candidate is asleep proves
//! all its continuations are permutations of already-explored schedules
//! and is pruned without running to completion. This is sound for
//! reachability of local states (invariant violations and deadlocks)
//! because independent operations commute.

use crate::runner::{run_schedule, RunResult, ScheduleOutcome};
use std::sync::{Arc, Mutex};
use txfix_corpus::{ScheduledRun, Variant};
use txfix_stm::sched::{self, Pick, SyncOp};

/// One node on the DFS stack.
#[derive(Clone, Debug)]
struct Frame {
    /// Runnable candidates observed at this node, sorted by slot.
    candidates: Vec<(usize, SyncOp)>,
    /// Index (into `candidates`) currently being explored.
    chosen: usize,
    /// Candidates whose subtrees are fully explored (asleep for the
    /// node's remaining exploration).
    explored: Vec<(usize, SyncOp)>,
    /// Transitions inherited asleep from the path above.
    sleep: Vec<(usize, SyncOp)>,
}

impl Frame {
    fn asleep(&self, slot: usize) -> bool {
        self.sleep.iter().chain(self.explored.iter()).any(|&(s, _)| s == slot)
    }

    /// The sleep set a child reached by executing `self.chosen` inherits:
    /// everything asleep here (inherited or already explored) that the
    /// chosen operation does not depend on.
    fn child_sleep(&self) -> Vec<(usize, SyncOp)> {
        let (_, chosen_op) = self.candidates[self.chosen];
        self.sleep
            .iter()
            .chain(self.explored.iter())
            .copied()
            .filter(|&(_, op)| !op.dependent(chosen_op))
            .collect()
    }

    fn first_awake(&self) -> Option<usize> {
        (0..self.candidates.len()).find(|&i| !self.asleep(self.candidates[i].0))
    }
}

/// Aggregate result of a DFS exploration.
#[derive(Debug)]
pub struct DfsOutcome {
    /// Schedules run to a verdict (pass/bug), excluding pruned ones.
    pub schedules: u64,
    /// Schedules abandoned by sleep-set pruning.
    pub pruned: u64,
    /// Schedules that hit the step bound (inconclusive).
    pub step_limited: u64,
    /// The first failing schedule, if one was found.
    pub failure: Option<ScheduleOutcome>,
    /// True if the state space was exhausted within budget.
    pub exhausted: bool,
}

/// Explore schedules of `scenario`/`variant` depth-first, stopping at the
/// first bug or after `budget` executed schedules.
pub fn explore_dfs(
    build: &dyn Fn(Variant) -> ScheduledRun,
    variant: Variant,
    budget: u64,
    max_steps: u64,
) -> DfsOutcome {
    let stack: Arc<Mutex<Vec<Frame>>> = Arc::new(Mutex::new(Vec::new()));
    let mut out =
        DfsOutcome { schedules: 0, pruned: 0, step_limited: 0, failure: None, exhausted: false };

    loop {
        if out.schedules + out.pruned >= budget {
            return out;
        }

        // One re-execution: force the stack's prefix, extend at new depths.
        let picker: sched::Picker = {
            let stack = stack.clone();
            let mut depth = 0usize;
            Box::new(move |cands| {
                let mut st = stack.lock().unwrap();
                let pick = if depth < st.len() {
                    // Forced prefix. Scenario builds are deterministic, so
                    // the candidates must match what we recorded; a
                    // mismatch would silently corrupt the exploration, so
                    // check it hard.
                    debug_assert_eq!(
                        st[depth].candidates, cands,
                        "non-deterministic scenario: candidate set diverged on re-execution"
                    );
                    Pick::Choose(st[depth].chosen)
                } else {
                    let sleep = match st.last() {
                        Some(parent) => parent.child_sleep(),
                        None => Vec::new(),
                    };
                    let frame = Frame {
                        candidates: cands.to_vec(),
                        chosen: 0,
                        explored: Vec::new(),
                        sleep,
                    };
                    match frame.first_awake() {
                        Some(i) => {
                            let mut frame = frame;
                            frame.chosen = i;
                            st.push(frame);
                            Pick::Choose(i)
                        }
                        None => Pick::Prune,
                    }
                };
                depth += 1;
                pick
            })
        };

        let outcome = run_schedule(build(variant), max_steps, picker);
        match outcome.result {
            RunResult::Pruned => out.pruned += 1,
            RunResult::StepLimit => {
                out.step_limited += 1;
                out.schedules += 1;
            }
            RunResult::Pass => out.schedules += 1,
            RunResult::Bug(_) => {
                out.schedules += 1;
                out.failure = Some(outcome);
                return out;
            }
        }

        // Backtrack: retire the just-explored choice at the deepest frame
        // and advance to its next awake sibling, popping exhausted frames.
        let mut st = stack.lock().unwrap();
        loop {
            let Some(frame) = st.last_mut() else {
                out.exhausted = true;
                return out;
            };
            let retired = frame.candidates[frame.chosen];
            frame.explored.push(retired);
            if let Some(i) = frame.first_awake() {
                frame.chosen = i;
                break;
            }
            st.pop();
        }
    }
}
