//! The canary mutation sweep behind `txfix canary`.
//!
//! A *canary* is one seeded, feature-gated bug planted at a real hazard
//! site inside the runtime substrates (see [`txfix_stm::canary`] for the
//! registry and the sites). This module arms one canary at a time and
//! runs it through the five detection layers the repository ships —
//!
//! - **analyze**: the trace recorder + replay passes
//!   ([`txfix_analyze::analyze_scenario`]), including the detector-
//!   integrity passes in [`txfix_analyze::integrity`];
//! - **lint**: the static critical-section analyzer — honestly *blind* to
//!   every runtime canary (it models the source summaries, not the
//!   mutated binary), recorded as `probed: false` so the matrix never
//!   overstates static coverage;
//! - **explore**: deterministic schedule exploration
//!   ([`txfix_explore`]), which must find a failing schedule when the
//!   mutation can only strike under a particular interleaving;
//! - **chaos**: deterministic single-threaded micro-probes with value
//!   oracles, for mutations whose damage is visible without concurrency;
//! - **crash**: the crash-recovery checker
//!   ([`txfix_wal::checker::run_crash_check`]), for mutations whose
//!   damage is only visible in what survives a simulated crash — a
//!   skipped fsync leaves every pre-crash observation intact.
//!
//! Each canary carries an expected [`HazardClass`]; a layer *catches* the
//! canary when it reports a failure of that class. The sweep asserts
//! every canary is caught by at least one layer and emits the
//! `txfix-canary-v1` capability matrix (`CANARY_stm.json`).
//!
//! Every probe is deterministic by construction — single-armed canaries
//! fire on every site visit (`Trigger::EveryNth(1)`), explore probes use
//! DFS, chaos probes are single-threaded, crash probes derive every
//! trigger coin and crash image from the seed — so the matrix is
//! bit-for-bit reproducible across seeded runs (CI compares two).

use txfix_core::json::{Json, ToJson};
use txfix_core::HazardClass;
use txfix_corpus::{scheduled_by_key, Outcome, ScheduledRun, Variant};
use txfix_explore::{explore_build, explore_variant, variant_short, ExploreConfig, Strategy};
use txfix_stm::canary::{self, Canary};
use txfix_stm::chaos::Trigger;
use txfix_stm::{atomic, TVar, Txn, TxnError};
use txfix_txlock::TxMutex;
use txfix_xcall::{SimFs, SimPipe, XFile, XPipe};

use std::sync::Arc;

/// What one detection layer saw for one armed canary.
#[derive(Clone, Debug)]
pub struct LayerProbe {
    /// Layer name: `analyze`, `lint`, `explore`, `chaos` or `crash`.
    pub layer: &'static str,
    /// Whether the layer was exercised against this canary at all. A
    /// `false` records a *structural* blind spot (with the reason in
    /// `evidence`), not a failed probe.
    pub probed: bool,
    /// Whether the layer reported a failure of the expected class.
    pub caught: bool,
    /// The failure message that caught it, or why it was missed/skipped.
    pub evidence: String,
}

/// One canary's complete trip through the detection layers.
#[derive(Clone, Debug)]
pub struct CanaryOutcome {
    /// Which planted bug this is.
    pub canary: Canary,
    /// The hazard class a detector is expected to file it under.
    pub expected: HazardClass,
    /// One probe per layer, in `analyze, lint, explore, chaos, crash`
    /// order.
    pub probes: Vec<LayerProbe>,
}

impl CanaryOutcome {
    /// Whether at least one layer caught the canary.
    pub fn caught(&self) -> bool {
        self.probes.iter().any(|p| p.caught)
    }

    /// The layers that caught it, in probe order.
    pub fn caught_by(&self) -> Vec<&'static str> {
        self.probes.iter().filter(|p| p.caught).map(|p| p.layer).collect()
    }
}

/// The full sweep: the detection-capability matrix.
#[derive(Clone, Debug)]
pub struct CanaryReport {
    /// Seed the canary triggers were armed with.
    pub seed: u64,
    /// One outcome per swept canary, in [`Canary::ALL`] order.
    pub outcomes: Vec<CanaryOutcome>,
}

impl CanaryReport {
    /// The sweep's verdict: every canary caught by at least one layer.
    pub fn ok(&self) -> bool {
        self.outcomes.iter().all(CanaryOutcome::caught)
    }
}

/// Stable snake-case name for a hazard class (matrix vocabulary).
pub fn class_name(c: HazardClass) -> &'static str {
    match c {
        HazardClass::LockCycle => "lock_cycle",
        HazardClass::WaitCycle => "wait_cycle",
        HazardClass::SharedData => "shared_data",
        HazardClass::LostWakeup => "lost_wakeup",
    }
}

/// The hazard class each canary's detection must be filed under.
pub fn expected_class(c: Canary) -> HazardClass {
    match c {
        Canary::StmSkipWriteback
        | Canary::StmSkipValidation
        | Canary::StmStaleStamp
        | Canary::XcallSkipUndo
        | Canary::XcallDoubleCompensate
        | Canary::WalSkipFsync
        | Canary::SchedOutOfTurn => HazardClass::SharedData,
        Canary::StmNotifyReorder => HazardClass::LostWakeup,
        Canary::LockDropRelease | Canary::LockSkipLockdep | Canary::LockReacquireInRevoke => {
            HazardClass::LockCycle
        }
    }
}

/// Map a dynamic failure message to the hazard class it evidences.
///
/// Deadlock stops and lock-discipline panics are lock-order hazards;
/// wakeup-related messages are lost wakeups; everything else (lost
/// updates, value-oracle misses, turnstile breaches) is unserialized
/// shared data.
fn classify(msg: &str) -> HazardClass {
    if msg.starts_with("deadlock:")
        || msg.contains("released by non-owner")
        || msg.contains("acquired twice")
        || msg.contains("lock-order")
    {
        HazardClass::LockCycle
    } else if msg.contains("wakeup") {
        HazardClass::LostWakeup
    } else {
        HazardClass::SharedData
    }
}

fn not_probed(layer: &'static str, why: &str) -> LayerProbe {
    LayerProbe { layer, probed: false, caught: false, evidence: why.to_string() }
}

fn lint_blind() -> LayerProbe {
    not_probed(
        "lint",
        "static summaries model the source, not the mutated binary; runtime canaries are \
         invisible to the lint layer by design",
    )
}

fn crash_blind() -> LayerProbe {
    not_probed(
        "crash",
        "the crash checker audits the durable WAL image; this site damages volatile state \
         that no crash image records",
    )
}

/// Exploration budget for the canary probes. The probe scenarios are
/// tiny (two threads, a handful of yield points); DFS exhausts them far
/// below this bound.
const EXPLORE_BUDGET: u64 = 2_000;

fn explore_cfg(seed: u64) -> ExploreConfig {
    ExploreConfig { seed, strategy: Strategy::Dfs, budget: EXPLORE_BUDGET, ..Default::default() }
}

/// Run a corpus scenario variant under `analyze` with the canary armed.
fn analyze_probe(c: Canary, seed: u64, key: &str, variant: Variant) -> LayerProbe {
    let expected = expected_class(c);
    let _armed = canary::scoped(c, seed, Trigger::EveryNth(1));
    let report = txfix_analyze::analyze_scenario(key, variant)
        .unwrap_or_else(|| panic!("canary probe references unknown scenario {key}"));
    let hit = report.findings.iter().find(|f| f.kind.class() == expected);
    match hit {
        Some(f) => LayerProbe {
            layer: "analyze",
            probed: true,
            caught: true,
            evidence: f.explanation.clone(),
        },
        None => LayerProbe {
            layer: "analyze",
            probed: true,
            caught: false,
            evidence: format!(
                "{key}/{}: trace replay reports no {} finding — the mutated run leaves a \
                 well-formed trace",
                variant_short(variant),
                class_name(expected)
            ),
        },
    }
}

/// Run a scheduled corpus scenario variant under `explore` with the
/// canary armed.
fn explore_probe(c: Canary, seed: u64, key: &str, variant: Variant) -> LayerProbe {
    let expected = expected_class(c);
    let scenario = scheduled_by_key(key)
        .unwrap_or_else(|| panic!("canary probe references unknown scheduled scenario {key}"));
    let _armed = canary::scoped(c, seed, Trigger::EveryNth(1));
    let entry = explore_variant(scenario.as_ref(), variant, &explore_cfg(seed));
    match entry.failure {
        Some(f) if classify(&f.message) == expected => {
            LayerProbe { layer: "explore", probed: true, caught: true, evidence: f.message }
        }
        Some(f) => LayerProbe {
            layer: "explore",
            probed: true,
            caught: false,
            evidence: format!(
                "failure found but of the wrong class (expected {}): {}",
                class_name(expected),
                f.message
            ),
        },
        None => LayerProbe {
            layer: "explore",
            probed: true,
            caught: false,
            evidence: format!(
                "{key}/{}: every explored schedule survives ({} schedules, exhausted: {}) — \
                 the mutation does not perturb execution",
                variant_short(variant),
                entry.schedules,
                entry.exhausted
            ),
        },
    }
}

/// The ad-hoc revocation-window probe for
/// [`Canary::LockReacquireInRevoke`]: two transactions take two revocable
/// locks in opposite orders, so some schedule forms a cycle, the deadlock
/// detector victimizes one, and its revocation runs the buggy
/// release/re-acquire window. If a waiter slips into the window, the
/// victim's final release panics — which exploration reports as the bug.
fn revoke_probe(c: Canary, seed: u64) -> LayerProbe {
    let expected = expected_class(c);
    let build = |_v: Variant| -> ScheduledRun {
        let a = Arc::new(TxMutex::new("canary.revoke.a", 0u32));
        let b = Arc::new(TxMutex::new("canary.revoke.b", 0u32));
        let body =
            |first: Arc<TxMutex<u32>>, second: Arc<TxMutex<u32>>| -> Box<dyn FnOnce() + Send> {
                Box::new(move || {
                    atomic(move |txn| {
                        first.lock_tx(txn)?;
                        second.lock_tx(txn)?;
                        Ok(())
                    });
                })
            };
        ScheduledRun {
            threads: vec![body(a.clone(), b.clone()), body(b, a)],
            // The bug manifests as a lock-discipline panic, not as a
            // state violation.
            check: Box::new(|| Outcome::Correct),
        }
    };
    let _armed = canary::scoped(c, seed, Trigger::EveryNth(1));
    let ex = explore_build(&build, Variant::Buggy, &explore_cfg(seed));
    let failure = ex.failure.and_then(|o| match o.result {
        txfix_explore::runner::RunResult::Bug(m) => Some(m),
        _ => None,
    });
    match failure {
        Some(msg) if classify(&msg) == expected => {
            LayerProbe { layer: "explore", probed: true, caught: true, evidence: msg }
        }
        Some(msg) => LayerProbe {
            layer: "explore",
            probed: true,
            caught: false,
            evidence: format!(
                "failure found but of the wrong class (expected {}): {msg}",
                class_name(expected)
            ),
        },
        None => LayerProbe {
            layer: "explore",
            probed: true,
            caught: false,
            evidence: format!(
                "opposite-order lock_tx probe survives every explored schedule ({} schedules)",
                ex.schedules
            ),
        },
    }
}

/// Run a deterministic single-threaded micro-probe with the canary
/// armed. The probe returns `Some(violation)` when its value oracle is
/// broken.
fn chaos_probe(
    c: Canary,
    seed: u64,
    probe: fn() -> Option<String>,
    description: &str,
) -> LayerProbe {
    let _armed = canary::scoped(c, seed, Trigger::EveryNth(1));
    match probe() {
        Some(violation) => {
            LayerProbe { layer: "chaos", probed: true, caught: true, evidence: violation }
        }
        None => LayerProbe {
            layer: "chaos",
            probed: true,
            caught: false,
            evidence: format!("{description}: all invariants held"),
        },
    }
}

/// Run the crash-recovery checker over the *fixed* WAL protocol with the
/// canary armed. The fixed protocol is clean at every crash point by
/// construction, so any flagged point is the canary's doing — a
/// pretend-success fsync turns "records durable before the marker" into
/// a lie the seeded crash images expose.
fn crash_probe(c: Canary, seed: u64) -> LayerProbe {
    use txfix_wal::checker::{run_crash_check, CrashConfig, Schedule};
    use txfix_wal::WalVariant;
    let _armed = canary::scoped(c, seed, Trigger::EveryNth(1));
    let report = run_crash_check(&CrashConfig {
        seed,
        images_per_point: 2,
        variants: vec![WalVariant::Fixed],
        schedules: vec![Schedule::Clean],
    });
    let mut flagged = Vec::new();
    let mut evidence = None;
    for v in &report.variants {
        for s in &v.schedules {
            flagged.extend(s.flagged.iter().cloned());
            evidence = evidence.or_else(|| {
                s.points
                    .iter()
                    .flat_map(|p| &p.failures)
                    .flat_map(|f| &f.violations)
                    .next()
                    .cloned()
            });
        }
    }
    match evidence {
        Some(violation) => LayerProbe {
            layer: "crash",
            probed: true,
            caught: true,
            evidence: format!("fixed WAL flagged at {}: {violation}", flagged.join(", ")),
        },
        None => LayerProbe {
            layer: "crash",
            probed: true,
            caught: false,
            evidence: "the fixed WAL recovered cleanly at every crash point — the mutated \
                       fsync path left nothing for a crash to lose"
                .to_string(),
        },
    }
}

/// Value oracle: ten committed transactional increments must be visible.
fn oracle_counter() -> Option<String> {
    let v = TVar::new(0u64);
    for _ in 0..10 {
        atomic(|txn| v.modify(txn, |x| x + 1));
    }
    let got = v.load();
    (got != 10).then(|| {
        format!(
            "value oracle: 10 committed transactional increments left the TVar at {got}, \
             expected 10 — write-back was silently dropped"
        )
    })
}

/// Compensation oracle: a cancelled transaction must leave no deferred
/// file operations (nor its ownership stamp) behind.
fn oracle_xfile_undo() -> Option<String> {
    let fs = SimFs::new();
    let xf = XFile::open_or_create(&fs, "canary.log");
    let res = Txn::build().try_run(|txn| {
        xf.x_append(txn, b"payload")?;
        txn.cancel::<()>()
    });
    assert!(
        matches!(res, Err(TxnError::Cancelled)),
        "probe transaction must cancel terminally, got {res:?}"
    );
    xf.pending_snapshot().map(|(_, ops)| {
        format!(
            "compensation oracle: a cancelled transaction left {ops} deferred op(s) and its \
             ownership stamp on the x-file — the undo hook never ran"
        )
    })
}

/// Compensation oracle: aborting a 1-byte compensated read from a 2-byte
/// pipe must restore exactly 2 buffered bytes.
fn oracle_pipe_unread() -> Option<String> {
    let pipe = SimPipe::new(16);
    pipe.write(b"ab").expect("probe pipe has capacity");
    let xp = XPipe::new(pipe.clone());
    let res = Txn::build().try_run(|txn| {
        let got = xp.x_try_read(txn, 1)?;
        assert_eq!(got.as_deref(), Some(&b"a"[..]), "probe read must consume one byte");
        txn.cancel::<()>()
    });
    assert!(
        matches!(res, Err(TxnError::Cancelled)),
        "probe transaction must cancel terminally, got {res:?}"
    );
    let buffered = pipe.buffered();
    (buffered != 2).then(|| {
        format!(
            "compensation oracle: the pipe holds {buffered} bytes after the abort, expected 2 \
             — the consumed byte was pushed back more than once"
        )
    })
}

/// Arm `c` and run it through all four detection layers.
pub fn run_canary(c: Canary, seed: u64) -> CanaryOutcome {
    let expected = expected_class(c);
    let probes = match c {
        Canary::StmSkipWriteback => vec![
            // The documented analyze gap: a skipped write-back leaves a
            // perfectly well-formed trace (committed transactions are
            // mutually serialized), so trace replay cannot see it. The
            // probe stays in the matrix to pin that blindness.
            analyze_probe(c, seed, "av_stats_race", Variant::TmFix),
            lint_blind(),
            explore_probe(c, seed, "av_stats_race", Variant::TmFix),
            chaos_probe(c, seed, oracle_counter, "10 increments then read back"),
            crash_blind(),
        ],
        Canary::StmSkipValidation | Canary::StmStaleStamp => vec![
            not_probed(
                "analyze",
                "only manifests when a racing schedule crosses the commit window; the single \
                 uncontrolled interleaving the recorder captures is not reliably that one",
            ),
            lint_blind(),
            explore_probe(c, seed, "av_stats_race", Variant::TmFix),
            not_probed(
                "chaos",
                "invisible single-threaded: validation only matters under \
                 contention",
            ),
            crash_blind(),
        ],
        Canary::StmNotifyReorder => vec![
            analyze_probe(c, seed, "av_stats_race", Variant::TmFix),
            lint_blind(),
            not_probed(
                "explore",
                "a TL2 commit is one step at scheduler granularity; the reorder is internal \
                 to it and produces no schedulable interleaving",
            ),
            not_probed(
                "chaos",
                "no blocked waiter exists single-threaded, so the early wakeup \
                 has nobody to strand",
            ),
            crash_blind(),
        ],
        Canary::LockDropRelease => vec![
            not_probed(
                "analyze",
                "the leaked lock would hang the uncontrolled scenario \
                 threads; only the deterministic scheduler can observe the hang safely",
            ),
            lint_blind(),
            explore_probe(c, seed, "dl_local_lock_order", Variant::DevFix),
            not_probed("chaos", "the leaked lock would hang the probe thread"),
            crash_blind(),
        ],
        Canary::LockSkipLockdep => vec![
            analyze_probe(c, seed, "dl_local_lock_order", Variant::DevFix),
            lint_blind(),
            // Documented explore gap: the mutation changes only what the
            // validator records, never the execution, so no schedule can
            // fail.
            explore_probe(c, seed, "dl_local_lock_order", Variant::DevFix),
            not_probed("chaos", "execution is unchanged; there is no invariant to violate"),
            crash_blind(),
        ],
        Canary::LockReacquireInRevoke => vec![
            not_probed(
                "analyze",
                "needs a revocation forced at a precise point; the \
                 uncontrolled run cannot steer a waiter into the window",
            ),
            lint_blind(),
            revoke_probe(c, seed),
            not_probed("chaos", "needs a second thread waiting inside the revocation window"),
            crash_blind(),
        ],
        Canary::XcallSkipUndo => vec![
            not_probed("analyze", "deferred-op buffers are not traced objects"),
            lint_blind(),
            not_probed("explore", "no scheduled scenario cancels an x-call transaction"),
            chaos_probe(c, seed, oracle_xfile_undo, "cancelled x-append then audit pending ops"),
            crash_blind(),
        ],
        Canary::XcallDoubleCompensate => vec![
            not_probed("analyze", "pipe buffers are not traced objects"),
            lint_blind(),
            not_probed("explore", "no scheduled scenario aborts a compensated read"),
            chaos_probe(
                c,
                seed,
                oracle_pipe_unread,
                "cancelled 1-byte read from a 2-byte pipe then audit",
            ),
            crash_blind(),
        ],
        Canary::SchedOutOfTurn => vec![
            not_probed("analyze", "the trace recorder never sees the scheduler's decision log"),
            lint_blind(),
            explore_probe(c, seed, "av_stats_race", Variant::TmFix),
            not_probed("chaos", "only scheduled runs have a turnstile to breach"),
            crash_blind(),
        ],
        Canary::WalSkipFsync => vec![
            not_probed("analyze", "deferred sync application is not a traced object"),
            lint_blind(),
            not_probed("explore", "no scheduled scenario drives the WAL durability path"),
            not_probed(
                "chaos",
                "a pretend-success fsync is invisible to any pre-crash observation: reads, \
                 value oracles and compensation audits all see the intact page cache",
            ),
            crash_probe(c, seed),
        ],
    };
    CanaryOutcome { canary: c, expected, probes }
}

/// Sweep `selected` canaries (in the given order) with `seed`.
pub fn run_canaries(selected: &[Canary], seed: u64) -> CanaryReport {
    CanaryReport { seed, outcomes: selected.iter().map(|&c| run_canary(c, seed)).collect() }
}

impl ToJson for LayerProbe {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("layer", Json::str(self.layer)),
            ("probed", Json::Bool(self.probed)),
            ("caught", Json::Bool(self.caught)),
            ("evidence", Json::str(self.evidence.clone())),
        ])
    }
}

impl ToJson for CanaryOutcome {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("canary", Json::str(self.canary.name())),
            ("site", Json::str(self.canary.site())),
            ("expected_class", Json::str(class_name(self.expected))),
            ("caught", Json::Bool(self.caught())),
            ("caught_by", Json::strings(self.caught_by())),
            ("layers", Json::list(self.probes.iter().map(ToJson::to_json_value))),
        ])
    }
}

impl ToJson for CanaryReport {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("schema", Json::str("txfix-canary-v1")),
            ("seed", Json::int(self.seed)),
            ("ok", Json::Bool(self.ok())),
            ("canaries", Json::list(self.outcomes.iter().map(ToJson::to_json_value))),
        ])
    }
}
