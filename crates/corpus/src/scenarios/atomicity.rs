//! The 11 implemented atomicity-violation reproductions.

use super::{BugScenario, Outcome, Variant};
use crate::dataset::keys;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;
use txfix_apps::apache::{
    buffered_log::{make_record, RECORD_LEN},
    validate_log, BuggyBufferedLog, LockedBufferedLog, LogWriter, TmBufferedLog,
};
use txfix_apps::mysql::{
    consistent_with_binlog, run_mysql_workload, MiniDb, MysqlVariant, MysqlWorkload,
};
use txfix_core::wrap_unprotected_atomic;
use txfix_stm::{atomic, trace::TracedCell, TVar};
use txfix_tmsync::{guard, SerialDomain, SerialMutex};
use txfix_txlock::{LockCondvar, TxMutex};
use txfix_xcall::{SimFs, XFile};

pub(super) fn scenarios() -> Vec<Box<dyn BugScenario>> {
    vec![
        Box::new(WrongLock),
        Box::new(RefcountRace),
        Box::new(LazyInit),
        Box::new(CvPartial),
        Box::new(Scoreboard),
        Box::new(ApacheII),
        Box::new(PairInvariant),
        Box::new(LogSequence),
        Box::new(StatsRace),
        Box::new(MySqlI),
        Box::new(AdhocRetry),
    ]
}

/// Run `f` on two threads sharing a barrier (pins the racy window).
fn two_threads(f: impl Fn(usize, &Barrier) + Sync) {
    let barrier = Barrier::new(2);
    std::thread::scope(|s| {
        for t in 0..2 {
            let f = &f;
            let barrier = &barrier;
            s.spawn(move || f(t, barrier));
        }
    });
}

// ---------------------------------------------------------------------------
// Mozilla#133773/#18025: the earlier fix grabbed the wrong lock.
// ---------------------------------------------------------------------------

struct WrongLock;

impl BugScenario for WrongLock {
    fn key(&self) -> &'static str {
        keys::AV_WRONG_LOCK
    }

    fn describe(&self) -> &'static str {
        "one code path guards the cache counter with the wrong lock, so it races with the \
         correctly locked path; Recipe 4 wraps only the mis-locked region"
    }

    fn run(&self, variant: Variant) -> Outcome {
        match variant {
            Variant::Buggy => {
                let right = TxMutex::new("m133773.cache_lock", ());
                let wrong = TxMutex::new("m133773.unrelated_lock", ());
                let counter = TracedCell::new("m133773.cache_count", 0);
                two_threads(|t, barrier| {
                    // Both paths believe they are in a critical section, but
                    // they hold *different* locks, so the read-modify-write
                    // below still interleaves.
                    let _g1;
                    let _g2;
                    if t == 0 {
                        _g1 = right.lock().expect("no cycle");
                    } else {
                        _g2 = wrong.lock().expect("no cycle");
                    }
                    let v = counter.load();
                    barrier.wait();
                    counter.store(v + 1);
                });
                if counter.peek() != 2 {
                    Outcome::BugObserved(format!(
                        "lost update: counter is {} after two locked increments",
                        counter.peek()
                    ))
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                let right = TxMutex::new("m133773d.cache_lock", 0u64);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for _ in 0..100 {
                        *right.lock().expect("single lock") += 1;
                    }
                });
                if *right.lock().unwrap() == 200 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("lost update under the corrected lock".into())
                }
            }
            Variant::TmFix => {
                // Recipe 4: the correctly locked path is untouched; only the
                // mis-locked region becomes an atomic section serialized
                // against the domain's lock critical sections.
                let domain = SerialDomain::new();
                let counter = Arc::new(SerialMutex::new(domain.clone(), 0u64));
                two_threads(|t, barrier| {
                    barrier.wait();
                    for _ in 0..100 {
                        if t == 0 {
                            *counter.lock() += 1; // the already-correct path
                        } else {
                            wrap_unprotected_atomic(&domain, |_txn| {
                                *counter.lock() += 1;
                                Ok(())
                            });
                        }
                    }
                });
                if *counter.lock() == 200 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("recipe 4 section interleaved with lock path".into())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mozilla: reference count checked then updated non-atomically.
// ---------------------------------------------------------------------------

struct RefcountRace;

impl BugScenario for RefcountRace {
    fn key(&self) -> &'static str {
        keys::AV_REFCOUNT_RACE
    }

    fn describe(&self) -> &'static str {
        "two releases read the same reference count and both store count-1, leaking the \
         object; Recipe 2 wraps the check-and-decrement in one atomic block"
    }

    fn run(&self, variant: Variant) -> Outcome {
        match variant {
            Variant::Buggy => {
                let refcount = TracedCell::new("m.refcount", 2);
                two_threads(|_t, barrier| {
                    let v = refcount.load();
                    barrier.wait();
                    refcount.store(v - 1);
                });
                let end = refcount.peek();
                if end != 0 {
                    Outcome::BugObserved(format!(
                        "refcount is {end} after both holders released (object leaked)"
                    ))
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                let refcount = TracedCell::new("m.refcount", 2);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    refcount.fetch_sub(1);
                });
                if refcount.peek() == 0 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("atomic decrement lost".into())
                }
            }
            Variant::TmFix => {
                let refcount = TVar::new(2u64);
                let freed = TVar::new(false);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    atomic(|txn| {
                        let v = refcount.read(txn)?;
                        refcount.write(txn, v - 1)?;
                        if v - 1 == 0 {
                            freed.write(txn, true)?;
                        }
                        Ok(())
                    });
                });
                if refcount.load() == 0 && freed.load() {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved(format!(
                        "refcount {} / freed {} after transactional releases",
                        refcount.load(),
                        freed.load()
                    ))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mozilla: lazily initialized service constructed twice.
// ---------------------------------------------------------------------------

struct LazyInit;

impl BugScenario for LazyInit {
    fn key(&self) -> &'static str {
        keys::AV_LAZY_INIT
    }

    fn describe(&self) -> &'static str {
        "check-then-initialize without atomicity constructs the singleton twice"
    }

    fn run(&self, variant: Variant) -> Outcome {
        let init_count = AtomicU64::new(0);
        match variant {
            Variant::Buggy => {
                let initialized = TracedCell::new("m52271.initialized", 0);
                two_threads(|_t, barrier| {
                    let seen = initialized.load() != 0;
                    barrier.wait();
                    if !seen {
                        init_count.fetch_add(1, Ordering::SeqCst);
                        initialized.store(1);
                    }
                });
            }
            Variant::DevFix => {
                let state = TxMutex::new("m52271d.init", false);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    let mut g = state.lock().expect("single lock");
                    if !*g {
                        init_count.fetch_add(1, Ordering::SeqCst);
                        *g = true;
                    }
                });
            }
            Variant::TmFix => {
                let initialized = TVar::new(false);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    let should_init = atomic(|txn| {
                        if initialized.read(txn)? {
                            Ok(false)
                        } else {
                            initialized.write(txn, true)?;
                            Ok(true)
                        }
                    });
                    if should_init {
                        init_count.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        }
        match init_count.load(Ordering::SeqCst) {
            1 => Outcome::Correct,
            n => Outcome::BugObserved(format!("service initialized {n} times")),
        }
    }
}

// ---------------------------------------------------------------------------
// Mozilla: partially synchronized producer loses the consumer's wakeup.
// ---------------------------------------------------------------------------

struct CvPartial;

impl BugScenario for CvPartial {
    fn key(&self) -> &'static str {
        keys::AV_CV_PARTIAL
    }

    fn describe(&self) -> &'static str {
        "a producer updates the item count outside the consumer's monitor, so the signal \
         can fire before the state it announces exists (lost wakeup)"
    }

    fn run(&self, variant: Variant) -> Outcome {
        const ITEMS: u64 = 20;
        match variant {
            Variant::Buggy => {
                let monitor = Arc::new(TxMutex::new("m91106.monitor", 0u64));
                let cv = Arc::new(LockCondvar::named("m91106.cv"));
                let rescued = AtomicU64::new(0);
                std::thread::scope(|s| {
                    let (m, c) = (monitor.clone(), cv.clone());
                    let rescued = &rescued;
                    s.spawn(move || {
                        let mut consumed = 0u64;
                        while consumed < ITEMS {
                            let mut g = m.lock().expect("monitor");
                            let mut waited_out = false;
                            while *g == 0 {
                                let (g2, outcome) = c
                                    .wait_timeout(g, Duration::from_millis(30))
                                    .expect("monitor reacquire");
                                g = g2;
                                if outcome == txfix_txlock::WaitOutcome::TimedOut && *g > 0 {
                                    waited_out = true;
                                    break;
                                }
                            }
                            if waited_out {
                                rescued.fetch_add(1, Ordering::SeqCst);
                            }
                            consumed += *g;
                            *g = 0;
                        }
                    });
                    let (m, c) = (monitor.clone(), cv.clone());
                    s.spawn(move || {
                        for _ in 0..ITEMS {
                            // Bug: signal first, publish the item *after*,
                            // outside the monitor.
                            c.notify_all();
                            std::thread::sleep(Duration::from_millis(2));
                            let mut g = m.lock().expect("monitor");
                            *g += 1;
                            drop(g);
                            std::thread::sleep(Duration::from_millis(3));
                        }
                    });
                });
                if rescued.load(Ordering::SeqCst) > 0 {
                    Outcome::BugObserved(format!(
                        "{} wakeups lost (consumer progressed only via timeout rescue)",
                        rescued.load(Ordering::SeqCst)
                    ))
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                let monitor = Arc::new(TxMutex::new("m91106d.monitor", 0u64));
                let cv = Arc::new(LockCondvar::new());
                let consumed_total = AtomicU64::new(0);
                std::thread::scope(|s| {
                    let (m, c) = (monitor.clone(), cv.clone());
                    let consumed_total = &consumed_total;
                    s.spawn(move || {
                        let mut consumed = 0u64;
                        while consumed < ITEMS {
                            let mut g = m.lock().expect("monitor");
                            while *g == 0 {
                                let (g2, _) = c
                                    .wait_timeout(g, Duration::from_secs(5))
                                    .expect("monitor reacquire");
                                g = g2;
                            }
                            consumed += *g;
                            *g = 0;
                        }
                        consumed_total.store(consumed, Ordering::SeqCst);
                    });
                    let (m, c) = (monitor.clone(), cv.clone());
                    s.spawn(move || {
                        for _ in 0..ITEMS {
                            let mut g = m.lock().expect("monitor");
                            *g += 1;
                            drop(g);
                            c.notify_all();
                        }
                    });
                });
                if consumed_total.load(Ordering::SeqCst) == ITEMS {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("consumer missed items under the dev fix".into())
                }
            }
            Variant::TmFix => {
                // Recipe 2 with retry: the predicate and the data live in
                // the same transaction, so wakeups cannot be lost.
                let count = TVar::new(0u64);
                let consumed_total = AtomicU64::new(0);
                std::thread::scope(|s| {
                    let count2 = count.clone();
                    let consumed_total = &consumed_total;
                    s.spawn(move || {
                        let mut consumed = 0u64;
                        while consumed < ITEMS {
                            consumed += atomic(|txn| {
                                let n = count2.read(txn)?;
                                guard(txn, n > 0)?;
                                count2.write(txn, 0)?;
                                Ok(n)
                            });
                        }
                        consumed_total.store(consumed, Ordering::SeqCst);
                    });
                    let count3 = count.clone();
                    s.spawn(move || {
                        for _ in 0..ITEMS {
                            atomic(|txn| count3.modify(txn, |n| n + 1));
                        }
                    });
                });
                if consumed_total.load(Ordering::SeqCst) == ITEMS {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("transactional consumer missed items".into())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Apache#25520: scoreboard slot claimed by two workers.
// ---------------------------------------------------------------------------

struct Scoreboard;

impl BugScenario for Scoreboard {
    fn key(&self) -> &'static str {
        keys::AV_SCOREBOARD
    }

    fn describe(&self) -> &'static str {
        "two workers scan the scoreboard, find the same free slot and both claim it"
    }

    fn run(&self, variant: Variant) -> Outcome {
        const SLOTS: usize = 4;
        match variant {
            Variant::Buggy => {
                let slots: Vec<TracedCell> =
                    (0..SLOTS).map(|_| TracedCell::new("a25520.slot", 0)).collect();
                two_threads(|t, barrier| {
                    let free = slots.iter().position(|s| s.load() == 0);
                    barrier.wait();
                    if let Some(i) = free {
                        slots[i].store(t as u64 + 1);
                    }
                });
                let claimed: Vec<u64> =
                    slots.iter().map(|s| s.peek()).filter(|&v| v != 0).collect();
                if claimed.len() < 2 {
                    Outcome::BugObserved(format!(
                        "both workers claimed the same scoreboard slot ({claimed:?})"
                    ))
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                let slots = TxMutex::new("a25520d.scoreboard", vec![0u64; SLOTS]);
                two_threads(|t, barrier| {
                    barrier.wait();
                    let mut g = slots.lock().expect("scoreboard lock");
                    if let Some(i) = g.iter().position(|&s| s == 0) {
                        g[i] = t as u64 + 1;
                    }
                });
                let g = slots.lock().unwrap();
                if g.iter().filter(|&&v| v != 0).count() == 2 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("slot lost under the scoreboard lock".into())
                }
            }
            Variant::TmFix => {
                let slots = TVar::new(vec![0u64; SLOTS]);
                two_threads(|t, barrier| {
                    barrier.wait();
                    atomic(|txn| {
                        let mut v = slots.read(txn)?;
                        if let Some(i) = v.iter().position(|&s| s == 0) {
                            v[i] = t as u64 + 1;
                        }
                        slots.write(txn, v)
                    });
                });
                if slots.load().iter().filter(|&&v| v != 0).count() == 2 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("slot lost under the atomic scan".into())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Apache-II: the buffered log writer (paper §5.4.3).
// ---------------------------------------------------------------------------

struct ApacheII;

impl BugScenario for ApacheII {
    fn key(&self) -> &'static str {
        keys::APACHE_II
    }

    fn describe(&self) -> &'static str {
        "unsynchronized buffer+cursor in ap_buffered_log_writer garbles the access log; \
         Recipe 2 wraps the function body with the flush as a deferred x-call"
    }

    fn run(&self, variant: Variant) -> Outcome {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 250;
        let fs = SimFs::new();
        let log: Box<dyn LogWriter> = match variant {
            Variant::Buggy => {
                Box::new(BuggyBufferedLog::new(&fs, "access.log", 24 * RECORD_LEN, 3_000))
            }
            Variant::DevFix => Box::new(LockedBufferedLog::new(&fs, "access.log", 24 * RECORD_LEN)),
            Variant::TmFix => Box::new(TmBufferedLog::new(&fs, "access.log", 24 * RECORD_LEN)),
        };
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let log = &log;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        log.write_record(&make_record(t, i));
                    }
                });
            }
        });
        log.flush();
        let v = validate_log(&log.file().read_all());
        if v.is_violation(THREADS * PER_THREAD as usize) {
            Outcome::BugObserved(format!(
                "log corrupted: {} valid records (expected {}), {} garbled spans",
                v.valid_records,
                THREADS * PER_THREAD as usize,
                v.corrupted_spans
            ))
        } else {
            Outcome::Correct
        }
    }
}

// ---------------------------------------------------------------------------
// Apache: two-field invariant updated as independent stores.
// ---------------------------------------------------------------------------

struct PairInvariant;

impl BugScenario for PairInvariant {
    fn key(&self) -> &'static str {
        keys::AV_PAIR_INVARIANT
    }

    fn describe(&self) -> &'static str {
        "request and byte counters must move together; a reader between the two stores \
         sees them disagree"
    }

    fn run(&self, variant: Variant) -> Outcome {
        match variant {
            Variant::Buggy => {
                let a = TracedCell::new("a31017.requests", 0);
                let b = TracedCell::new("a31017.bytes", 0);
                let torn = AtomicU64::new(0);
                two_threads(|t, barrier| {
                    if t == 0 {
                        a.store(1);
                        barrier.wait(); // reader looks here
                        barrier.wait();
                        b.store(1);
                    } else {
                        barrier.wait();
                        if a.load() != b.load() {
                            torn.fetch_add(1, Ordering::SeqCst);
                        }
                        barrier.wait();
                    }
                });
                if torn.load(Ordering::SeqCst) > 0 {
                    Outcome::BugObserved("reader observed the counters out of sync".into())
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                let pair = TxMutex::new("a31017d.counters", (0u64, 0u64));
                two_threads(|t, barrier| {
                    barrier.wait();
                    for _ in 0..200 {
                        if t == 0 {
                            let mut g = pair.lock().expect("counter lock");
                            g.0 += 1;
                            g.1 += 1;
                        } else {
                            let g = pair.lock().expect("counter lock");
                            assert_eq!(g.0, g.1);
                        }
                    }
                });
                Outcome::Correct
            }
            Variant::TmFix => {
                let a = TVar::new(0u64);
                let b = TVar::new(0u64);
                let torn = AtomicU64::new(0);
                two_threads(|t, barrier| {
                    barrier.wait();
                    for _ in 0..200 {
                        if t == 0 {
                            atomic(|txn| {
                                a.modify(txn, |v| v + 1)?;
                                b.modify(txn, |v| v + 1)
                            });
                        } else {
                            let (x, y) = atomic(|txn| Ok((a.read(txn)?, b.read(txn)?)));
                            if x != y {
                                torn.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                });
                if torn.load(Ordering::SeqCst) == 0 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("transactional reader saw a torn pair".into())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Apache: log sequence number advanced outside the writer's lock.
// ---------------------------------------------------------------------------

struct LogSequence;

impl BugScenario for LogSequence {
    fn key(&self) -> &'static str {
        keys::AV_LOG_SEQUENCE
    }

    fn describe(&self) -> &'static str {
        "the sequence number is read, the record written, then the counter stored — two \
         writers emit the same sequence number"
    }

    fn run(&self, variant: Variant) -> Outcome {
        let fs = SimFs::new();
        match variant {
            Variant::Buggy => {
                let file = fs.open_or_create("seq.log");
                let seq = TracedCell::new("a29850.seq", 1);
                let log_stamp = TracedCell::new("a29850.log", 0);
                two_threads(|_t, barrier| {
                    let n = seq.load();
                    barrier.wait();
                    file.append(format!("seq={n};").as_bytes());
                    log_stamp.store(log_stamp.peek() + 1);
                    seq.store(n + 1);
                });
                let data = String::from_utf8(file.read_all()).expect("utf8 log");
                let entries: Vec<&str> = data.split(';').filter(|s| !s.is_empty()).collect();
                let mut seqs: Vec<&str> = entries.clone();
                seqs.dedup();
                if seqs.len() < entries.len() {
                    Outcome::BugObserved(format!("duplicate sequence numbers in log: {data}"))
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                let file = fs.open_or_create("seq.log");
                let state = TxMutex::new("a29850d.seq", 1u64);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for _ in 0..50 {
                        let mut g = state.lock().expect("seq lock");
                        file.append(format!("seq={};", *g).as_bytes());
                        *g += 1;
                    }
                });
                check_unique_seqs(&file.read_all(), 100)
            }
            Variant::TmFix => {
                let xfile = XFile::open_or_create(&fs, "seq.log");
                let seq = TVar::new(1u64);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for _ in 0..50 {
                        atomic(|txn| {
                            let n = seq.read(txn)?;
                            xfile.x_append(txn, format!("seq={n};").as_bytes())?;
                            seq.write(txn, n + 1)
                        });
                    }
                });
                check_unique_seqs(&xfile.file().read_all(), 100)
            }
        }
    }
}

fn check_unique_seqs(data: &[u8], expected: usize) -> Outcome {
    let text = String::from_utf8(data.to_vec()).expect("utf8 log");
    let mut seqs: Vec<&str> = text.split(';').filter(|s| !s.is_empty()).collect();
    let total = seqs.len();
    seqs.sort_unstable();
    seqs.dedup();
    if seqs.len() == total && total == expected {
        Outcome::Correct
    } else {
        Outcome::BugObserved(format!(
            "expected {expected} unique sequence records, found {total} ({} unique)",
            seqs.len()
        ))
    }
}

// ---------------------------------------------------------------------------
// MySQL: statistics counters updated with plain loads/stores.
// ---------------------------------------------------------------------------

struct StatsRace;

impl BugScenario for StatsRace {
    fn key(&self) -> &'static str {
        keys::AV_STATS_RACE
    }

    fn describe(&self) -> &'static str {
        "handler statistics are bumped with read-modify-write sequences that interleave"
    }

    fn run(&self, variant: Variant) -> Outcome {
        match variant {
            Variant::Buggy => {
                let queries = TracedCell::new("my12228.queries", 0);
                two_threads(|_t, barrier| {
                    let v = queries.load();
                    barrier.wait();
                    queries.store(v + 1);
                });
                if queries.peek() != 2 {
                    Outcome::BugObserved(format!(
                        "statistics lost an update ({} of 2)",
                        queries.peek()
                    ))
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                let stats = TxMutex::new("my12228d.stats", (0u64, 0u64));
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for i in 0..100u64 {
                        let mut g = stats.lock().expect("stats lock");
                        g.0 += 1;
                        g.1 += i;
                    }
                });
                let g = stats.lock().unwrap();
                if g.0 == 200 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("lost statistics update under lock".into())
                }
            }
            Variant::TmFix => {
                let queries = TVar::new(0u64);
                let rows = TVar::new(0u64);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for i in 0..100u64 {
                        atomic(|txn| {
                            queries.modify(txn, |v| v + 1)?;
                            rows.modify(txn, |v| v + i)
                        });
                    }
                });
                if queries.load() == 200 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("lost transactional statistics update".into())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// MySQL-I: delete-all vs. binlog ordering (paper §5.4.4).
// ---------------------------------------------------------------------------

struct MySqlI;

impl BugScenario for MySqlI {
    fn key(&self) -> &'static str {
        keys::MYSQL_I
    }

    fn describe(&self) -> &'static str {
        "the optimized DELETE releases lock_open before logging, so binlog replay diverges \
         from the server's tables; Recipe 4 wraps delete+log in a serialized atomic section"
    }

    fn run(&self, variant: Variant) -> Outcome {
        let v = match variant {
            Variant::Buggy => MysqlVariant::Buggy,
            Variant::DevFix => MysqlVariant::DevFix,
            Variant::TmFix => MysqlVariant::TmRecipe4,
        };

        // Deterministic reproduction of Figure 5's interleaving: an INSERT
        // executes (and logs itself) exactly where the optimized DELETE has
        // released the table's logical lock but not yet written its binlog
        // record.
        let db = MiniDb::new(v, 1);
        db.insert(0, 1, 10);
        db.insert(0, 2, 20);
        // The INSERT runs on its own thread, gated into the hook's window,
        // so the interleaving is concurrent (the trace analyzers see the
        // unordered accesses) yet fully deterministic.
        let gate = AtomicU64::new(0);
        std::thread::scope(|s| {
            let (db, gate) = (&db, &gate);
            s.spawn(move || {
                while gate.load(Ordering::Acquire) == 0 {
                    std::hint::spin_loop();
                }
                db.insert(0, 99, 99);
                gate.store(2, Ordering::Release);
            });
            db.delete_all_hooked(0, || {
                gate.store(1, Ordering::Release);
                while gate.load(Ordering::Acquire) != 2 {
                    std::hint::spin_loop();
                }
            });
        });
        if !consistent_with_binlog(&db) {
            return Outcome::BugObserved("binlog replay diverges from the server's tables".into());
        }

        // And a concurrent stress pass for the fixed variants.
        let db = MiniDb::new(v, 2).with_racy_window(5_000);
        let w = MysqlWorkload {
            insert_threads: 4,
            inserts_per_thread: 150,
            delete_threads: 2,
            deletes_per_thread: 30,
            tables: 2,
        };
        let out = run_mysql_workload(&db, &w);
        if out.replay_divergence {
            Outcome::BugObserved("binlog replay diverged under stress".into())
        } else {
            Outcome::Correct
        }
    }
}

// ---------------------------------------------------------------------------
// MySQL#16582: the hand-rolled conflict-check/abort/redo mechanism.
// ---------------------------------------------------------------------------

struct AdhocRetry;

impl BugScenario for AdhocRetry {
    fn key(&self) -> &'static str {
        keys::AV_ADHOC_RETRY
    }

    fn describe(&self) -> &'static str {
        "a do-it-yourself optimistic-concurrency scheme validates with a plain load and \
         loses updates; a memory transaction replaces the whole machinery"
    }

    fn run(&self, variant: Variant) -> Outcome {
        match variant {
            Variant::Buggy => {
                // The DIY scheme: read version, compute, re-check version
                // with a plain load, then write value and version — the
                // validate-then-write is not atomic.
                let version = TracedCell::new("my16582.version", 0);
                let value = TracedCell::new("my16582.value", 0);
                two_threads(|_t, barrier| {
                    let v0 = version.load();
                    let cur = value.load();
                    barrier.wait();
                    if version.load() == v0 {
                        value.store(cur + 1);
                        version.store(v0 + 1);
                    }
                });
                if value.peek() != 2 {
                    Outcome::BugObserved(format!(
                        "DIY validation admitted a lost update (value {} of 2)",
                        value.peek()
                    ))
                } else {
                    Outcome::Correct
                }
            }
            Variant::DevFix => {
                // What a *correct* hand-rolled scheme takes: a CAS retry
                // loop over a packed (version, value) word.
                // version in high 32, value in low 32
                let word = TracedCell::new("my16582d.word", 0);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for _ in 0..100 {
                        loop {
                            let w = word.load_sync();
                            let (ver, val) = (w >> 32, w & 0xffff_ffff);
                            let next = ((ver + 1) << 32) | (val + 1);
                            if word.compare_exchange(w, next).is_ok() {
                                break;
                            }
                        }
                    }
                });
                if word.peek() & 0xffff_ffff == 200 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("CAS loop lost updates".into())
                }
            }
            Variant::TmFix => {
                // The whole mechanism collapses to an atomic block.
                let value = TVar::new(0u64);
                two_threads(|_t, barrier| {
                    barrier.wait();
                    for _ in 0..100 {
                        atomic(|txn| value.modify(txn, |v| v + 1));
                    }
                });
                if value.load() == 200 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("transactional counter lost updates".into())
                }
            }
        }
    }
}
