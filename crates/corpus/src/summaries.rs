//! Critical-section summaries for the 18 executable scenarios.
//!
//! Each scenario registers one [`ScenarioSummary`] per variant — a
//! declarative model of its lock acquisition order, atomic regions,
//! shared-location accesses and condition-variable traffic — for the
//! static passes in `txfix-static` (`txfix lint`). The buggy-variant
//! models use the **same lock and location names the trace recorder
//! emits**, so static findings can be matched subject-by-subject against
//! the dynamic analyzer's reports; scenarios the recorder does not
//! instrument (the §5.4 application miniatures and the condition-variable
//! scenario) use free names in the same style.
//!
//! The models are deliberately minimal: they keep exactly the structure
//! the bug needs (the nesting that closes a cycle, the dropped lockset,
//! the early notify) and the structure the fixes restore, and nothing
//! else. A model is *not* a trace — the passes consider every
//! interleaving of the modeled paths.

use crate::scenarios::Variant;
use txfix_static::{Path, ScenarioSummary, Summary};

/// The registered summary for scenario `key`'s `variant`, or `None` for
/// an unknown key. Every key in [`crate::keys::ALL`] has all three
/// variants.
pub fn summary_for(key: &str, variant: Variant) -> Option<ScenarioSummary> {
    let v = variant;
    Some(match key {
        crate::keys::MOZILLA_I => mozilla_i(v),
        crate::keys::DL_CACHE_ATOMTABLE => dl_cache_atomtable(v),
        crate::keys::DL_THREE_LOCK_CYCLE => dl_three_lock_cycle(v),
        crate::keys::DL_INTENTIONAL_RACE => dl_intentional_race(v),
        crate::keys::APACHE_I => apache_i(v),
        crate::keys::DL_LOCAL_LOCK_ORDER => dl_local_lock_order(v),
        crate::keys::DL_MYSQL_TABLE_PAIR => dl_mysql_table_pair(v),
        crate::keys::AV_WRONG_LOCK => av_wrong_lock(v),
        crate::keys::AV_REFCOUNT_RACE => av_refcount_race(v),
        crate::keys::AV_LAZY_INIT => av_lazy_init(v),
        crate::keys::AV_CV_PARTIAL => av_cv_partial(v),
        crate::keys::AV_SCOREBOARD => av_scoreboard(v),
        crate::keys::APACHE_II => apache_ii(v),
        crate::keys::AV_PAIR_INVARIANT => av_pair_invariant(v),
        crate::keys::AV_LOG_SEQUENCE => av_log_sequence(v),
        crate::keys::AV_STATS_RACE => av_stats_race(v),
        crate::keys::MYSQL_I => mysql_i(v),
        crate::keys::AV_ADHOC_RETRY => av_adhoc_retry(v),
        _ => return None,
    })
}

fn label(v: Variant) -> &'static str {
    match v {
        Variant::Buggy => "buggy",
        Variant::DevFix => "dev",
        Variant::TmFix => "tm",
    }
}

/// Mozilla-I (§5.4.1): `js_SetSlotThreadSafe` and `ClaimTitle` nest the
/// title and scope locks in opposite orders.
fn mozilla_i(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::MOZILLA_I, label(v));
    match v {
        Variant::Buggy => s
            .path(
                Path::new("set_slot")
                    .acquire("moz1.title")
                    .acquire("moz1.scope")
                    .write("moz1.slot")
                    .release("moz1.scope")
                    .release("moz1.title"),
            )
            .path(
                Path::new("claim_title")
                    .acquire("moz1.scope")
                    .acquire("moz1.title")
                    .write("moz1.slot")
                    .release("moz1.title")
                    .release("moz1.scope"),
            ),
        // The real fix is a release-and-retry dance; the model keeps its
        // essence — both paths end up nesting in one order.
        Variant::DevFix => s
            .path(
                Path::new("set_slot")
                    .acquire("moz1.title")
                    .acquire("moz1.scope")
                    .write("moz1.slot")
                    .release("moz1.scope")
                    .release("moz1.title"),
            )
            .path(
                Path::new("claim_title")
                    .acquire("moz1.title")
                    .acquire("moz1.scope")
                    .write("moz1.slot")
                    .release("moz1.scope")
                    .release("moz1.title"),
            ),
        Variant::TmFix => s
            .path(Path::new("set_slot").atomic_begin().write("moz1.slot").atomic_end())
            .path(Path::new("claim_title").atomic_begin().write("moz1.slot").atomic_end()),
    }
    .build()
}

/// Mozilla#54743: the cache and atom-table locks close an AB-BA cycle.
fn dl_cache_atomtable(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::DL_CACHE_ATOMTABLE, label(v));
    match v {
        Variant::Buggy => s
            .path(
                Path::new("cache_flush")
                    .acquire("m54743.cache")
                    .write("m54743.cache_data")
                    .acquire("m54743.atomtable")
                    .write("m54743.atom_data")
                    .release("m54743.atomtable")
                    .release("m54743.cache"),
            )
            .path(
                Path::new("atom_sweep")
                    .acquire("m54743.atomtable")
                    .write("m54743.atom_data")
                    .acquire("m54743.cache")
                    .write("m54743.cache_data")
                    .release("m54743.cache")
                    .release("m54743.atomtable"),
            ),
        Variant::DevFix => s
            .path(
                Path::new("cache_flush")
                    .acquire("m54743.cache")
                    .write("m54743.cache_data")
                    .acquire("m54743.atomtable")
                    .write("m54743.atom_data")
                    .release("m54743.atomtable")
                    .release("m54743.cache"),
            )
            .path(
                Path::new("atom_sweep")
                    .acquire("m54743.cache")
                    .acquire("m54743.atomtable")
                    .write("m54743.atom_data")
                    .write("m54743.cache_data")
                    .release("m54743.atomtable")
                    .release("m54743.cache"),
            ),
        Variant::TmFix => s
            .path(
                Path::new("cache_flush")
                    .atomic_begin()
                    .write("m54743.cache_data")
                    .write("m54743.atom_data")
                    .atomic_end(),
            )
            .path(
                Path::new("atom_sweep")
                    .atomic_begin()
                    .write("m54743.atom_data")
                    .write("m54743.cache_data")
                    .atomic_end(),
            ),
    }
    .build()
}

/// Mozilla#60303: three locks acquired in a rotating order.
fn dl_three_lock_cycle(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::DL_THREE_LOCK_CYCLE, label(v));
    let nested = |name: &str, first: &str, d1: &str, second: &str, d2: &str| {
        Path::new(name)
            .acquire(first)
            .write(d1)
            .acquire(second)
            .write(d2)
            .release(second)
            .release(first)
    };
    match v {
        Variant::Buggy => s
            .path(nested("t0", "m60303.l0", "m60303.d0", "m60303.l1", "m60303.d1"))
            .path(nested("t1", "m60303.l1", "m60303.d1", "m60303.l2", "m60303.d2"))
            .path(nested("t2", "m60303.l2", "m60303.d2", "m60303.l0", "m60303.d0")),
        // The developers imposed a global l0 < l1 < l2 order.
        Variant::DevFix => s
            .path(nested("t0", "m60303.l0", "m60303.d0", "m60303.l1", "m60303.d1"))
            .path(nested("t1", "m60303.l1", "m60303.d1", "m60303.l2", "m60303.d2"))
            .path(nested("t2", "m60303.l0", "m60303.d0", "m60303.l2", "m60303.d2")),
        Variant::TmFix => s
            .path(Path::new("t0").atomic_begin().write("m60303.d0").write("m60303.d1").atomic_end())
            .path(Path::new("t1").atomic_begin().write("m60303.d1").write("m60303.d2").atomic_end())
            .path(
                Path::new("t2").atomic_begin().write("m60303.d2").write("m60303.d0").atomic_end(),
            ),
    }
    .build()
}

/// Mozilla#123930: a state/observer lock inversion the developers fixed
/// by *dropping* the nested acquisition — introducing a deliberate,
/// benign race.
fn dl_intentional_race(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::DL_INTENTIONAL_RACE, label(v));
    match v {
        Variant::Buggy => s
            .path(
                Path::new("mutator")
                    .acquire("m123930.state")
                    .write("m123930.state_data")
                    .acquire("m123930.observer")
                    .write("m123930.observer_count")
                    .release("m123930.observer")
                    .release("m123930.state"),
            )
            .path(
                Path::new("notifier")
                    .acquire("m123930.observer")
                    .write("m123930.observer_count")
                    .acquire("m123930.state")
                    .write("m123930.state_data")
                    .release("m123930.state")
                    .release("m123930.observer"),
            ),
        // The racy counter update is modeled as a hardware RMW: the
        // developers' race is benign precisely because it is a single
        // word-sized update, which is the granularity the model (and the
        // recorder) treats as indivisible.
        Variant::DevFix => s
            .path(
                Path::new("mutator")
                    .acquire("m123930.state")
                    .write("m123930.state_data")
                    .release("m123930.state")
                    .rmw("m123930.observer_count"),
            )
            .path(
                Path::new("notifier")
                    .acquire("m123930.state")
                    .write("m123930.state_data")
                    .release("m123930.state")
                    .acquire("m123930.observer")
                    .rmw("m123930.observer_count")
                    .release("m123930.observer"),
            ),
        Variant::TmFix => s
            .path(
                Path::new("mutator")
                    .atomic_begin()
                    .write("m123930.state_data")
                    .write("m123930.observer_count")
                    .atomic_end(),
            )
            .path(
                Path::new("notifier")
                    .atomic_begin()
                    .write("m123930.observer_count")
                    .write("m123930.state_data")
                    .atomic_end(),
            ),
    }
    .build()
}

/// Apache-I (§5.4.2): the listener sleeps on the idle-worker condition
/// variable while holding the timeout mutex, which every worker needs
/// before it can notify — a lock-and-wait cycle no lock graph sees.
fn apache_i(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::APACHE_I, label(v));
    let worker = || {
        Path::new("worker")
            .acquire("apache1.queue_lock")
            .write("apache1.idle")
            .notify("apache1.idle_cv")
            .release("apache1.queue_lock")
            .acquire("apache1.timeout_mutex")
            .write("apache1.timeouts")
            .release("apache1.timeout_mutex")
    };
    match v {
        Variant::Buggy => s
            .path(
                Path::new("listener")
                    .acquire("apache1.timeout_mutex")
                    .write("apache1.timeouts")
                    .acquire("apache1.queue_lock")
                    .read("apache1.idle")
                    .wait("apache1.idle_cv", "apache1.queue_lock", "apache1.idle")
                    .read("apache1.idle")
                    .write("apache1.idle")
                    .release("apache1.queue_lock")
                    .release("apache1.timeout_mutex"),
            )
            .path(worker()),
        // The developers moved the timeout work out from under the wait.
        Variant::DevFix => s
            .path(
                Path::new("listener")
                    .acquire("apache1.queue_lock")
                    .read("apache1.idle")
                    .wait("apache1.idle_cv", "apache1.queue_lock", "apache1.idle")
                    .read("apache1.idle")
                    .write("apache1.idle")
                    .release("apache1.queue_lock")
                    .acquire("apache1.timeout_mutex")
                    .write("apache1.timeouts")
                    .release("apache1.timeout_mutex"),
            )
            .path(worker()),
        // Recipe 3: the listener becomes a preemptible transaction over
        // revocable locks; the wait becomes transactional retry.
        Variant::TmFix => s
            .path(
                Path::new("listener")
                    .atomic_begin()
                    .acquire_tx("apache1.timeout_mutex")
                    .write("apache1.timeouts")
                    .acquire_tx("apache1.queue_lock")
                    .read("apache1.idle")
                    .write("apache1.idle")
                    .release("apache1.queue_lock")
                    .release("apache1.timeout_mutex")
                    .atomic_end(),
            )
            .path(worker()),
    }
    .build()
}

/// Apache#11600: two local mutexes acquired in both orders.
fn dl_local_lock_order(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::DL_LOCAL_LOCK_ORDER, label(v));
    match v {
        Variant::Buggy => s
            .path(
                Path::new("p0")
                    .acquire("a11600.mutex_a")
                    .write("a11600.data_a")
                    .acquire("a11600.mutex_b")
                    .write("a11600.data_b")
                    .release("a11600.mutex_b")
                    .release("a11600.mutex_a"),
            )
            .path(
                Path::new("p1")
                    .acquire("a11600.mutex_b")
                    .write("a11600.data_b")
                    .acquire("a11600.mutex_a")
                    .write("a11600.data_a")
                    .release("a11600.mutex_a")
                    .release("a11600.mutex_b"),
            ),
        Variant::DevFix => s
            .path(
                Path::new("p0")
                    .acquire("a11600.mutex_a")
                    .write("a11600.data_a")
                    .acquire("a11600.mutex_b")
                    .write("a11600.data_b")
                    .release("a11600.mutex_b")
                    .release("a11600.mutex_a"),
            )
            .path(
                Path::new("p1")
                    .acquire("a11600.mutex_a")
                    .acquire("a11600.mutex_b")
                    .write("a11600.data_b")
                    .write("a11600.data_a")
                    .release("a11600.mutex_b")
                    .release("a11600.mutex_a"),
            ),
        Variant::TmFix => s
            .path(
                Path::new("p0")
                    .atomic_begin()
                    .write("a11600.data_a")
                    .write("a11600.data_b")
                    .atomic_end(),
            )
            .path(
                Path::new("p1")
                    .atomic_begin()
                    .write("a11600.data_b")
                    .write("a11600.data_a")
                    .atomic_end(),
            ),
    }
    .build()
}

/// MySQL#3155: two table locks taken in statement order, which differs
/// between concurrent statements.
fn dl_mysql_table_pair(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::DL_MYSQL_TABLE_PAIR, label(v));
    match v {
        Variant::Buggy => s
            .path(
                Path::new("stmt_ab")
                    .acquire("my3155.table1")
                    .write("my3155.rows1")
                    .acquire("my3155.table2")
                    .write("my3155.rows2")
                    .release("my3155.table2")
                    .release("my3155.table1"),
            )
            .path(
                Path::new("stmt_ba")
                    .acquire("my3155.table2")
                    .write("my3155.rows2")
                    .acquire("my3155.table1")
                    .write("my3155.rows1")
                    .release("my3155.table1")
                    .release("my3155.table2"),
            ),
        Variant::DevFix => s
            .path(
                Path::new("stmt_ab")
                    .acquire("my3155.table1")
                    .write("my3155.rows1")
                    .acquire("my3155.table2")
                    .write("my3155.rows2")
                    .release("my3155.table2")
                    .release("my3155.table1"),
            )
            .path(
                Path::new("stmt_ba")
                    .acquire("my3155.table1")
                    .acquire("my3155.table2")
                    .write("my3155.rows2")
                    .write("my3155.rows1")
                    .release("my3155.table2")
                    .release("my3155.table1"),
            ),
        // Recipe 3: each statement keeps its natural order but acquires
        // revocably inside a preemptible transaction.
        Variant::TmFix => s
            .path(
                Path::new("stmt_ab")
                    .atomic_begin()
                    .acquire_tx("my3155.table1")
                    .write("my3155.rows1")
                    .acquire_tx("my3155.table2")
                    .write("my3155.rows2")
                    .release("my3155.table2")
                    .release("my3155.table1")
                    .atomic_end(),
            )
            .path(
                Path::new("stmt_ba")
                    .atomic_begin()
                    .acquire_tx("my3155.table2")
                    .write("my3155.rows2")
                    .acquire_tx("my3155.table1")
                    .write("my3155.rows1")
                    .release("my3155.table1")
                    .release("my3155.table2")
                    .atomic_end(),
            ),
    }
    .build()
}

/// Mozilla#133773/#18025: one client protects the cache counter with the
/// wrong (unrelated) lock, so the "protected" sections never exclude
/// each other.
fn av_wrong_lock(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::AV_WRONG_LOCK, label(v));
    let right = |lock: &str| {
        Path::new("evictor")
            .acquire(lock)
            .read("m133773.cache_count")
            .write("m133773.cache_count")
            .release(lock)
    };
    match v {
        Variant::Buggy => s.path(right("m133773.cache_lock")).path(
            Path::new("inserter")
                .acquire("m133773.unrelated_lock")
                .read("m133773.cache_count")
                .write("m133773.cache_count")
                .release("m133773.unrelated_lock"),
        ),
        Variant::DevFix => s.path(right("m133773.cache_lock")).path(
            Path::new("inserter")
                .acquire("m133773.cache_lock")
                .read("m133773.cache_count")
                .write("m133773.cache_count")
                .release("m133773.cache_lock"),
        ),
        // Recipe 4: the wrong-lock path becomes an atomic region
        // serialized against the intended lock's critical sections.
        Variant::TmFix => s.path(right("m133773.cache_lock")).path(
            Path::new("inserter")
                .atomic_serialized(&["m133773.cache_lock"])
                .read("m133773.cache_count")
                .write("m133773.cache_count")
                .atomic_end(),
        ),
    }
    .build()
}

/// Mozilla#90994-style: check-then-decrement of a reference count with
/// no synchronization at all.
fn av_refcount_race(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::AV_REFCOUNT_RACE, label(v));
    let bare = |name: &str| Path::new(name).read("m.refcount").write("m.refcount");
    match v {
        Variant::Buggy => s.path(bare("releaser")).path(bare("adopter")),
        // The developers switched to an atomic fetch-and-add.
        Variant::DevFix => s
            .path(Path::new("releaser").rmw("m.refcount"))
            .path(Path::new("adopter").rmw("m.refcount")),
        Variant::TmFix => s
            .path(
                Path::new("releaser")
                    .atomic_begin()
                    .read("m.refcount")
                    .write("m.refcount")
                    .atomic_end(),
            )
            .path(
                Path::new("adopter")
                    .atomic_begin()
                    .read("m.refcount")
                    .write("m.refcount")
                    .atomic_end(),
            ),
    }
    .build()
}

/// Mozilla#52271-style: unsynchronized check-then-initialize of a lazy
/// singleton.
fn av_lazy_init(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::AV_LAZY_INIT, label(v));
    let bare = |name: &str| Path::new(name).read("m52271.initialized").write("m52271.initialized");
    let locked = |name: &str| {
        Path::new(name)
            .acquire("m52271.init_lock")
            .read("m52271.initialized")
            .write("m52271.initialized")
            .release("m52271.init_lock")
    };
    match v {
        Variant::Buggy => s.path(bare("first_user")).path(bare("second_user")),
        Variant::DevFix => s.path(locked("first_user")).path(locked("second_user")),
        Variant::TmFix => s
            .path(
                Path::new("first_user")
                    .atomic_begin()
                    .read("m52271.initialized")
                    .write("m52271.initialized")
                    .atomic_end(),
            )
            .path(
                Path::new("second_user")
                    .atomic_begin()
                    .read("m52271.initialized")
                    .write("m52271.initialized")
                    .atomic_end(),
            ),
    }
    .build()
}

/// Mozilla#91106-style: the producer notifies the consumer's condition
/// variable *before* it has published the item — a waiter that checks
/// its predicate in between goes back to sleep forever.
fn av_cv_partial(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::AV_CV_PARTIAL, label(v));
    let consumer = || {
        Path::new("consumer")
            .acquire("m91106.monitor")
            .read("m91106.items")
            .wait("m91106.cv", "m91106.monitor", "m91106.items")
            .read("m91106.items")
            .write("m91106.items")
            .release("m91106.monitor")
    };
    match v {
        Variant::Buggy => s.path(consumer()).path(
            Path::new("producer")
                .notify("m91106.cv")
                .acquire("m91106.monitor")
                .write("m91106.items")
                .release("m91106.monitor"),
        ),
        Variant::DevFix => s.path(consumer()).path(
            Path::new("producer")
                .acquire("m91106.monitor")
                .write("m91106.items")
                .notify("m91106.cv")
                .release("m91106.monitor"),
        ),
        // Recipe 2 + retry: the monitor and condition variable both
        // dissolve into atomic regions (the consumer's wait becomes a
        // transactional retry on the same predicate).
        Variant::TmFix => s
            .path(
                Path::new("consumer")
                    .atomic_begin()
                    .read("m91106.items")
                    .write("m91106.items")
                    .atomic_end(),
            )
            .path(Path::new("producer").atomic_begin().write("m91106.items").atomic_end()),
    }
    .build()
}

/// Apache#25520: worker scoreboard slots updated with no lock.
fn av_scoreboard(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::AV_SCOREBOARD, label(v));
    let bare = |name: &str| Path::new(name).read("a25520.slot").write("a25520.slot");
    let locked = |name: &str| {
        Path::new(name)
            .acquire("a25520.scoreboard_lock")
            .read("a25520.slot")
            .write("a25520.slot")
            .release("a25520.scoreboard_lock")
    };
    match v {
        Variant::Buggy => s.path(bare("worker")).path(bare("reaper")),
        Variant::DevFix => s.path(locked("worker")).path(locked("reaper")),
        Variant::TmFix => s
            .path(
                Path::new("worker")
                    .atomic_begin()
                    .read("a25520.slot")
                    .write("a25520.slot")
                    .atomic_end(),
            )
            .path(
                Path::new("reaper")
                    .atomic_begin()
                    .read("a25520.slot")
                    .write("a25520.slot")
                    .atomic_end(),
            ),
    }
    .build()
}

/// Apache-II (§5.4.3): the buffered log writer reads the cursor, copies
/// bytes, and bumps the cursor — two writers interleaving tear both the
/// cursor and the buffer/cursor invariant.
fn apache_ii(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::APACHE_II, label(v))
        .group(&["apache2.log_buf", "apache2.log_cursor"]);
    let bare = |name: &str| {
        Path::new(name)
            .read("apache2.log_cursor")
            .write("apache2.log_buf")
            .write("apache2.log_cursor")
    };
    let locked = |name: &str| {
        Path::new(name)
            .acquire("apache2.log_lock")
            .read("apache2.log_cursor")
            .write("apache2.log_buf")
            .write("apache2.log_cursor")
            .release("apache2.log_lock")
    };
    match v {
        Variant::Buggy => s.path(bare("writer1")).path(bare("writer2")),
        Variant::DevFix => s.path(locked("writer1")).path(locked("writer2")),
        Variant::TmFix => s
            .path(
                Path::new("writer1")
                    .atomic_begin()
                    .read("apache2.log_cursor")
                    .write("apache2.log_buf")
                    .write("apache2.log_cursor")
                    .atomic_end(),
            )
            .path(
                Path::new("writer2")
                    .atomic_begin()
                    .read("apache2.log_cursor")
                    .write("apache2.log_buf")
                    .write("apache2.log_cursor")
                    .atomic_end(),
            ),
    }
    .build()
}

/// Apache#31017: the request/byte counter pair must move together, but
/// each update is its own unsynchronized store.
fn av_pair_invariant(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::AV_PAIR_INVARIANT, label(v))
        .group(&["a31017.requests", "a31017.bytes"]);
    match v {
        Variant::Buggy => s
            .path(Path::new("updater").write("a31017.requests").write("a31017.bytes"))
            .path(Path::new("reporter").read("a31017.requests").read("a31017.bytes")),
        Variant::DevFix => s
            .path(
                Path::new("updater")
                    .acquire("a31017.stats_lock")
                    .write("a31017.requests")
                    .write("a31017.bytes")
                    .release("a31017.stats_lock"),
            )
            .path(
                Path::new("reporter")
                    .acquire("a31017.stats_lock")
                    .read("a31017.requests")
                    .read("a31017.bytes")
                    .release("a31017.stats_lock"),
            ),
        Variant::TmFix => s
            .path(
                Path::new("updater")
                    .atomic_begin()
                    .write("a31017.requests")
                    .write("a31017.bytes")
                    .atomic_end(),
            )
            .path(
                Path::new("reporter")
                    .atomic_begin()
                    .read("a31017.requests")
                    .read("a31017.bytes")
                    .atomic_end(),
            ),
    }
    .build()
}

/// Apache#29850: read the shared sequence number, emit the log line,
/// bump the sequence — all unsynchronized.
fn av_log_sequence(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::AV_LOG_SEQUENCE, label(v));
    let bare =
        |name: &str| Path::new(name).read("a29850.seq").write("a29850.log").write("a29850.seq");
    let locked = |name: &str| {
        Path::new(name)
            .acquire("a29850.writer_lock")
            .read("a29850.seq")
            .write("a29850.log")
            .write("a29850.seq")
            .release("a29850.writer_lock")
    };
    match v {
        Variant::Buggy => s.path(bare("req1")).path(bare("req2")),
        Variant::DevFix => s.path(locked("req1")).path(locked("req2")),
        Variant::TmFix => s
            .path(
                Path::new("req1")
                    .atomic_begin()
                    .read("a29850.seq")
                    .write("a29850.log")
                    .write("a29850.seq")
                    .atomic_end(),
            )
            .path(
                Path::new("req2")
                    .atomic_begin()
                    .read("a29850.seq")
                    .write("a29850.log")
                    .write("a29850.seq")
                    .atomic_end(),
            ),
    }
    .build()
}

/// MySQL#12228: statistics counters updated without the status lock the
/// rest of the server uses.
fn av_stats_race(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::AV_STATS_RACE, label(v));
    let bare = |name: &str| Path::new(name).read("my12228.queries").write("my12228.queries");
    let locked = |name: &str| {
        Path::new(name)
            .acquire("my12228.lock_status")
            .read("my12228.queries")
            .write("my12228.queries")
            .release("my12228.lock_status")
    };
    match v {
        Variant::Buggy => s.path(bare("conn1")).path(bare("conn2")),
        Variant::DevFix => s.path(locked("conn1")).path(locked("conn2")),
        Variant::TmFix => s
            .path(
                Path::new("conn1")
                    .atomic_begin()
                    .read("my12228.queries")
                    .write("my12228.queries")
                    .atomic_end(),
            )
            .path(
                Path::new("conn2")
                    .atomic_begin()
                    .read("my12228.queries")
                    .write("my12228.queries")
                    .atomic_end(),
            ),
    }
    .build()
}

/// MySQL-I (§5.4.4): delete-all drops `lock_open` before writing the
/// binlog, so a concurrent insert can slip between table change and log
/// record — the table/binlog invariant tears.
fn mysql_i(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::MYSQL_I, label(v)).group(&["mysql1.table", "mysql1.binlog"]);
    let insert = || {
        Path::new("insert")
            .acquire("mysql1.lock_open")
            .write("mysql1.table")
            .write("mysql1.binlog")
            .release("mysql1.lock_open")
    };
    match v {
        Variant::Buggy => s
            .path(
                Path::new("delete_all")
                    .acquire("mysql1.lock_open")
                    .read("mysql1.table")
                    .write("mysql1.table")
                    .release("mysql1.lock_open")
                    .write("mysql1.binlog"),
            )
            .path(insert()),
        Variant::DevFix => s
            .path(
                Path::new("delete_all")
                    .acquire("mysql1.lock_open")
                    .read("mysql1.table")
                    .write("mysql1.table")
                    .write("mysql1.binlog")
                    .release("mysql1.lock_open"),
            )
            .path(insert()),
        // Recipe 4: delete-all becomes one atomic region serialized
        // against the remaining `lock_open` critical sections.
        Variant::TmFix => s
            .path(
                Path::new("delete_all")
                    .atomic_serialized(&["mysql1.lock_open"])
                    .read("mysql1.table")
                    .write("mysql1.table")
                    .write("mysql1.binlog")
                    .atomic_end(),
            )
            .path(insert()),
    }
    .build()
}

/// MySQL#16582: a hand-rolled version-check/redo mechanism — read the
/// version, write the value, bump the version, with no synchronization
/// underneath.
fn av_adhoc_retry(v: Variant) -> ScenarioSummary {
    let s = Summary::new(crate::keys::AV_ADHOC_RETRY, label(v));
    let bare = |name: &str| {
        Path::new(name).read("my16582.version").write("my16582.value").write("my16582.version")
    };
    match v {
        Variant::Buggy => s.path(bare("updater1")).path(bare("updater2")),
        // The developers collapsed the check/update into one CAS-style
        // atomic word operation.
        Variant::DevFix => s
            .path(Path::new("updater1").rmw("my16582.record"))
            .path(Path::new("updater2").rmw("my16582.record")),
        Variant::TmFix => s
            .path(
                Path::new("updater1")
                    .atomic_begin()
                    .read("my16582.version")
                    .write("my16582.value")
                    .write("my16582.version")
                    .atomic_end(),
            )
            .path(
                Path::new("updater2")
                    .atomic_begin()
                    .read("my16582.version")
                    .write("my16582.value")
                    .write("my16582.version")
                    .atomic_end(),
            ),
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const VARIANTS: [Variant; 3] = [Variant::Buggy, Variant::DevFix, Variant::TmFix];

    #[test]
    fn every_scenario_has_all_three_summaries_and_they_validate() {
        for key in crate::keys::ALL {
            for v in VARIANTS {
                let s =
                    summary_for(key, v).unwrap_or_else(|| panic!("no summary for {key} ({v:?})"));
                s.validate().unwrap_or_else(|e| panic!("{key} ({v:?}): {e}"));
                assert_eq!(s.key, key);
                assert_eq!(s.variant, label(v));
                assert!(s.paths.len() >= 2, "{key} ({v:?}) models fewer than two paths");
            }
        }
    }

    #[test]
    fn unknown_keys_have_no_summary() {
        assert!(summary_for("no_such_scenario", Variant::Buggy).is_none());
    }
}
