//! # txfix-corpus: the 60-bug study corpus and its executable scenarios
//!
//! Three parts:
//!
//! - [`dataset`]: the 60 [`BugRecord`](txfix_core::BugRecord)s (22
//!   deadlocks + 38 atomicity violations across Mozilla, Apache and
//!   MySQL), carrying the structural attributes from which the paper's
//!   Tables 1–3 are re-derived. The tests in this crate assert that every
//!   aggregate stated in the paper's prose holds of the dataset.
//! - [`scenarios`]: executable reproductions of the 18 fixes the study
//!   implemented and tested (7 deadlocks + 11 atomicity violations). Each
//!   scenario can run its **buggy** variant (demonstrating the bug via
//!   deadlock detection or an invariant violation), the **developers'
//!   fix**, and the **TM fix** built from the corresponding recipe.
//! - [`summaries`]: declarative critical-section summaries of every
//!   scenario variant for the static analyzer (`txfix lint`), with
//!   buggy-variant names matching what the trace recorder emits.

#![warn(missing_docs)]

pub mod dataset;
pub mod scenarios;
pub mod summaries;

pub use dataset::{all_bugs, bug_by_id, bug_by_scenario, keys};
pub use scenarios::{
    all_scenarios, scenario_by_key, scheduled_by_key, scheduled_scenarios, BugScenario, Outcome,
    ScheduledRun, ScheduledScenario, Variant,
};
pub use summaries::summary_for;

#[cfg(test)]
mod consistency {
    use super::*;
    use txfix_core::{App, BugKind, CorpusSummary};

    #[test]
    fn headline_counts_match_the_paper() {
        let bugs = all_bugs();
        let s = CorpusSummary::compute(&bugs);
        assert_eq!(s.total, 60, "60 bugs examined");
        assert_eq!(s.deadlocks.total, 22, "22 deadlocks");
        assert_eq!(s.atomicity.total, 38, "38 atomicity violations");
        assert_eq!(s.deadlocks.fixable, 12, "TM fixes 12 of 22 deadlocks");
        assert_eq!(s.atomicity.fixable, 31, "TM fixes 31 of 38 atomicity violations");
        assert_eq!(s.fixable(), 43, "43 of 60 fixable (71%)");
        assert_eq!(s.total - s.fixable(), 17, "17 not fixable (29%)");
    }

    #[test]
    fn recipe_breakdown_matches_the_paper() {
        let s = CorpusSummary::compute(&all_bugs());
        assert_eq!(s.fixed_by_simple_recipes, 40, "recipes 1 and 2 suffice for 40 of 43");
        assert_eq!(s.fixed_only_by_recipe3, 3, "recipe 3 fixes 3 more");
        assert_eq!(s.simplified_by_recipe3, 6, "recipe 3 simplifies 6 of the 9 recipe-1 fixes");
        assert_eq!(s.simplified_by_recipe4, 14, "recipe 4 simplifies 14 (20 total simplified)");
        assert_eq!(s.multi_module_non_preemptible, 5, "5 unfixable multi-module deadlocks");
    }

    #[test]
    fn atomicity_structure_matches_the_paper() {
        let s = CorpusSummary::compute(&all_bugs());
        assert_eq!(s.av_complete_missing, 22, "22 AVs with completely missing sync");
        assert_eq!(s.av_complete_missing_fixable, 17, "17 of them fixable by recipe 2");
        assert_eq!(s.av_single_block, 12, "12 fixable with a single atomic block");
        assert_eq!(s.av_single_block_easy, 9, "9 single-block fixes judged easy");
        assert_eq!(s.av_single_block_medium, 3, "3 judged medium (downcall reasoning)");
    }

    #[test]
    fn downcalls_match_the_paper() {
        let bugs = all_bugs();
        let s = CorpusSummary::compute(&bugs);
        assert_eq!(s.downcall_condvar, 5, "five fixes required condition variables");
        assert_eq!(s.downcall_retry, 2, "two required a retry");
        assert_eq!(s.downcall_io, 8, "eight required I/O");
        assert_eq!(s.downcall_long_action, 7, "seven required very long transactions");
        // All CV-requiring fixes are Mozilla bugs.
        for b in &bugs {
            if b.chars.downcalls.condvar {
                assert_eq!(b.app, App::Mozilla, "{} has a CV downcall outside Mozilla", b.id);
            }
        }
    }

    #[test]
    fn preference_matches_the_paper() {
        let s = CorpusSummary::compute(&all_bugs());
        assert_eq!(s.tm_preferred, 34, "34 of 43 TM fixes judged preferable (56% of 60)");
        assert_eq!(s.tm_preferred_deadlock, 10, "TM favored for 10 deadlocks");
        assert_eq!(s.tm_preferred_atomicity, 24, "TM favored for 24 atomicity violations");
    }

    #[test]
    fn implemented_fixes_match_the_paper() {
        let s = CorpusSummary::compute(&all_bugs());
        assert_eq!(s.implemented, 18, "18 fixes implemented and tested");
        assert_eq!(s.implemented_deadlock, 7, "7 deadlock fixes implemented");
        assert_eq!(s.implemented_atomicity, 11, "11 atomicity fixes implemented");
    }

    #[test]
    fn ids_are_unique_and_well_formed() {
        let bugs = all_bugs();
        let mut ids: Vec<&str> = bugs.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 60, "duplicate bug ids");
        for b in &bugs {
            assert!(b.id.contains('#'));
            assert!(!b.summary.is_empty());
            if b.kind == BugKind::AtomicityViolation {
                assert!(
                    b.chars.missing_sync.is_some(),
                    "{} must classify its missing synchronization",
                    b.id
                );
            }
        }
    }

    #[test]
    fn scenario_keys_are_exactly_the_implemented_bugs() {
        let bugs = all_bugs();
        let mut found: Vec<&str> = bugs.iter().filter_map(|b| b.scenario).collect();
        found.sort_unstable();
        let mut expected = keys::ALL.to_vec();
        expected.sort_unstable();
        assert_eq!(found, expected);
        for key in keys::ALL {
            assert!(bug_by_scenario(key).is_some(), "no bug for scenario {key}");
        }
    }

    #[test]
    fn per_app_totals_are_consistent() {
        let bugs = all_bugs();
        let count = |app, kind| bugs.iter().filter(|b| b.app == app && b.kind == kind).count();
        assert_eq!(count(App::Mozilla, BugKind::Deadlock), 13);
        assert_eq!(count(App::Apache, BugKind::Deadlock), 5);
        assert_eq!(count(App::MySql, BugKind::Deadlock), 4);
        assert_eq!(count(App::Mozilla, BugKind::AtomicityViolation), 20);
        assert_eq!(count(App::Apache, BugKind::AtomicityViolation), 9);
        assert_eq!(count(App::MySql, BugKind::AtomicityViolation), 9);
    }

    #[test]
    fn paper_named_ids_are_marked_real() {
        for id in [
            "Mozilla#54743",
            "Mozilla#60303",
            "Mozilla#90994",
            "Mozilla#79054",
            "Mozilla#123930",
            "Mozilla#65146",
            "Mozilla#27486",
            "Mozilla#18025",
            "Mozilla#133773",
            "Mozilla#19421",
            "Mozilla#72965",
            "Apache#25520",
            "Apache#7617",
            "MySQL#16582",
        ] {
            let b = bug_by_id(id).unwrap_or_else(|| panic!("missing {id}"));
            assert!(!b.synthetic_id, "{id} is named in the paper");
        }
    }
}
