//! # txfix-analyze: finding the corpus bugs, not just fixing them
//!
//! The paper argues TM fixes are attractive because they need only *local*
//! reasoning; this crate supplies the other half of that story — the
//! detectors that tell you a fix is needed. It consumes the sync-event
//! trace recorded by [`txfix_stm::trace`] and runs three passes:
//!
//! 1. [`hb`]: a vector-clock happens-before **race detector** — unordered
//!    conflicting accesses with at least one non-atomic participant;
//! 2. [`ser`]: a **conflict-serializability checker** — cycles in the
//!    region (transaction / critical-section / unprotected-run) conflict
//!    graph are atomicity violations even when every individual access is
//!    ordered;
//! 3. [`order`]: a **lock-order validator** — the `txfix_txlock::lockdep`
//!    discipline replayed from the trace, with preemptible (revocable)
//!    cycles suppressed;
//! 4. [`cv`]: **wait/notify discipline** over named condition variables —
//!    waits that hold locks a notifier needs (lock/wait cycles) and
//!    notifies that precede the predicate's publication (lost wakeups).
//!
//! Each finding is then pushed through `txfix_core::analysis::analyze` on
//! the scenario's bug record, so the report pairs every detected bug with
//! the paper's suggested fix recipe. [`analyze_scenario`] wires the whole
//! pipeline to one corpus scenario run; the `txfix analyze` CLI subcommand
//! is a thin wrapper around it.

#![warn(missing_docs)]

pub mod cv;
pub mod hb;
pub mod integrity;
pub mod order;
pub mod report;
pub mod ser;
pub mod vc;

pub use report::{Finding, Report};
pub use txfix_core::Hazard;

use parking_lot::Mutex;
use txfix_core::{Analysis, Recipe};
use txfix_corpus::{bug_by_scenario, scenario_by_key, Variant};
use txfix_stm::trace::{self, TraceEvent};
use txfix_txlock::lockdep;

/// Run every analysis pass over a recorded trace, attaching the suggested
/// recipe for scenario `key` to each finding.
///
/// `live_inversions` carries what `txfix_txlock::lockdep` observed during
/// the same run; its pairs and the trace-replay pairs are merged and
/// deduplicated (both validators see the same cycles from their own
/// vantage points, and a hazard is one finding no matter who spotted it).
pub fn analyze_trace(
    events: &[TraceEvent],
    live_inversions: &[lockdep::Inversion],
    key: &str,
) -> Vec<Finding> {
    let (recipe, rationale) = suggestion(key);
    let mut findings = Vec::new();

    for race in hb::detect_races(events) {
        findings.push(Finding {
            explanation: format!(
                "threads {} and {} make unordered conflicting accesses to {}, at least one \
                 of them plain; {rationale}",
                race.threads.0, race.threads.1, race.name
            ),
            kind: Hazard::Race { loc: race.name },
            recipe,
        });
    }

    for v in ser::violations(events) {
        findings.push(Finding {
            explanation: format!(
                "threads {:?} interleave critical regions over {} in a way no serial order \
                 explains; {rationale}",
                v.threads,
                v.objects.join(", ")
            ),
            kind: Hazard::Atomicity { locs: v.objects },
            recipe,
        });
    }

    // Lock-order hazards from both vantage points, one finding per pair.
    let mut pairs = order::inversions(events);
    for inv in live_inversions {
        let pair = if inv.first <= inv.second {
            (inv.first.clone(), inv.second.clone())
        } else {
            (inv.second.clone(), inv.first.clone())
        };
        if !pairs.contains(&pair) {
            pairs.push(pair);
        }
    }
    for (first, second) in pairs {
        findings.push(Finding {
            explanation: format!(
                "\"{first}\" and \"{second}\" are acquired in both orders with no revocable \
                 escape; {rationale}"
            ),
            kind: Hazard::LockCycle { locks: vec![first, second] },
            recipe,
        });
    }

    // Commit-protocol integrity: a retry-notifier bump from inside a
    // still-open transaction (one deduplicated finding — the ordering is
    // wrong however many commits exhibit it).
    if integrity::premature_notify(events) {
        findings.push(Finding {
            explanation: format!(
                "a committing transaction bumps the retry notifier before its write-back \
                 publishes; a retrying waiter can revalidate against the unpublished state \
                 and sleep through its only wakeup; {rationale}"
            ),
            kind: Hazard::LostWakeup {
                cv: "retry-notifier".to_string(),
                loc: "stm write-back".to_string(),
            },
            recipe,
        });
    }

    // Wait/notify discipline over named condvars.
    for hazard in cv::cv_hazards(events) {
        let explanation = match &hazard {
            Hazard::WaitCycle { cv, lock } => format!(
                "a thread waits on {cv} still holding \"{lock}\", which a notifying thread \
                 must acquire first; {rationale}"
            ),
            Hazard::LostWakeup { cv, loc } => format!(
                "{cv} is signalled before the state under \"{loc}\" is published, so a waiter \
                 can test a stale predicate and miss the wakeup; {rationale}"
            ),
            _ => unreachable!("cv pass reports only wait-cycle and lost-wakeup hazards"),
        };
        findings.push(Finding { explanation, kind: hazard, recipe });
    }

    findings
}

/// The recipe suggestion (and a prose rationale) for scenario `key`, from
/// the paper's decision procedure over the scenario's bug record.
fn suggestion(key: &str) -> (Option<Recipe>, String) {
    let Some(bug) = bug_by_scenario(key) else {
        return (None, "no corpus record for this scenario".to_string());
    };
    match txfix_core::analyze(&bug) {
        Analysis::Fixable(plan) => {
            let mut why = format!("suggested fix: {}", plan.primary);
            if let Some(simpler) = plan.simplified_by {
                why.push_str(&format!(", simplified by {simpler}"));
            }
            (Some(plan.primary), why)
        }
        Analysis::Unfixable(reason) => {
            (None, format!("TM cannot fix this bug ({reason}); see the developers' fix"))
        }
    }
}

/// The recorder and both validators are process-global; one analysis runs
/// at a time.
static GATE: Mutex<()> = Mutex::new(());

/// Run scenario `key`'s `variant` under the trace recorder and the live
/// lockdep validator, then analyze the captured trace.
///
/// Returns `None` for an unknown scenario key.
pub fn analyze_scenario(key: &str, variant: Variant) -> Option<Report> {
    let scenario = scenario_by_key(key)?;
    let _gate = GATE.lock();

    lockdep::reset();
    trace::reset();
    lockdep::enable();
    trace::enable();
    let outcome = scenario.run(variant);
    trace::disable();
    lockdep::disable();

    let events = trace::take();
    let live = lockdep::inversions();
    let live_edges = lockdep::edges();
    lockdep::reset();

    let mut findings = analyze_trace(&events, &live, key);
    // Validator-integrity cross-check: the trace and the live lockdep
    // graph witnessed the same acquisitions; an edge only the trace has
    // means the validator's deadlock graph is silently incomplete.
    for (first, second) in integrity::lockdep_gaps(&events, &live_edges) {
        findings.push(Finding {
            explanation: format!(
                "the live lock-order validator has no record of the \"{first}\" -> \
                 \"{second}\" acquisition edge the trace witnessed; its deadlock graph is \
                 incomplete and any cycle through the missing edge goes unreported"
            ),
            kind: Hazard::LockCycle { locks: vec![first, second] },
            recipe: None,
        });
    }
    Some(Report {
        scenario: key.to_string(),
        variant: match variant {
            Variant::Buggy => "buggy",
            Variant::DevFix => "dev",
            Variant::TmFix => "tm",
        }
        .to_string(),
        outcome,
        events: events.len(),
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use txfix_stm::trace::{AccessKind, EventKind};

    fn ev(thread: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { thread, kind }
    }

    #[test]
    fn findings_carry_the_scenario_recipe() {
        // av_stats_race is a complete-missing-sync AV: recipe 2.
        let events = [
            ev(
                1,
                EventKind::SharedAccess {
                    object: 1,
                    name: "stats".into(),
                    kind: AccessKind::Write,
                    atomic: false,
                },
            ),
            ev(
                2,
                EventKind::SharedAccess {
                    object: 1,
                    name: "stats".into(),
                    kind: AccessKind::Write,
                    atomic: false,
                },
            ),
        ];
        let findings = analyze_trace(&events, &[], "av_stats_race");
        assert!(!findings.is_empty());
        assert!(findings.iter().all(|f| f.recipe == Some(Recipe::WrapAll)), "{findings:?}");
    }

    #[test]
    fn live_and_trace_inversions_deduplicate() {
        let events = [
            ev(1, EventKind::LockAcquired { lock: 1, name: "a".into() }),
            ev(1, EventKind::LockAttempt { lock: 2, name: "b".into(), preemptible: false }),
            ev(1, EventKind::LockAcquired { lock: 2, name: "b".into() }),
            ev(1, EventKind::LockReleased { lock: 2 }),
            ev(1, EventKind::LockReleased { lock: 1 }),
            ev(2, EventKind::LockAcquired { lock: 2, name: "b".into() }),
            ev(2, EventKind::LockAttempt { lock: 1, name: "a".into(), preemptible: false }),
        ];
        let live = vec![lockdep::Inversion { first: "a".to_string(), second: "b".to_string() }];
        let findings = analyze_trace(&events, &live, "dl_local_lock_order");
        let inversions: Vec<_> =
            findings.iter().filter(|f| matches!(f.kind, Hazard::LockCycle { .. })).collect();
        assert_eq!(inversions.len(), 1, "same pair from both validators: {findings:?}");
        assert_eq!(inversions[0].recipe, Some(Recipe::ReplaceLocks));
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(analyze_scenario("no_such_scenario", Variant::Buggy).is_none());
    }
}
