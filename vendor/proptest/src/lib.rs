//! Minimal reimplementation of the `proptest` API surface that txfix's test
//! suites use, vendored because the build environment has no network access
//! to crates.io.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` random
//! cases from a deterministic per-test seed (override the case count with
//! the `PROPTEST_CASES` env var). There is no shrinking; on failure the
//! failing inputs are printed via `Debug` so the case can be reproduced by
//! hand.

use std::fmt;

/// Deterministic SplitMix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier and case index so failures are
    /// reproducible run-to-run.
    pub fn for_case(test_id: &str, case: u32) -> TestRng {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_id.hash(&mut h);
        TestRng { state: h.finish() ^ ((case as u64) << 1 | 1) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }
}

/// A generator of values of one type. The `Value: Debug` bound lets the
/// harness print failing inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0, self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end.wrapping_sub(self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`Arbitrary`] values, as returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// String strategy from a restricted regex: one or more `[a-z]`-style char
/// classes (or literal chars), each optionally followed by `{m,n}`, `{n}`,
/// `*`, `+`, or `?`. Covers the patterns txfix's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let mut out = String::new();
        for (chars, lo, hi) in &pieces {
            let n = rng.usize_in(*lo, hi + 1);
            for _ in 0..n {
                out.push(chars[rng.usize_in(0, chars.len())]);
            }
        }
        out
    }
}

type PatternPiece = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Option<Vec<PatternPiece>> {
    let mut pieces = Vec::new();
    let mut it = pat.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match it.next()? {
                        ']' => break,
                        '-' => {
                            let lo = prev?;
                            let hi = it.next()?;
                            for v in (lo as u32 + 1)..=(hi as u32) {
                                set.push(char::from_u32(v)?);
                            }
                            prev = None;
                        }
                        ch => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                set
            }
            '\\' => vec![it.next()?],
            ch => vec![ch],
        };
        if chars.is_empty() {
            return None;
        }
        let (lo, hi) = match it.peek() {
            Some('{') => {
                it.next();
                let mut digits = String::new();
                let mut lo = None;
                loop {
                    match it.next()? {
                        '}' => break,
                        ',' => {
                            lo = Some(digits.parse().ok()?);
                            digits.clear();
                        }
                        d => digits.push(d),
                    }
                }
                let last: usize = digits.parse().ok()?;
                (lo.unwrap_or(last), last)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        if lo > hi {
            return None;
        }
        pieces.push((chars, lo, hi));
    }
    Some(pieces)
}

pub mod collection {
    //! Collection strategies (`vec`, `hash_map`).

    use super::{Strategy, TestRng};
    use std::collections::HashMap;
    use std::fmt;
    use std::hash::Hash;

    /// Element-count specification: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Inclusive lower bound and exclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec<T>`, as returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.lo, self.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector of values from `elem`, with `size` elements.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    /// Strategy for `HashMap<K, V>`, as returned by [`hash_map`].
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        lo: usize,
        hi: usize,
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Eq + Hash + fmt::Debug,
    {
        type Value = HashMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
            let n = rng.usize_in(self.lo, self.hi);
            (0..n).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
        }
    }

    /// Map with keys from `key` and values from `value`; key collisions may
    /// make the map smaller than the requested entry count.
    pub fn hash_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl SizeRange,
    ) -> HashMapStrategy<K, V> {
        let (lo, hi) = size.bounds();
        HashMapStrategy { key, value, lo, hi }
    }
}

pub mod test_runner {
    //! Run-time configuration for `proptest!` blocks.

    /// Subset of proptest's config: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// Effective case count, honoring the `PROPTEST_CASES` override.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Define property tests: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strats = ( $($strat,)+ );
                for __case in 0..__config.effective_cases() {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ( $($arg,)+ ) = &__strats;
                    let ( $($arg,)+ ) =
                        ( $($crate::Strategy::generate($arg, &mut __rng),)+ );
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs:\n{}",
                            stringify!($name),
                            __case + 1,
                            __config.effective_cases(),
                            __inputs,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $($crate::Strategy::boxed($arm)),+ ])
    };
}

/// Property assertion (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! Common imports for property tests.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("unit", 0);
        let s = (0usize..5, -3i64..3);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 5);
            assert!((-3..3).contains(&b));
        }
    }

    #[test]
    fn string_pattern_generates_matching() {
        let mut rng = crate::TestRng::for_case("unit-str", 0);
        let s: &'static str = "[a-z]{1,6}";
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=6).contains(&v.len()));
            assert!(v.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let mut rng = crate::TestRng::for_case("unit-oneof", 0);
        let s = prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(v in crate::collection::vec(any::<u8>(), 0..10), flag in any::<bool>()) {
            prop_assert!(v.len() < 10);
            let _ = flag;
        }
    }
}
