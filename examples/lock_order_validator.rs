//! Catch a deadlock before it ever strikes (and see why TM avoids the
//! whole problem).
//!
//! ```sh
//! cargo run --example lock_order_validator
//! ```
//!
//! The paper's §3.1 blames lock-based fixes' difficulty on non-local
//! reasoning: every new lock must be ordered against every existing one.
//! The `lockdep` validator mechanizes that reasoning — it flags lock-order
//! inversions from a *successful* run, no hang required — while the
//! transactional version of the same code has nothing to validate.

use txfix::stm::{atomic, TVar};
use txfix::txlock::{lockdep, TxMutex};

fn main() {
    // A tiny "browser": a cache and an atom table, touched from two code
    // paths written by different people, each picking their own order.
    let cache = TxMutex::new("browser.cache", vec![0u64; 4]);
    let atoms = TxMutex::new("browser.atom_table", vec![0u64; 4]);

    lockdep::reset();
    lockdep::enable();

    // Path 1 (page load): cache, then atom table.
    {
        let mut c = cache.lock().unwrap();
        let mut a = atoms.lock().unwrap();
        c[0] += 1;
        a[0] += 1;
    }
    // Path 2 (GC, written a year later): atom table, then cache.
    {
        let mut a = atoms.lock().unwrap();
        let mut c = cache.lock().unwrap();
        a[1] += 1;
        c[1] += 1;
    }

    lockdep::disable();

    println!("Single-threaded test run: finished fine, nothing hung.\n");
    let found = lockdep::inversions();
    if found.is_empty() {
        println!("lockdep: no inversions (unexpected for this demo!)");
    } else {
        for inv in &found {
            println!("lockdep: {inv}");
        }
        println!(
            "\nUnder the right two-thread timing this inversion IS Mozilla#54743's\n\
             deadlock. The validator sees it in one sequential run — this is the\n\
             non-local reasoning a developer must redo for every lock they add."
        );
    }

    // The transactional rewrite has no orders to maintain at all.
    let t_cache = TVar::new(vec![0u64; 4]);
    let t_atoms = TVar::new(vec![0u64; 4]);
    atomic(|txn| {
        t_cache.modify(txn, |mut v| {
            v[0] += 1;
            v
        })?;
        t_atoms.modify(txn, |mut v| {
            v[0] += 1;
            v
        })
    });
    atomic(|txn| {
        t_atoms.modify(txn, |mut v| {
            v[1] += 1;
            v
        })?;
        t_cache.modify(txn, |mut v| {
            v[1] += 1;
            v
        })
    });
    println!(
        "\nTM version: both access orders ran under atomic regions — there is no\n\
         acquisition order to get wrong (Recipe 1's conceptual win)."
    );
}
