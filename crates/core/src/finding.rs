//! The unified hazard vocabulary shared by every analyzer.
//!
//! The static critical-section passes (`txfix-static`), the dynamic
//! trace passes (`txfix-analyze`) and the region-inference pipeline
//! (`txfix-autofix`) all describe what they found as a [`Hazard`]: one
//! representation, one JSON encoding, one overlap relation. A static
//! finding and a dynamic finding about the same bug [`overlap`] — same
//! [`HazardClass`], at least one shared subject name — which is how the
//! agreement matrix matches the two analyzers and how inference
//! deduplicates their findings into one region seed.
//!
//! [`overlap`]: Hazard::overlaps

use crate::analysis::HazardClass;
use crate::json::{get, Json, ToJson};
use std::fmt;

/// What an analysis pass detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hazard {
    /// Two paths can reach `loc` with disjoint locksets, at least one
    /// writing, neither hardware-atomic.
    Race {
        /// The racing location.
        loc: String,
    },
    /// A read-modify-write (or invariant-group access) whose protection
    /// is dropped partway: the locations are individually reachable but
    /// not covered by one continuous critical section.
    Atomicity {
        /// The locations whose unit is torn (sorted).
        locs: Vec<String>,
    },
    /// A cycle in the lock-order graph through non-revocable
    /// acquisitions (potential deadlock).
    LockCycle {
        /// The locks on the cycle (sorted).
        locks: Vec<String>,
    },
    /// A path waits on `cv` while holding `lock`, which a notifying
    /// path must acquire: the notifier can block behind the waiter
    /// forever.
    WaitCycle {
        /// The condition variable waited on.
        cv: String,
        /// The non-revocable lock held across the wait.
        lock: String,
    },
    /// A path notifies `cv` before writing `loc`, the state the wait
    /// predicate reads: the waiter can test a stale predicate and sleep
    /// through the only wakeup.
    LostWakeup {
        /// The condition variable notified.
        cv: String,
        /// The predicate location written after the notify.
        loc: String,
    },
}

impl Hazard {
    /// The coarse class, for recipe mapping and dynamic/static matching.
    pub fn class(&self) -> HazardClass {
        match self {
            Hazard::Race { .. } | Hazard::Atomicity { .. } => HazardClass::SharedData,
            Hazard::LockCycle { .. } => HazardClass::LockCycle,
            Hazard::WaitCycle { .. } => HazardClass::WaitCycle,
            Hazard::LostWakeup { .. } => HazardClass::LostWakeup,
        }
    }

    /// The names (locations, locks, condition variables) the hazard is
    /// about, for overlap matching.
    pub fn subjects(&self) -> Vec<String> {
        match self {
            Hazard::Race { loc } => vec![loc.clone()],
            Hazard::Atomicity { locs } => locs.clone(),
            Hazard::LockCycle { locks } => locks.clone(),
            Hazard::WaitCycle { cv, lock } => vec![cv.clone(), lock.clone()],
            Hazard::LostWakeup { cv, loc } => vec![cv.clone(), loc.clone()],
        }
    }

    /// Whether two hazards are about the same problem: same class and at
    /// least one shared subject name. Race and Atomicity deliberately
    /// share a class — a data race and the torn unit around it are one
    /// bug, and one wrap fixes both.
    pub fn overlaps(&self, other: &Hazard) -> bool {
        self.class() == other.class()
            && self.subjects().iter().any(|s| other.subjects().contains(s))
    }
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hazard::Race { loc } => write!(f, "possible data race on {loc}"),
            Hazard::Atomicity { locs } => {
                write!(f, "atomicity not continuous across {}", locs.join(", "))
            }
            Hazard::LockCycle { locks } => {
                write!(f, "lock-order cycle through {}", locks.join(" -> "))
            }
            Hazard::WaitCycle { cv, lock } => {
                write!(f, "wait on {cv} holds \"{lock}\" that a notifier needs")
            }
            Hazard::LostWakeup { cv, loc } => {
                write!(f, "{cv} notified before {loc} is updated (lost wakeup)")
            }
        }
    }
}

impl ToJson for Hazard {
    fn to_json_value(&self) -> Json {
        match self {
            Hazard::Race { loc } => {
                Json::obj([("kind", Json::str("race")), ("loc", Json::str(loc.clone()))])
            }
            Hazard::Atomicity { locs } => {
                Json::obj([("kind", Json::str("atomicity")), ("locs", Json::strings(locs))])
            }
            Hazard::LockCycle { locks } => {
                Json::obj([("kind", Json::str("lock_cycle")), ("locks", Json::strings(locks))])
            }
            Hazard::WaitCycle { cv, lock } => Json::obj([
                ("kind", Json::str("wait_cycle")),
                ("cv", Json::str(cv.clone())),
                ("lock", Json::str(lock.clone())),
            ]),
            Hazard::LostWakeup { cv, loc } => Json::obj([
                ("kind", Json::str("lost_wakeup")),
                ("cv", Json::str(cv.clone())),
                ("loc", Json::str(loc.clone())),
            ]),
        }
    }
}

/// Parse a hazard back from [`ToJson::to_json`] output.
///
/// # Errors
///
/// A description of the first malformed construct.
pub fn hazard_from_json(v: &Json) -> Result<Hazard, String> {
    let obj = v.object("hazard")?;
    let strings = |key: &str| -> Result<Vec<String>, String> {
        get(obj, key)?.array(key)?.iter().map(|s| s.string(key)).collect::<Result<Vec<_>, _>>()
    };
    match get(obj, "kind")?.string("hazard.kind")?.as_str() {
        "race" => Ok(Hazard::Race { loc: get(obj, "loc")?.string("loc")? }),
        "atomicity" => Ok(Hazard::Atomicity { locs: strings("locs")? }),
        "lock_cycle" => Ok(Hazard::LockCycle { locks: strings("locks")? }),
        "wait_cycle" => Ok(Hazard::WaitCycle {
            cv: get(obj, "cv")?.string("cv")?,
            lock: get(obj, "lock")?.string("lock")?,
        }),
        "lost_wakeup" => Ok(Hazard::LostWakeup {
            cv: get(obj, "cv")?.string("cv")?,
            loc: get(obj, "loc")?.string("loc")?,
        }),
        other => Err(format!("unknown hazard kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips_through_json() {
        let all = [
            Hazard::Race { loc: "x".into() },
            Hazard::Atomicity { locs: vec!["x".into(), "y".into()] },
            Hazard::LockCycle { locks: vec!["a".into(), "b".into()] },
            Hazard::WaitCycle { cv: "cv".into(), lock: "l".into() },
            Hazard::LostWakeup { cv: "cv".into(), loc: "x".into() },
        ];
        for h in all {
            let parsed = hazard_from_json(&Json::parse(&h.to_json()).unwrap()).unwrap();
            assert_eq!(parsed, h);
        }
        assert!(hazard_from_json(&Json::parse(r#"{"kind":"nope"}"#).unwrap()).is_err());
    }

    #[test]
    fn overlap_requires_same_class_and_shared_subject() {
        let race = Hazard::Race { loc: "x".into() };
        let av = Hazard::Atomicity { locs: vec!["x".into(), "y".into()] };
        let other_av = Hazard::Atomicity { locs: vec!["z".into()] };
        let cycle = Hazard::LockCycle { locks: vec!["x".into()] };
        assert!(race.overlaps(&av), "race and torn unit on one loc are one bug");
        assert!(!race.overlaps(&other_av));
        assert!(!race.overlaps(&cycle), "same name, different class");
        let wait = Hazard::WaitCycle { cv: "cv".into(), lock: "l".into() };
        let lost = Hazard::LostWakeup { cv: "cv".into(), loc: "x".into() };
        assert!(!wait.overlaps(&lost), "different classes despite the shared cv");
    }
}
