//! Scenarios packaged for the deterministic scheduler (`txfix explore`).
//!
//! The barrier-based reproductions in [`atomicity`](super) / `deadlock`
//! pin *one* interleaving with OS barriers and spin windows. The scheduled
//! corpus re-expresses each bug as a set of plain thread bodies whose only
//! synchronization goes through the instrumented primitives (`TracedCell`,
//! `TxMutex`, `LockCondvar`, transactions, serial sections), so the
//! explorer in `txfix-explore` can drive *every* interleaving of their
//! yield points: OS barriers and sleeps are forbidden here — a controlled
//! thread that blocks outside the scheduler would stall the whole run.
//!
//! This is also where the recorder-blind bugs become checkable: lock/wait
//! cycles (`mozilla_i`) and lost wakeups (`av_cv_partial`) leave no
//! invariant violation behind — the evidence is the stuck schedule itself,
//! which the scheduler reports as a deadlock stop.

use super::{Outcome, Variant};
use crate::dataset::keys;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txfix_apps::apache::{
    buffered_log::make_record, validate_log, BuggyBufferedLog, LockedBufferedLog, LogWriter,
    TmBufferedLog,
};
use txfix_apps::mysql::{consistent_with_binlog, MiniDb, MysqlVariant};
use txfix_stm::{atomic, trace::TracedCell, TVar};
use txfix_tmsync::guard;
use txfix_txlock::{LockCondvar, TxMutex};
use txfix_xcall::SimFs;

/// A scenario instance ready to run under the deterministic scheduler:
/// the thread bodies to interleave and a final invariant check.
pub struct ScheduledRun {
    /// One body per scheduler slot. Bodies synchronize only through
    /// instrumented primitives (no OS barriers/sleeps).
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    /// Invariant check over the shared state, run after every thread
    /// finished (not run for schedules that deadlock or panic).
    pub check: Box<dyn FnOnce() -> Outcome + Send>,
}

/// A bug reproduction the explorer can drive through every interleaving.
pub trait ScheduledScenario: Send + Sync {
    /// Corpus key (matches the static summaries and `BugScenario` keys).
    fn key(&self) -> &'static str;
    /// Human-readable one-liner.
    fn describe(&self) -> &'static str;
    /// Build a fresh run of the given variant.
    fn build(&self, variant: Variant) -> ScheduledRun;
}

/// All scheduled scenarios, in corpus order.
pub fn scheduled_scenarios() -> Vec<Box<dyn ScheduledScenario>> {
    vec![
        Box::new(MozillaISched),
        Box::new(LocalLockOrderSched),
        Box::new(RefcountRaceSched),
        Box::new(LazyInitSched),
        Box::new(CvPartialSched),
        Box::new(ApacheIISched),
        Box::new(LogSequenceSched),
        Box::new(StatsRaceSched),
        Box::new(MySqlISched),
        Box::new(AdhocRetrySched),
    ]
}

/// Look up a scheduled scenario by key.
pub fn scheduled_by_key(key: &str) -> Option<Box<dyn ScheduledScenario>> {
    scheduled_scenarios().into_iter().find(|s| s.key() == key)
}

/// A wait long enough that only the scheduler's deadlock detection can end
/// it (scheduled runs never OS-block on it; the bound is for accidental
/// uncontrolled use).
const LONG_WAIT: Duration = Duration::from_secs(600);

// ---------------------------------------------------------------------------
// Mozilla-I: hold a lock across a condition wait whose notifier needs it.
// ---------------------------------------------------------------------------

struct MozillaISched;

impl ScheduledScenario for MozillaISched {
    fn key(&self) -> &'static str {
        keys::MOZILLA_I
    }

    fn describe(&self) -> &'static str {
        "waits for a scope release while holding the lock its releaser needs; \
         no invariant breaks — the evidence is the stuck schedule"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        match variant {
            Variant::Buggy => {
                let ssl = Arc::new(TxMutex::new("moz1s.scope", ()));
                let mon = Arc::new(TxMutex::new("moz1s.monitor", 0u64));
                let cv = Arc::new(LockCondvar::new());
                let (ssl2, mon2, cv2) = (ssl.clone(), mon.clone(), cv.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            // Owner: holds the scope lock across the wait.
                            let _ssl = ssl.lock().expect("no lock cycle");
                            let mut g = mon.lock().expect("no lock cycle");
                            while *g == 0 {
                                let (g2, _) = cv.wait_timeout(g, LONG_WAIT).expect("no lock cycle");
                                g = g2;
                            }
                        }),
                        Box::new(move || {
                            // Releaser: needs the scope lock first.
                            let _ssl = ssl2.lock().expect("no lock cycle");
                            let mut g = mon2.lock().expect("no lock cycle");
                            *g = 1;
                            drop(g);
                            cv2.notify_all();
                        }),
                    ],
                    check: Box::new(|| Outcome::Correct),
                }
            }
            Variant::DevFix => {
                // The fix: don't hold the scope lock while waiting.
                let ssl = Arc::new(TxMutex::new("moz1s.scope", ()));
                let mon = Arc::new(TxMutex::new("moz1s.monitor", 0u64));
                let cv = Arc::new(LockCondvar::new());
                let (ssl2, mon2, cv2) = (ssl.clone(), mon.clone(), cv.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            let mut g = mon.lock().expect("no lock cycle");
                            while *g == 0 {
                                let (g2, _) = cv.wait_timeout(g, LONG_WAIT).expect("no lock cycle");
                                g = g2;
                            }
                            drop(g);
                            let _ssl = ssl.lock().expect("no lock cycle");
                        }),
                        Box::new(move || {
                            let _ssl = ssl2.lock().expect("no lock cycle");
                            let mut g = mon2.lock().expect("no lock cycle");
                            *g = 1;
                            drop(g);
                            cv2.notify_all();
                        }),
                    ],
                    check: Box::new(|| Outcome::Correct),
                }
            }
            Variant::TmFix => {
                // Recipe 1: the handoff is a guarded transaction; `retry`
                // parks on the runtime's notifier, which every commit
                // signals.
                let scope = TVar::new(false);
                let scope2 = scope.clone();
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            atomic(|txn| {
                                let v = scope.read(txn)?;
                                guard(txn, v)
                            });
                        }),
                        Box::new(move || {
                            atomic(|txn| scope2.write(txn, true));
                        }),
                    ],
                    check: Box::new(|| Outcome::Correct),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Apache#11600: two locks taken in opposite orders.
// ---------------------------------------------------------------------------

struct LocalLockOrderSched;

impl ScheduledScenario for LocalLockOrderSched {
    fn key(&self) -> &'static str {
        keys::DL_LOCAL_LOCK_ORDER
    }

    fn describe(&self) -> &'static str {
        "AB-BA lock acquisition; the wait-for graph errors one thread under \
         the crossing schedules"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        let hits = Arc::new(AtomicU64::new(0));
        match variant {
            Variant::Buggy => {
                let a = Arc::new(TxMutex::new("a11600s.a", ()));
                let b = Arc::new(TxMutex::new("a11600s.b", ()));
                let (a2, b2) = (a.clone(), b.clone());
                let (h1, h2) = (hits.clone(), hits.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || match a.lock() {
                            Ok(_ga) => {
                                if b.lock().is_err() {
                                    h1.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                h1.fetch_add(1, Ordering::Relaxed);
                            }
                        }),
                        Box::new(move || match b2.lock() {
                            Ok(_gb) => {
                                if a2.lock().is_err() {
                                    h2.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                h2.fetch_add(1, Ordering::Relaxed);
                            }
                        }),
                    ],
                    check: Box::new(move || {
                        if hits.load(Ordering::Relaxed) > 0 {
                            Outcome::BugObserved("AB-BA cycle hit the wait-for graph".into())
                        } else {
                            Outcome::Correct
                        }
                    }),
                }
            }
            Variant::DevFix => {
                // The fix: one global order.
                let a = Arc::new(TxMutex::new("a11600s.a", ()));
                let b = Arc::new(TxMutex::new("a11600s.b", ()));
                let (a2, b2) = (a.clone(), b.clone());
                let (h1, h2) = (hits.clone(), hits.clone());
                let body = move |a: Arc<TxMutex<()>>, b: Arc<TxMutex<()>>, h: Arc<AtomicU64>| {
                    let ga = a.lock();
                    let gb = b.lock();
                    if ga.is_err() || gb.is_err() {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                };
                ScheduledRun {
                    threads: vec![
                        Box::new(move || body(a, b, h1)),
                        Box::new({
                            let body =
                                move |a: Arc<TxMutex<()>>,
                                      b: Arc<TxMutex<()>>,
                                      h: Arc<AtomicU64>| {
                                    let ga = a.lock();
                                    let gb = b.lock();
                                    if ga.is_err() || gb.is_err() {
                                        h.fetch_add(1, Ordering::Relaxed);
                                    }
                                };
                            move || body(a2, b2, h2)
                        }),
                    ],
                    check: Box::new(move || {
                        if hits.load(Ordering::Relaxed) == 0 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved("ordered acquisition still cycled".into())
                        }
                    }),
                }
            }
            Variant::TmFix => {
                // Recipe 3: both critical sections become transactions.
                let x = TVar::new(0u64);
                let y = TVar::new(0u64);
                let (x2, y2) = (x.clone(), y.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            atomic(|txn| {
                                let v = x.read(txn)?;
                                y.write(txn, v + 1)
                            });
                        }),
                        Box::new(move || {
                            atomic(|txn| {
                                let v = y2.read(txn)?;
                                x2.write(txn, v + 1)
                            });
                        }),
                    ],
                    check: Box::new(|| Outcome::Correct),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mozilla#133773-adjacent refcount: load/store decrement loses updates.
// ---------------------------------------------------------------------------

struct RefcountRaceSched;

impl ScheduledScenario for RefcountRaceSched {
    fn key(&self) -> &'static str {
        keys::AV_REFCOUNT_RACE
    }

    fn describe(&self) -> &'static str {
        "two plain load/store decrements interleave and lose one release"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        match variant {
            Variant::Buggy => {
                let rc = Arc::new(TracedCell::new("m.refcount", 2));
                let rc2 = rc.clone();
                let rcc = rc.clone();
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            let v = rc.load();
                            rc.store(v - 1);
                        }),
                        Box::new(move || {
                            let v = rc2.load();
                            rc2.store(v - 1);
                        }),
                    ],
                    check: Box::new(move || {
                        if rcc.peek() == 0 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved(format!(
                                "refcount ended at {} (lost release)",
                                rcc.peek()
                            ))
                        }
                    }),
                }
            }
            Variant::DevFix => {
                let rc = Arc::new(TracedCell::new("m.refcount", 2));
                let rc2 = rc.clone();
                let rcc = rc.clone();
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            rc.fetch_sub(1);
                        }),
                        Box::new(move || {
                            rc2.fetch_sub(1);
                        }),
                    ],
                    check: Box::new(move || {
                        if rcc.peek() == 0 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved("atomic decrement lost a release".into())
                        }
                    }),
                }
            }
            Variant::TmFix => {
                let rc = TVar::new(2u64);
                let rc2 = rc.clone();
                let rcc = rc.clone();
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            atomic(|txn| rc.modify(txn, |v| v - 1));
                        }),
                        Box::new(move || {
                            atomic(|txn| rc2.modify(txn, |v| v - 1));
                        }),
                    ],
                    check: Box::new(move || {
                        if rcc.load() == 0 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved("transactional decrement lost a release".into())
                        }
                    }),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mozilla#52271: double lazy initialization.
// ---------------------------------------------------------------------------

struct LazyInitSched;

impl ScheduledScenario for LazyInitSched {
    fn key(&self) -> &'static str {
        keys::AV_LAZY_INIT
    }

    fn describe(&self) -> &'static str {
        "check-then-initialize races: two threads both see 'uninitialized'"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        let inits = Arc::new(AtomicU64::new(0));
        let done = |inits: Arc<AtomicU64>| -> Box<dyn FnOnce() -> Outcome + Send> {
            Box::new(move || match inits.load(Ordering::Relaxed) {
                1 => Outcome::Correct,
                n => Outcome::BugObserved(format!("initializer ran {n} times")),
            })
        };
        match variant {
            Variant::Buggy => {
                let flag = Arc::new(TracedCell::new("m52271.initialized", 0));
                let flag2 = flag.clone();
                let (i1, i2) = (inits.clone(), inits.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            if flag.load() == 0 {
                                i1.fetch_add(1, Ordering::Relaxed);
                                flag.store(1);
                            }
                        }),
                        Box::new(move || {
                            if flag2.load() == 0 {
                                i2.fetch_add(1, Ordering::Relaxed);
                                flag2.store(1);
                            }
                        }),
                    ],
                    check: done(inits),
                }
            }
            Variant::DevFix => {
                let state = Arc::new(TxMutex::new("m52271s.lock", false));
                let state2 = state.clone();
                let (i1, i2) = (inits.clone(), inits.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            let mut g = state.lock().expect("no lock cycle");
                            if !*g {
                                i1.fetch_add(1, Ordering::Relaxed);
                                *g = true;
                            }
                        }),
                        Box::new(move || {
                            let mut g = state2.lock().expect("no lock cycle");
                            if !*g {
                                i2.fetch_add(1, Ordering::Relaxed);
                                *g = true;
                            }
                        }),
                    ],
                    check: done(inits),
                }
            }
            Variant::TmFix => {
                let flag = TVar::new(false);
                let flag2 = flag.clone();
                let (i1, i2) = (inits.clone(), inits.clone());
                // The initializer side effect runs *after* commit: a
                // transaction body may re-execute on conflict, so effects
                // inside it would be double-counted.
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            let initialized = atomic(|txn| {
                                if !flag.read(txn)? {
                                    flag.write(txn, true)?;
                                    return Ok(true);
                                }
                                Ok(false)
                            });
                            if initialized {
                                i1.fetch_add(1, Ordering::Relaxed);
                            }
                        }),
                        Box::new(move || {
                            let initialized = atomic(|txn| {
                                if !flag2.read(txn)? {
                                    flag2.write(txn, true)?;
                                    return Ok(true);
                                }
                                Ok(false)
                            });
                            if initialized {
                                i2.fetch_add(1, Ordering::Relaxed);
                            }
                        }),
                    ],
                    check: done(inits),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mozilla#91106: notify before publish — the lost wakeup.
// ---------------------------------------------------------------------------

struct CvPartialSched;

impl ScheduledScenario for CvPartialSched {
    fn key(&self) -> &'static str {
        keys::AV_CV_PARTIAL
    }

    fn describe(&self) -> &'static str {
        "the producer signals before publishing; a consumer that re-checks \
         in between waits forever"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        match variant {
            Variant::Buggy => {
                let items = Arc::new(TxMutex::new("m91106s.items", 0u64));
                let cv = Arc::new(LockCondvar::new());
                let (items2, cv2) = (items.clone(), cv.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            // Producer: signal first, publish after.
                            cv.notify_all();
                            let mut g = items.lock().expect("no lock cycle");
                            *g += 1;
                        }),
                        Box::new(move || {
                            // Consumer.
                            let mut g = items2.lock().expect("no lock cycle");
                            while *g == 0 {
                                let (g2, _) =
                                    cv2.wait_timeout(g, LONG_WAIT).expect("no lock cycle");
                                g = g2;
                            }
                            *g -= 1;
                        }),
                    ],
                    check: Box::new(|| Outcome::Correct),
                }
            }
            Variant::DevFix => {
                let items = Arc::new(TxMutex::new("m91106s.items", 0u64));
                let cv = Arc::new(LockCondvar::new());
                let (items2, cv2) = (items.clone(), cv.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            // The fix: publish, then signal.
                            let mut g = items.lock().expect("no lock cycle");
                            *g += 1;
                            drop(g);
                            cv.notify_all();
                        }),
                        Box::new(move || {
                            let mut g = items2.lock().expect("no lock cycle");
                            while *g == 0 {
                                let (g2, _) =
                                    cv2.wait_timeout(g, LONG_WAIT).expect("no lock cycle");
                                g = g2;
                            }
                            *g -= 1;
                        }),
                    ],
                    check: Box::new(|| Outcome::Correct),
                }
            }
            Variant::TmFix => {
                // Commit-and-retry makes publish/notify one atomic step.
                let items = TVar::new(0u64);
                let items2 = items.clone();
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            atomic(|txn| items.modify(txn, |v| v + 1));
                        }),
                        Box::new(move || {
                            atomic(|txn| {
                                let v = items2.read(txn)?;
                                guard(txn, v > 0)?;
                                items2.write(txn, v - 1)
                            });
                        }),
                    ],
                    check: Box::new(|| Outcome::Correct),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Apache-II: the buffered log writer's unsynchronized cursor.
// ---------------------------------------------------------------------------

struct ApacheIISched;

impl ScheduledScenario for ApacheIISched {
    fn key(&self) -> &'static str {
        keys::APACHE_II
    }

    fn describe(&self) -> &'static str {
        "two writers read the same buffer cursor and overwrite each other's \
         records"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        let fs = SimFs::new();
        let log: Arc<dyn LogWriter> = match variant {
            Variant::Buggy => Arc::new(BuggyBufferedLog::new(&fs, "log", 64, 0)),
            Variant::DevFix => Arc::new(LockedBufferedLog::new(&fs, "log", 64)),
            Variant::TmFix => Arc::new(TmBufferedLog::new(&fs, "log", 64)),
        };
        let (l1, l2, lc) = (log.clone(), log.clone(), log);
        ScheduledRun {
            threads: vec![
                Box::new(move || l1.write_record(&make_record(0, 1))),
                Box::new(move || l2.write_record(&make_record(1, 1))),
            ],
            check: Box::new(move || {
                lc.flush();
                let v = validate_log(&lc.file().read_all());
                if v.is_violation(2) {
                    Outcome::BugObserved(format!(
                        "log lost or corrupted records ({} valid of 2, {} corrupt spans)",
                        v.valid_records, v.corrupted_spans
                    ))
                } else {
                    Outcome::Correct
                }
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Apache#29850: duplicate log sequence numbers.
// ---------------------------------------------------------------------------

struct LogSequenceSched;

impl ScheduledScenario for LogSequenceSched {
    fn key(&self) -> &'static str {
        keys::AV_LOG_SEQUENCE
    }

    fn describe(&self) -> &'static str {
        "read-increment of the shared sequence number interleaves and two \
         records get the same id"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let unique = |log: Arc<Mutex<Vec<u64>>>| -> Box<dyn FnOnce() -> Outcome + Send> {
            Box::new(move || {
                let mut seqs = log.lock().clone();
                let total = seqs.len();
                seqs.sort_unstable();
                seqs.dedup();
                if total == 2 && seqs.len() == 2 {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved(format!(
                        "expected 2 unique sequence numbers, got {total} ({} unique)",
                        seqs.len()
                    ))
                }
            })
        };
        match variant {
            Variant::Buggy => {
                let seq = Arc::new(TracedCell::new("a29850.seq", 1));
                let seq2 = seq.clone();
                let (lg1, lg2) = (log.clone(), log.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            let n = seq.load();
                            lg1.lock().push(n);
                            seq.store(n + 1);
                        }),
                        Box::new(move || {
                            let n = seq2.load();
                            lg2.lock().push(n);
                            seq2.store(n + 1);
                        }),
                    ],
                    check: unique(log),
                }
            }
            Variant::DevFix => {
                let seq = Arc::new(TxMutex::new("a29850s.seq", 1u64));
                let seq2 = seq.clone();
                let (lg1, lg2) = (log.clone(), log.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            let mut g = seq.lock().expect("no lock cycle");
                            lg1.lock().push(*g);
                            *g += 1;
                        }),
                        Box::new(move || {
                            let mut g = seq2.lock().expect("no lock cycle");
                            lg2.lock().push(*g);
                            *g += 1;
                        }),
                    ],
                    check: unique(log),
                }
            }
            Variant::TmFix => {
                let seq = TVar::new(1u64);
                let seq2 = seq.clone();
                let (lg1, lg2) = (log.clone(), log.clone());
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            let n = atomic(|txn| {
                                let n = seq.read(txn)?;
                                seq.write(txn, n + 1)?;
                                Ok(n)
                            });
                            lg1.lock().push(n);
                        }),
                        Box::new(move || {
                            let n = atomic(|txn| {
                                let n = seq2.read(txn)?;
                                seq2.write(txn, n + 1)?;
                                Ok(n)
                            });
                            lg2.lock().push(n);
                        }),
                    ],
                    check: unique(log),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// MySQL#12228: statistics bumped with plain load/store.
// ---------------------------------------------------------------------------

struct StatsRaceSched;

impl ScheduledScenario for StatsRaceSched {
    fn key(&self) -> &'static str {
        keys::AV_STATS_RACE
    }

    fn describe(&self) -> &'static str {
        "two read-modify-write statistics bumps interleave and lose one"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        match variant {
            Variant::Buggy => {
                let q = Arc::new(TracedCell::new("my12228.queries", 0));
                let q2 = q.clone();
                let qc = q.clone();
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            let v = q.load();
                            q.store(v + 1);
                        }),
                        Box::new(move || {
                            let v = q2.load();
                            q2.store(v + 1);
                        }),
                    ],
                    check: Box::new(move || {
                        if qc.peek() == 2 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved(format!(
                                "statistics lost an update ({} of 2)",
                                qc.peek()
                            ))
                        }
                    }),
                }
            }
            Variant::DevFix => {
                let q = Arc::new(TracedCell::new("my12228.queries", 0));
                let q2 = q.clone();
                let qc = q.clone();
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            q.fetch_add(1);
                        }),
                        Box::new(move || {
                            q2.fetch_add(1);
                        }),
                    ],
                    check: Box::new(move || {
                        if qc.peek() == 2 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved("atomic statistics bump lost an update".into())
                        }
                    }),
                }
            }
            Variant::TmFix => {
                let q = TVar::new(0u64);
                let q2 = q.clone();
                let qc = q.clone();
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            atomic(|txn| q.modify(txn, |v| v + 1));
                        }),
                        Box::new(move || {
                            atomic(|txn| q2.modify(txn, |v| v + 1));
                        }),
                    ],
                    check: Box::new(move || {
                        if qc.load() == 2 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved("transactional bump lost an update".into())
                        }
                    }),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// MySQL-I: the optimized DELETE logs outside the table's logical lock.
// ---------------------------------------------------------------------------

struct MySqlISched;

impl ScheduledScenario for MySqlISched {
    fn key(&self) -> &'static str {
        keys::MYSQL_I
    }

    fn describe(&self) -> &'static str {
        "a concurrent INSERT lands between the DELETE's table clear and its \
         binlog record; replaying the log diverges from the tables"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        let v = match variant {
            Variant::Buggy => MysqlVariant::Buggy,
            Variant::DevFix => MysqlVariant::DevFix,
            Variant::TmFix => MysqlVariant::TmRecipe4,
        };
        let db = Arc::new(MiniDb::new(v, 1).with_row_cost(0));
        let (db1, db2, dbc) = (db.clone(), db.clone(), db);
        ScheduledRun {
            threads: vec![
                Box::new(move || db1.insert(0, 7, 70)),
                Box::new(move || db2.delete_all(0)),
            ],
            check: Box::new(move || {
                if consistent_with_binlog(&dbc) {
                    Outcome::Correct
                } else {
                    Outcome::BugObserved("binlog replay diverges from the server's tables".into())
                }
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// MySQL#16582: DIY optimistic validation.
// ---------------------------------------------------------------------------

struct AdhocRetrySched;

impl ScheduledScenario for AdhocRetrySched {
    fn key(&self) -> &'static str {
        keys::AV_ADHOC_RETRY
    }

    fn describe(&self) -> &'static str {
        "the hand-rolled validate-then-write window admits a lost update"
    }

    fn build(&self, variant: Variant) -> ScheduledRun {
        match variant {
            Variant::Buggy => {
                let version = Arc::new(TracedCell::new("my16582.version", 0));
                let value = Arc::new(TracedCell::new("my16582.value", 0));
                let (ver2, val2) = (version.clone(), value.clone());
                let valc = value.clone();
                let body = |version: Arc<TracedCell>, value: Arc<TracedCell>| {
                    let v0 = version.load();
                    let cur = value.load();
                    if version.load() == v0 {
                        value.store(cur + 1);
                        version.store(v0 + 1);
                    }
                };
                ScheduledRun {
                    threads: vec![
                        Box::new(move || body(version, value)),
                        Box::new({
                            let body = |version: Arc<TracedCell>, value: Arc<TracedCell>| {
                                let v0 = version.load();
                                let cur = value.load();
                                if version.load() == v0 {
                                    value.store(cur + 1);
                                    version.store(v0 + 1);
                                }
                            };
                            move || body(ver2, val2)
                        }),
                    ],
                    check: Box::new(move || {
                        if valc.peek() == 2 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved(format!(
                                "DIY validation admitted a lost update (value {} of 2)",
                                valc.peek()
                            ))
                        }
                    }),
                }
            }
            Variant::DevFix => {
                // A correct hand-rolled scheme: CAS retry on a packed word.
                let word = Arc::new(TracedCell::new("my16582d.word", 0));
                let word2 = word.clone();
                let wordc = word.clone();
                let bump = |word: Arc<TracedCell>| loop {
                    let w = word.load_sync();
                    let (ver, val) = (w >> 32, w & 0xffff_ffff);
                    let next = ((ver + 1) << 32) | (val + 1);
                    if word.compare_exchange(w, next).is_ok() {
                        break;
                    }
                };
                ScheduledRun {
                    threads: vec![
                        Box::new(move || bump(word)),
                        Box::new({
                            let bump = |word: Arc<TracedCell>| loop {
                                let w = word.load_sync();
                                let (ver, val) = (w >> 32, w & 0xffff_ffff);
                                let next = ((ver + 1) << 32) | (val + 1);
                                if word.compare_exchange(w, next).is_ok() {
                                    break;
                                }
                            };
                            move || bump(word2)
                        }),
                    ],
                    check: Box::new(move || {
                        if wordc.peek() & 0xffff_ffff == 2 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved("CAS loop lost an update".into())
                        }
                    }),
                }
            }
            Variant::TmFix => {
                let value = TVar::new(0u64);
                let value2 = value.clone();
                let valc = value.clone();
                ScheduledRun {
                    threads: vec![
                        Box::new(move || {
                            atomic(|txn| value.modify(txn, |v| v + 1));
                        }),
                        Box::new(move || {
                            atomic(|txn| value2.modify(txn, |v| v + 1));
                        }),
                    ],
                    check: Box::new(move || {
                        if valc.load() == 2 {
                            Outcome::Correct
                        } else {
                            Outcome::BugObserved("transactional update lost".into())
                        }
                    }),
                }
            }
        }
    }
}
